#include "stream/clock.h"

#include <algorithm>

namespace xcql::stream {

void SimClock::AdvanceTo(DateTime t) { now_ = std::max(now_, t); }

void SimClock::Advance(const Duration& d) { now_ = now_.Add(d); }

}  // namespace xcql::stream
