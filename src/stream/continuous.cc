#include "stream/continuous.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "xml/serializer.h"

namespace xcql::stream {

namespace {

// Small by design: tick evaluation is read-only over the stores, but each
// evaluation is itself sequential, so a handful of workers saturates the
// typical handful of due queries.
int DefaultWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return static_cast<int>(hw - 1 < 3 ? hw - 1 : 3);
}

// Dedup key of one result item: the FNV-1a hash of exactly the bytes the
// seed engine used as its string key (SerializeXml for nodes, the string
// value for atomics), computed without materializing them.
uint64_t ItemKey(const xq::Item& item) {
  if (xq::IsNode(item)) return HashSerializedXml(*xq::AsNode(item));
  return HashBytes(xq::AsAtomic(item).ToStringValue());
}

}  // namespace

ContinuousQueryEngine::ContinuousQueryEngine(StreamHub* hub, SimClock* clock)
    : hub_(hub), clock_(clock), pool_(DefaultWorkers()) {}

Status ContinuousQueryEngine::SyncStreams() {
  // Streams may have been subscribed after engine construction; sync lazily.
  for (const frag::FragmentStore* store : hub_->stores()) {
    if (registered_streams_.insert(store->name()).second) {
      XCQL_RETURN_NOT_OK(executor_.RegisterStream(store));
      ++schema_epoch_;  // existing plans recompile against the new schema
    }
  }
  return Status::OK();
}

Result<int> ContinuousQueryEngine::Register(
    const std::string& xcql, Callback callback,
    const ContinuousQueryOptions& options) {
  XCQL_RETURN_NOT_OK(SyncStreams());
  // Compile now: registration errors surface immediately, and ticks replay
  // the plan instead of re-translating the text.
  XCQL_ASSIGN_OR_RETURN(lang::PreparedQuery prepared,
                        executor_.Prepare(xcql, options.method));
  int id = next_id_++;
  Query q;
  q.text = xcql;
  q.callback = std::move(callback);
  q.options = options;
  q.prepared = std::move(prepared);
  q.plan_epoch = schema_epoch_;
  queries_[id] = std::move(q);
  return id;
}

Result<int> ContinuousQueryEngine::RegisterDelta(
    const std::string& xcql, DeltaCallback callback,
    const ContinuousQueryOptions& options) {
  XCQL_ASSIGN_OR_RETURN(int id, Register(xcql, Callback(), options));
  queries_[id].delta_callback = std::move(callback);
  return id;
}

Status ContinuousQueryEngine::Unregister(int id) {
  if (queries_.erase(id) == 0) {
    return Status::NotFound("no continuous query with id " +
                            std::to_string(id));
  }
  return Status::OK();
}

void ContinuousQueryEngine::RegisterFunction(
    const std::string& name, int min_arity, int max_arity,
    xq::FunctionRegistry::NativeFn fn) {
  executor_.RegisterFunction(name, min_arity, max_arity, std::move(fn));
  // Plans compiled before this call classified the name as unknown-opaque;
  // recompile them so arity checks and relevance reflect the registration.
  ++schema_epoch_;
}

int64_t ContinuousQueryEngine::RelevanceStamp(
    const lang::QueryRelevance& rel) const {
  const auto& stores = executor_.stores();
  if (!rel.unbounded) {
    int64_t stamp = 0;
    bool bounded = true;
    for (const auto& [stream, tsids] : rel.streams) {
      auto it = stores.find(stream);
      if (it == stores.end()) {
        bounded = false;  // plan references a stream we cannot observe
        break;
      }
      for (int tsid : tsids) stamp += it->second->tsid_revision(tsid);
    }
    if (bounded) return stamp;
  }
  // Conservative fallback: any fragment anywhere is relevant. The store
  // count folds in so that a newly registered (still empty) stream also
  // changes the stamp — it can alter results by itself (e.g. the
  // sole-stream get_fillers binding).
  int64_t stamp = static_cast<int64_t>(stores.size());
  for (const auto& [name, store] : stores) stamp += store->revision();
  return stamp;
}

bool ContinuousQueryEngine::IsDue(const Query& q, int64_t stamp) const {
  switch (q.options.tick_policy) {
    case TickPolicy::kAlways:
      return true;
    case TickPolicy::kDataDriven:
      return stamp != q.last_stamp;
    case TickPolicy::kAuto:
      break;
  }
  // Without dedup every tick's callback is observable; with a
  // time-sensitive plan the result can drift between ticks on the clock
  // alone. Either way a skip could change what the consumer sees.
  if (!q.options.dedup || q.prepared.relevance.time_sensitive) return true;
  return stamp != q.last_stamp;
}

Status ContinuousQueryEngine::Tick() {
  XCQL_RETURN_NOT_OK(SyncStreams());
  ++ticks_;
  DateTime now = clock_->Now();

  // Phase 1 (ticking thread): refresh stale plans, decide who is due.
  struct DueEntry {
    Query* q;
    int64_t stamp;
    Result<xq::Sequence> result = Status::Internal("not evaluated");
    lang::ExecStats exec_stats = {};
  };
  std::vector<DueEntry> due;  // ascending query id (queries_ is ordered)
  for (auto& [id, q] : queries_) {
    if (q.plan_epoch != schema_epoch_) {
      auto recompiled = executor_.Prepare(q.text, q.options.method);
      if (!recompiled.ok()) {
        // The environment change broke this query; record and move on —
        // other queries still tick.
        q.last_status = recompiled.status();
        ++q.errors;
        continue;
      }
      q.prepared = recompiled.MoveValue();
      q.plan_epoch = schema_epoch_;
      q.last_stamp = -1;  // schema changed: previous stamp is meaningless
    }
    int64_t stamp = RelevanceStamp(q.prepared.relevance);
    if (!IsDue(q, stamp)) {
      ++q.skips;
      ++skips_;
      continue;
    }
    due.push_back(DueEntry{&q, stamp});
  }

  // Phase 2 (worker pool): evaluate due plans concurrently. Evaluation
  // only reads the stores and writes its own slot, so the workers share
  // nothing writable.
  pool_.ParallelFor(due.size(), [&](size_t i) {
    DueEntry& entry = due[i];
    lang::ExecOptions opts;
    opts.method = entry.q->options.method;
    opts.now = now;
    opts.hole_policy = entry.q->options.hole_policy;
    opts.linear_get_fillers = entry.q->options.linear_get_fillers;
    opts.use_compiled_plan = entry.q->options.use_compiled_plan;
    opts.stats = &entry.exec_stats;  // each worker writes only its own slot
    if (entry.q->options.incremental) {
      opts.bindings["since"] =
          xq::SingletonAtomic(xq::Atomic(entry.q->watermark));
    }
    entry.result = executor_.ExecutePrepared(entry.q->prepared, opts);
  });

  // Phase 3 (ticking thread): commit state and fire callbacks in query-id
  // order — the observable sequence is independent of worker scheduling.
  for (DueEntry& entry : due) {
    Query& q = *entry.q;
    ++evaluations_;
    ++q.evaluations;
    if (entry.exec_stats.used_compiled_plan) {
      ++q.compiled_evals;
    } else {
      ++q.fallback_evals;
    }
    q.arena_high_water =
        std::max(q.arena_high_water, entry.exec_stats.arena_bytes);
    if (!entry.result.ok()) {
      // Keep watermark, stamp and seen-set untouched: the query retries
      // with identical inputs next tick.
      q.last_status = entry.result.status();
      ++q.errors;
      continue;
    }
    q.last_status = Status::OK();
    q.last_stamp = entry.stamp;
    q.watermark = now;
    q.holes_unresolved_last = entry.exec_stats.holes_unresolved;
    if (entry.exec_stats.holes_unresolved > 0) ++q.incomplete_evaluations;
    xq::Sequence result = std::move(entry.result).MoveValue();
    static const std::vector<std::string> kNoRemoved;
    auto fire = [&](const xq::Sequence& items) {
      if (q.callback) q.callback(items, now);
      if (q.delta_callback) q.delta_callback(items, kNoRemoved, now);
    };
    if (q.options.track_removals && q.delta_callback) {
      // Symmetric diff against the previous evaluation. Both sides keep
      // emission order (current result order for adds, previous result
      // order for removals); duplicate items within one evaluation
      // collapse to their first occurrence.
      std::unordered_set<uint64_t> prev_keys;
      prev_keys.reserve(q.present.size());
      for (const auto& [key, serialized] : q.present) prev_keys.insert(key);
      std::vector<std::pair<uint64_t, std::string>> current;
      std::unordered_set<uint64_t> current_keys;
      xq::Sequence added;
      for (xq::Item& item : result) {
        uint64_t key = ItemKey(item);
        if (!current_keys.insert(key).second) continue;
        current.emplace_back(key, SerializeResultItem(item));
        if (prev_keys.find(key) == prev_keys.end()) {
          added.push_back(std::move(item));
        }
      }
      std::vector<std::string> removed;
      for (auto& [key, serialized] : q.present) {
        if (current_keys.find(key) == current_keys.end()) {
          removed.push_back(std::move(serialized));
        }
      }
      q.present = std::move(current);
      if (!added.empty() || !removed.empty()) {
        results_emitted_ +=
            static_cast<int64_t>(added.size() + removed.size());
        q.delta_callback(added, removed, now);
      }
      continue;
    }
    if (!q.options.dedup) {
      results_emitted_ += static_cast<int64_t>(result.size());
      fire(result);
      continue;
    }
    xq::Sequence delta;
    for (xq::Item& item : result) {
      if (q.seen.insert(ItemKey(item)).second) {
        delta.push_back(std::move(item));
      }
    }
    if (!delta.empty()) {
      results_emitted_ += static_cast<int64_t>(delta.size());
      fire(delta);
    }
  }
  return Status::OK();
}

Result<ContinuousQueryStats> ContinuousQueryEngine::QueryStats(int id) const {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("no continuous query with id " +
                            std::to_string(id));
  }
  const Query& q = it->second;
  ContinuousQueryStats stats;
  stats.evaluations = q.evaluations;
  stats.skips = q.skips;
  stats.errors = q.errors;
  stats.last_status = q.last_status;
  stats.time_sensitive = q.prepared.relevance.time_sensitive;
  stats.unbounded = q.prepared.relevance.unbounded;
  stats.window = q.prepared.relevance.window;
  stats.holes_unresolved_last = q.holes_unresolved_last;
  stats.incomplete_evaluations = q.incomplete_evaluations;
  stats.compile_micros = q.prepared.compile_micros;
  stats.compiled_evals = q.compiled_evals;
  stats.fallback_evals = q.fallback_evals;
  stats.plan_fallback_reason = q.prepared.plan_fallback_reason;
  stats.arena_high_water = q.arena_high_water;
  return stats;
}

std::string SerializeResultItem(const xq::Item& item) {
  if (xq::IsNode(item)) return SerializeXml(*xq::AsNode(item));
  return xq::AsAtomic(item).ToStringValue();
}

}  // namespace xcql::stream
