#include "stream/continuous.h"

#include "xml/serializer.h"

namespace xcql::stream {

ContinuousQueryEngine::ContinuousQueryEngine(StreamHub* hub, SimClock* clock)
    : hub_(hub), clock_(clock) {}

Result<int> ContinuousQueryEngine::Register(
    const std::string& xcql, Callback callback,
    const ContinuousQueryOptions& options) {
  // Streams may have been subscribed after engine construction; sync lazily.
  for (const frag::FragmentStore* store : hub_->stores()) {
    if (registered_streams_.insert(store->name()).second) {
      XCQL_RETURN_NOT_OK(executor_.RegisterStream(store));
    }
  }
  // Validate the query now so registration errors surface immediately.
  XCQL_ASSIGN_OR_RETURN(std::string translated,
                        executor_.TranslateToText(xcql, options.method));
  (void)translated;
  int id = next_id_++;
  queries_[id] = Query{xcql, std::move(callback), options, {}};
  return id;
}

Status ContinuousQueryEngine::Unregister(int id) {
  if (queries_.erase(id) == 0) {
    return Status::NotFound("no continuous query with id " +
                            std::to_string(id));
  }
  return Status::OK();
}

void ContinuousQueryEngine::RegisterFunction(
    const std::string& name, int min_arity, int max_arity,
    xq::FunctionRegistry::NativeFn fn) {
  executor_.RegisterFunction(name, min_arity, max_arity, std::move(fn));
}

Status ContinuousQueryEngine::Tick() {
  for (const frag::FragmentStore* store : hub_->stores()) {
    if (registered_streams_.insert(store->name()).second) {
      XCQL_RETURN_NOT_OK(executor_.RegisterStream(store));
    }
  }
  for (auto& [id, q] : queries_) {
    lang::ExecOptions opts;
    opts.method = q.options.method;
    opts.now = clock_->Now();
    if (q.options.incremental) {
      opts.bindings["since"] =
          xq::SingletonAtomic(xq::Atomic(q.watermark));
    }
    XCQL_ASSIGN_OR_RETURN(xq::Sequence result,
                          executor_.Execute(q.text, opts));
    q.watermark = clock_->Now();
    ++evaluations_;
    if (!q.options.dedup) {
      results_emitted_ += static_cast<int64_t>(result.size());
      if (q.callback) q.callback(result, clock_->Now());
      continue;
    }
    xq::Sequence delta;
    for (xq::Item& item : result) {
      std::string key = xq::IsNode(item)
                            ? SerializeXml(*xq::AsNode(item))
                            : xq::AsAtomic(item).ToStringValue();
      if (q.seen.insert(std::move(key)).second) {
        delta.push_back(std::move(item));
      }
    }
    if (!delta.empty()) {
      results_emitted_ += static_cast<int64_t>(delta.size());
      if (q.callback) q.callback(delta, clock_->Now());
    }
  }
  return Status::OK();
}

}  // namespace xcql::stream
