// Push-based stream transport (paper §1): a server multicasts XML fragments
// to registered clients without per-query feedback; a client registers with
// a server once and then runs any number of continuous queries locally.
#ifndef XCQL_STREAM_TRANSPORT_H_
#define XCQL_STREAM_TRANSPORT_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "frag/codec.h"
#include "frag/fragment.h"
#include "frag/fragmenter.h"
#include "frag/tag_structure.h"

namespace xcql::stream {

/// \brief Receiver interface; implemented by client-side sinks.
class StreamClient {
 public:
  virtual ~StreamClient() = default;

  /// \brief Called once per multicast fragment. The fragment's content is
  /// owned by the receiver (each client gets its own copy).
  virtual void OnFragment(const std::string& stream_name,
                          frag::Fragment fragment) = 0;

  /// \brief Called once per retransmitted fragment (RepeatFiller).
  /// `history_pos` is the fragment's 0-based publish position, so a
  /// transport that numbers frames by publish position can re-send the
  /// original frame instead of minting a new sequence number. The default
  /// treats a repeat like any other delivery (stores drop the exact
  /// duplicate).
  virtual void OnRepeat(const std::string& stream_name, int64_t history_pos,
                        frag::Fragment fragment) {
    (void)history_pos;
    OnFragment(stream_name, std::move(fragment));
  }
};

/// \brief Server-side publisher for one stream.
///
/// Keeps aggregate wire statistics (fragments and serialized bytes), which
/// the granularity ablation uses to measure update-transmission cost.
class StreamServer {
 public:
  StreamServer(std::string name, frag::TagStructure ts);

  const std::string& name() const { return name_; }
  const frag::TagStructure& tag_structure() const { return ts_; }

  /// \brief Registers a client (idempotent). Per the paper's model this
  /// happens once per client, not per query.
  void RegisterClient(StreamClient* client);
  void UnregisterClient(StreamClient* client);

  /// \brief Multicasts one fragment to all registered clients.
  Status Publish(frag::Fragment fragment);

  /// \brief Fragments a full document and publishes every fragment — the
  /// "finite XML document" that starts a stream (paper §1).
  Status PublishDocument(const Node& doc,
                         const frag::FragmenterOptions& options = {});

  /// \brief Retransmits the current distinct versions of a filler id (the
  /// paper's "repeat critical fragments" facility). Repeats are wire-level
  /// retransmissions, not new information: they reach every client via
  /// OnRepeat (carrying their original publish position, so sequence-
  /// numbered transports re-send the original frame) but are not recorded
  /// into the replayable history, so a later ReplayTo reproduces the
  /// original publication sequence exactly. Returns the number repeated.
  Result<int> RepeatFiller(int64_t filler_id);

  /// \brief Replays the entire published history to one client — how a
  /// late subscriber catches up in a model where receivers cannot request
  /// retransmission (paper §1). Returns the number of fragments replayed.
  Result<int> ReplayTo(StreamClient* client);

  /// \brief Accounts wire bytes using the §4.1 tag-id compression instead
  /// of plain XML (delivery is unaffected; only bytes_sent changes).
  void EnableWireCompression() { compress_wire_ = true; }

  /// \brief The codec Publish sizes frames with (and the default a
  /// networked transport fronting this server should offer).
  frag::WireCodec wire_codec() const {
    return compress_wire_ ? frag::WireCodec::kTagCompressed
                          : frag::WireCodec::kPlainXml;
  }

  // The published history, exposed for catch-up replay: a fragment's
  // sequence number is its 0-based publish position, so a networked
  // transport can seed its frame log from a server that already published
  // and resume subscribers from any sequence number. Retention may trim a
  // prefix (TrimHistory); positions stay stable — history_size() keeps
  // counting from the stream's origin and history_at() takes absolute
  // positions, valid only in [history_base(), history_size()).
  int64_t history_size() const {
    return history_base_ + static_cast<int64_t>(history_.size());
  }
  int64_t history_base() const { return history_base_; }
  const frag::Fragment& history_at(int64_t seq) const {
    return history_[static_cast<size_t>(seq - history_base_)];
  }

  /// \brief Retention: forgets every published fragment below `keep_from`
  /// (clamped to the current bounds). Positions of retained fragments do
  /// not move. Returns the number of fragments dropped. RepeatFiller and
  /// ReplayTo serve the retained suffix only afterwards — callers pair
  /// this with a durable checkpoint (net::Wal) when the prefix must stay
  /// recoverable.
  int64_t TrimHistory(int64_t keep_from);

  int64_t fragments_sent() const { return fragments_sent_; }
  int64_t bytes_sent() const { return bytes_sent_; }

  /// \brief Replants one fragment as already-published history — no
  /// multicast, no wire-byte accounting — in publish order. The recovery
  /// path (net::RestoreStream) uses this to rebuild a server from its WAL
  /// so the history numbering (and thus every subscriber's sequence
  /// numbers) survives a restart. Keeps NextFillerId ahead of the
  /// restored id, exactly as the original Publish did.
  Status RestoreHistory(frag::Fragment fragment);

  /// \brief Starts the history numbering at `base` instead of 0, for a
  /// server restored from a WAL generation whose records begin past the
  /// stream's origin (a re-armed log, or a checkpoint that trimmed its
  /// prefix before any surviving record). Only legal on a fresh server —
  /// before any Publish or RestoreHistory.
  Status SeedHistoryBase(int64_t base);

  /// \brief Next unused filler id (for publishing updates that fill holes
  /// created by earlier fragments).
  int64_t NextFillerId() { return next_filler_id_++; }

  /// \brief Ensures NextFillerId never returns `id` (used by publishers
  /// that manage a fragment whose id was assigned elsewhere).
  void ReserveFillerId(int64_t id) {
    next_filler_id_ = std::max(next_filler_id_, id + 1);
  }

 private:
  /// \brief Sizes, counts, and delivers one fragment to every client
  /// without recording it into history. `repeat_pos >= 0` marks the
  /// delivery as a retransmission of history_[repeat_pos] (via OnRepeat);
  /// -1 is a fresh publish (via OnFragment).
  Status Multicast(const frag::Fragment& fragment, int64_t repeat_pos = -1);

  std::string name_;
  frag::TagStructure ts_;
  std::vector<StreamClient*> clients_;
  std::vector<frag::Fragment> history_;  // for RepeatFiller / ReplayTo
  int64_t history_base_ = 0;  // publish position of history_[0]
  int64_t fragments_sent_ = 0;
  int64_t bytes_sent_ = 0;
  int64_t next_filler_id_ = 0;
  bool compress_wire_ = false;
};

/// \brief Publishes events/updates into a context fragment over time.
///
/// Implements the paper's insertion rule (§1): "an insertion of a new child
/// to a node is achieved by updating the fragment that contains the node
/// with a new hole". Append() creates the child's filler immediately;
/// Flush() republishes the context fragment once with all holes added since
/// the previous flush (batching keeps the context-retransmission overhead
/// linear in the number of flushes, not of events).
class EventAppender {
 public:
  /// \param server        the stream to publish into
  /// \param context_id    filler id of the context fragment (0 = root)
  /// \param context_tsid  tsid of the context fragment
  /// \param context       initial payload of the context fragment (its
  ///                      current holes included); published on first Flush
  EventAppender(StreamServer* server, int64_t context_id, int context_tsid,
                NodePtr context);

  /// \brief Creates and publishes a filler for `element` (whose tag must be
  /// a fragmented child of the context's tag) and records the new hole.
  /// Returns the new filler id.
  Result<int64_t> Append(NodePtr element, DateTime valid_time);

  /// \brief Deletes a child: removes its hole from the maintained context
  /// payload (paper §1: "deletion of a child, by removing the hole
  /// corresponding to the deleted fragment"). Takes effect at the next
  /// Flush; the child's fragments stay reachable in earlier context
  /// versions (history is never erased) but disappear from the current
  /// one, and "all its children fragments become inaccessible" with it.
  Status Remove(int64_t filler_id);

  /// \brief Publishes a new version of the context fragment carrying the
  /// holes accumulated since the last flush. No-op when nothing changed.
  Status Flush(DateTime valid_time);

  int64_t appended() const { return appended_; }

 private:
  StreamServer* server_;
  int64_t context_id_;
  int context_tsid_;
  NodePtr context_;
  bool dirty_ = true;  // initial context not yet published
  int64_t appended_ = 0;
};

}  // namespace xcql::stream

#endif  // XCQL_STREAM_TRANSPORT_H_
