#include "stream/transport.h"

#include <algorithm>

#include "common/string_util.h"
#include "frag/codec.h"

namespace xcql::stream {

StreamServer::StreamServer(std::string name, frag::TagStructure ts)
    : name_(std::move(name)), ts_(std::move(ts)) {}

void StreamServer::RegisterClient(StreamClient* client) {
  if (std::find(clients_.begin(), clients_.end(), client) == clients_.end()) {
    clients_.push_back(client);
  }
}

void StreamServer::UnregisterClient(StreamClient* client) {
  clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                 clients_.end());
}

Status StreamServer::Multicast(const frag::Fragment& fragment,
                               int64_t repeat_pos) {
  // One sizing code path for in-process accounting and the networked
  // transport: a codec error (including a payload over the wire limit)
  // surfaces as a Status before any counter or history mutation (no silent
  // fallback to plain-XML byte counts).
  XCQL_ASSIGN_OR_RETURN(std::string wire,
                        frag::EncodeWirePayload(fragment, ts_, wire_codec()));
  ++fragments_sent_;
  bytes_sent_ += static_cast<int64_t>(wire.size());
  for (StreamClient* c : clients_) {
    frag::Fragment copy;
    copy.id = fragment.id;
    copy.tsid = fragment.tsid;
    copy.valid_time = fragment.valid_time;
    copy.content = fragment.content->Clone();
    if (repeat_pos >= 0) {
      c->OnRepeat(name_, repeat_pos, std::move(copy));
    } else {
      c->OnFragment(name_, std::move(copy));
    }
  }
  return Status::OK();
}

Status StreamServer::Publish(frag::Fragment fragment) {
  if (fragment.content == nullptr) {
    return Status::InvalidArgument("fragment without payload");
  }
  if (ts_.FindById(fragment.tsid) == nullptr) {
    return Status::InvalidArgument("fragment tsid not in the tag structure");
  }
  next_filler_id_ = std::max(next_filler_id_, fragment.id + 1);
  // History append precedes the fan-out: a callback that re-enters
  // Publish (the retention refresh path re-publishes a live snapshot
  // version from inside OnFragment) must see its own fragment land
  // *behind* this one, or history positions drift from frame-log seqs.
  // The fan-out reads the local argument, not the stored copy — re-entry
  // may grow (or trim the front of) `history_` mid-multicast.
  {
    frag::Fragment stored;
    stored.id = fragment.id;
    stored.tsid = fragment.tsid;
    stored.valid_time = fragment.valid_time;
    stored.content = fragment.content->Clone();
    history_.push_back(std::move(stored));
  }
  Status st = Multicast(fragment);
  if (!st.ok()) {
    // A codec error surfaces before any callback runs, so nothing
    // re-entrant happened and the appended copy is still the back entry.
    history_.pop_back();
    return st;
  }
  return Status::OK();
}

Status StreamServer::RestoreHistory(frag::Fragment fragment) {
  if (fragment.content == nullptr) {
    return Status::InvalidArgument("fragment without payload");
  }
  if (ts_.FindById(fragment.tsid) == nullptr) {
    return Status::InvalidArgument("fragment tsid not in the tag structure");
  }
  next_filler_id_ = std::max(next_filler_id_, fragment.id + 1);
  history_.push_back(std::move(fragment));
  return Status::OK();
}

Status StreamServer::SeedHistoryBase(int64_t base) {
  if (base < 0) return Status::InvalidArgument("history base must be >= 0");
  if (history_base_ != 0 || !history_.empty()) {
    return Status::InvalidArgument(
        "SeedHistoryBase needs a freshly constructed server (history must "
        "be empty)");
  }
  history_base_ = base;
  return Status::OK();
}

Status StreamServer::PublishDocument(const Node& doc,
                                     const frag::FragmenterOptions& options) {
  frag::Fragmenter fragmenter(&ts_, options);
  XCQL_ASSIGN_OR_RETURN(std::vector<frag::Fragment> frags,
                        fragmenter.Split(doc));
  for (frag::Fragment& f : frags) {
    XCQL_RETURN_NOT_OK(Publish(std::move(f)));
  }
  return Status::OK();
}

Result<int> StreamServer::RepeatFiller(int64_t filler_id) {
  // Retransmit the distinct versions only: history may itself be the
  // product of duplicate publishes, and repeating duplicates would inflate
  // the wire for no information.
  struct Version {
    int64_t pos;  // 0-based publish position in history_
    const frag::Fragment* fragment;
  };
  std::vector<Version> versions;
  for (size_t i = 0; i < history_.size(); ++i) {
    const frag::Fragment& f = history_[i];
    if (f.id != filler_id) continue;
    bool duplicate = false;
    for (const Version& seen : versions) {
      if (seen.fragment->tsid == f.tsid &&
          seen.fragment->valid_time == f.valid_time &&
          Node::DeepEqual(*seen.fragment->content, *f.content)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      versions.push_back({history_base_ + static_cast<int64_t>(i), &f});
    }
  }
  int repeated = 0;
  for (const Version& v : versions) {
    XCQL_RETURN_NOT_OK(Multicast(*v.fragment, v.pos));
    ++repeated;
  }
  return repeated;
}

int64_t StreamServer::TrimHistory(int64_t keep_from) {
  const int64_t lo = history_base_;
  const int64_t hi = history_size();
  const int64_t target = std::min(std::max(keep_from, lo), hi);
  const int64_t drop = target - lo;
  if (drop <= 0) return 0;
  history_.erase(history_.begin(), history_.begin() + drop);
  history_base_ = target;
  return drop;
}

Result<int> StreamServer::ReplayTo(StreamClient* client) {
  int replayed = 0;
  for (const frag::Fragment& f : history_) {
    frag::Fragment copy;
    copy.id = f.id;
    copy.tsid = f.tsid;
    copy.valid_time = f.valid_time;
    copy.content = f.content->Clone();
    client->OnFragment(name_, std::move(copy));
    ++replayed;
  }
  return replayed;
}

EventAppender::EventAppender(StreamServer* server, int64_t context_id,
                             int context_tsid, NodePtr context)
    : server_(server),
      context_id_(context_id),
      context_tsid_(context_tsid),
      context_(std::move(context)) {
  server_->ReserveFillerId(context_id_);
}

Result<int64_t> EventAppender::Append(NodePtr element, DateTime valid_time) {
  const frag::TagNode* context_tag =
      server_->tag_structure().FindById(context_tsid_);
  if (context_tag == nullptr) {
    return Status::InvalidArgument("unknown context tsid");
  }
  const frag::TagNode* child_tag = context_tag->Child(element->name());
  if (child_tag == nullptr || !child_tag->fragmented()) {
    return Status::InvalidArgument(
        "element <" + element->name() +
        "> is not a fragmented child of the context tag <" +
        context_tag->name + ">");
  }
  int64_t id = server_->NextFillerId();
  frag::Fragment f;
  f.id = id;
  f.tsid = child_tag->id;
  f.valid_time = valid_time;
  f.content = std::move(element);
  XCQL_RETURN_NOT_OK(server_->Publish(std::move(f)));
  context_->AddChild(frag::MakeHole(id, child_tag->id));
  dirty_ = true;
  ++appended_;
  return id;
}

Status EventAppender::Remove(int64_t filler_id) {
  for (const NodePtr& c : context_->children()) {
    if (!c->is_element() || !frag::IsHoleElement(*c)) continue;
    auto id = frag::HoleId(*c);
    if (id.ok() && id.value() == filler_id) {
      context_->RemoveChild(c.get());
      dirty_ = true;
      return Status::OK();
    }
  }
  return Status::NotFound(
      StringPrintf("context has no hole for filler %lld",
                   static_cast<long long>(filler_id)));
}

Status EventAppender::Flush(DateTime valid_time) {
  if (!dirty_) return Status::OK();
  frag::Fragment f;
  f.id = context_id_;
  f.tsid = context_tsid_;
  f.valid_time = valid_time;
  f.content = context_->Clone();
  XCQL_RETURN_NOT_OK(server_->Publish(std::move(f)));
  dirty_ = false;
  return Status::OK();
}

}  // namespace xcql::stream
