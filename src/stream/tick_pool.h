// A small persistent worker pool for the continuous engine's parallel tick:
// ParallelFor fans an index range out over the workers (the calling thread
// participates too) and returns only when every index has been processed.
//
// All shared state is mutex-guarded — no atomics, no lock-free tricks — so
// the pool is trivially clean under ThreadSanitizer and the engine's
// determinism argument stays simple: workers only ever run the closure;
// everything order-sensitive happens on the caller after the join.
#ifndef XCQL_STREAM_TICK_POOL_H_
#define XCQL_STREAM_TICK_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xcql::stream {

/// \brief Fixed-size worker pool executing indexed jobs.
///
/// One ParallelFor runs at a time (calls do not nest); the closure must be
/// safe to invoke concurrently for distinct indices.
class TickPool {
 public:
  /// \param workers number of worker threads in addition to the calling
  /// thread; 0 means ParallelFor runs everything inline.
  explicit TickPool(int workers = 0);
  ~TickPool();

  TickPool(const TickPool&) = delete;
  TickPool& operator=(const TickPool&) = delete;

  /// \brief Joins the current workers and spawns `workers` new ones.
  void Resize(int workers);

  int workers() const;

  /// \brief Invokes fn(0) … fn(n-1), distributing indices over the workers
  /// and the calling thread; returns after the last invocation finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  /// Claims and runs indices until none are left. Caller must hold `lock`.
  void DrainJob(std::unique_lock<std::mutex>& lock);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // signals workers: job posted / stop
  std::condition_variable done_cv_;  // signals caller: job finished
  std::vector<std::thread> threads_;
  bool stop_ = false;

  // Current job; fn_ is non-null exactly while a ParallelFor is active.
  const std::function<void(size_t)>* fn_ = nullptr;
  size_t n_ = 0;
  size_t next_ = 0;    // next unclaimed index
  size_t running_ = 0;  // invocations currently executing
};

}  // namespace xcql::stream

#endif  // XCQL_STREAM_TICK_POOL_H_
