#include "stream/registry.h"

namespace xcql::stream {

StreamHub::~StreamHub() {
  for (StreamServer* s : servers_) s->UnregisterClient(this);
}

Status StreamHub::Subscribe(StreamServer* server) {
  if (stores_.count(server->name()) != 0) {
    return Status::InvalidArgument("already subscribed to stream '" +
                                   server->name() + "'");
  }
  // The store needs its own copy of the schema.
  XCQL_ASSIGN_OR_RETURN(frag::TagStructure ts,
                        frag::TagStructure::Parse(
                            server->tag_structure().ToXml()));
  stores_[server->name()] = std::make_unique<frag::FragmentStore>(
      std::move(ts), server->name());
  servers_.push_back(server);
  server->RegisterClient(this);
  return Status::OK();
}

Result<frag::FragmentStore*> StreamHub::AddLocalStream(const std::string& name,
                                                       frag::TagStructure ts) {
  if (stores_.count(name) != 0) {
    return Status::InvalidArgument("stream '" + name + "' already exists");
  }
  auto store = std::make_unique<frag::FragmentStore>(std::move(ts), name);
  frag::FragmentStore* raw = store.get();
  stores_[name] = std::move(store);
  return raw;
}

void StreamHub::OnFragment(const std::string& stream_name,
                           frag::Fragment fragment) {
  auto it = stores_.find(stream_name);
  if (it == stores_.end()) return;  // not subscribed; drop
  ++fragments_received_;
  // A malformed fragment from the wire is dropped: the push model has no
  // back-channel to request retransmission (paper §1).
  (void)it->second->Insert(std::move(fragment)).ok();
}

frag::FragmentStore* StreamHub::store(const std::string& name) const {
  auto it = stores_.find(name);
  return it == stores_.end() ? nullptr : it->second.get();
}

std::vector<const frag::FragmentStore*> StreamHub::stores() const {
  std::vector<const frag::FragmentStore*> out;
  out.reserve(stores_.size());
  for (const auto& [name, store] : stores_) out.push_back(store.get());
  return out;
}

}  // namespace xcql::stream
