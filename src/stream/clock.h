// Simulated time for the continuous runtime. Examples, tests and benches
// drive the clock explicitly, which makes continuous-query behaviour
// deterministic and reproducible.
#ifndef XCQL_STREAM_CLOCK_H_
#define XCQL_STREAM_CLOCK_H_

#include "temporal/datetime.h"
#include "temporal/duration.h"

namespace xcql::stream {

/// \brief A monotonic simulated clock.
class SimClock {
 public:
  SimClock() = default;
  explicit SimClock(DateTime start) : now_(start) {}

  DateTime Now() const { return now_; }

  /// \brief Moves the clock forward to `t`; moving backwards is ignored
  /// (the clock is monotonic).
  void AdvanceTo(DateTime t);

  /// \brief Moves the clock forward by a duration.
  void Advance(const Duration& d);

 private:
  DateTime now_ = DateTime(0);
};

}  // namespace xcql::stream

#endif  // XCQL_STREAM_CLOCK_H_
