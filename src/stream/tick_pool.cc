#include "stream/tick_pool.h"

namespace xcql::stream {

TickPool::TickPool(int workers) { Resize(workers); }

TickPool::~TickPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TickPool::Resize(int workers) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = false;
  }
  if (workers < 0) workers = 0;
  threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

int TickPool::workers() const { return static_cast<int>(threads_.size()); }

void TickPool::DrainJob(std::unique_lock<std::mutex>& lock) {
  while (fn_ != nullptr && next_ < n_) {
    size_t idx = next_++;
    ++running_;
    const std::function<void(size_t)>* fn = fn_;
    lock.unlock();
    (*fn)(idx);
    lock.lock();
    --running_;
  }
}

void TickPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return stop_ || (fn_ != nullptr && next_ < n_); });
    if (stop_) return;
    DrainJob(lock);
    if (running_ == 0 && next_ >= n_) done_cv_.notify_all();
  }
}

void TickPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  fn_ = &fn;
  n_ = n;
  next_ = 0;
  running_ = 0;
  work_cv_.notify_all();
  // The caller is a worker too: claim indices until none remain, then wait
  // for stragglers still executing theirs.
  DrainJob(lock);
  done_cv_.wait(lock, [this] { return running_ == 0 && next_ >= n_; });
  fn_ = nullptr;
}

}  // namespace xcql::stream
