// Client-side stream management: subscribing to servers, maintaining one
// FragmentStore per stream, and exposing the stores to the query layer.
#ifndef XCQL_STREAM_REGISTRY_H_
#define XCQL_STREAM_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "frag/fragment_store.h"
#include "stream/transport.h"

namespace xcql::stream {

/// \brief A client's collection of subscribed streams.
///
/// Subscribing registers the hub with the server (the once-per-client
/// registration of paper §1) and creates a FragmentStore that accumulates
/// every fragment the server pushes.
class StreamHub : public StreamClient {
 public:
  StreamHub() = default;
  ~StreamHub() override;

  StreamHub(const StreamHub&) = delete;
  StreamHub& operator=(const StreamHub&) = delete;

  /// \brief Subscribes to a server; the server must outlive the hub.
  Status Subscribe(StreamServer* server);

  /// \brief Creates a local store without a server (for replaying recorded
  /// fragment streams).
  Result<frag::FragmentStore*> AddLocalStream(const std::string& name,
                                              frag::TagStructure ts);

  void OnFragment(const std::string& stream_name,
                  frag::Fragment fragment) override;

  frag::FragmentStore* store(const std::string& name) const;
  std::vector<const frag::FragmentStore*> stores() const;

  /// \brief Total fragments received across all streams.
  int64_t fragments_received() const { return fragments_received_; }

 private:
  std::map<std::string, std::unique_ptr<frag::FragmentStore>> stores_;
  std::vector<StreamServer*> servers_;
  int64_t fragments_received_ = 0;
};

}  // namespace xcql::stream

#endif  // XCQL_STREAM_REGISTRY_H_
