// Minimal file I/O with Status-based error reporting.
#ifndef XCQL_COMMON_FILE_UTIL_H_
#define XCQL_COMMON_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace xcql {

/// \brief Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// \brief Writes (or overwrites) a file.
Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace xcql

#endif  // XCQL_COMMON_FILE_UTIL_H_
