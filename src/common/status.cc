#include "common/status.h"

namespace xcql {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg)
    : state_(std::make_shared<State>(State{code, std::move(msg)})) {}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : state_->msg;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(state_->code);
  out += ": ";
  out += state_->msg;
  return out;
}

}  // namespace xcql
