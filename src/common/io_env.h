// IoEnv — the process-wide seam between the durability layer and the
// filesystem. Every file operation the WAL, the checkpointer, the query
// registry and the retention driver issue goes through IoEnv::Get(), which
// defaults to the raw syscalls at zero abstraction cost (one atomic load,
// direct virtual dispatch to thin wrappers). Tests install a FaultyIoEnv to
// inject errno failures deterministically — ENOSPC, EIO, EDQUOT, short
// writes, fsync failures, rename failures — scoped by path-prefix × op ×
// mode (one-shot, after-N, probability), which is what makes the disk the
// third chaos axis next to ChaosLink (network) and WalHooks (crashes).
//
// The seam is POSIX-shaped on purpose: each method returns exactly what
// the syscall returns and reports failure through errno, so call sites
// keep their existing error handling and the injected failures are
// indistinguishable from real ones.
//
// FaultyIoEnv also keeps the bookkeeping that proves the fsyncgate rule:
// once an fsync on a descriptor fails, calling fsync on that same
// descriptor again is a correctness bug (the kernel may have dropped the
// dirty pages and a later fsync can report success for data that never hit
// the platter). Every Fsync on a descriptor with a previously failed
// Fsync increments fsync_retry_violations(); tests assert it stays zero.
#ifndef XCQL_COMMON_IO_ENV_H_
#define XCQL_COMMON_IO_ENV_H_

#include <dirent.h>
#include <sys/statvfs.h>
#include <sys/types.h>

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace xcql {

/// \brief The operations the seam covers (rule-matching key).
enum class IoOp : uint8_t {
  kOpen,      // open(2) — segments, checkpoints, manifest, registry, dirs
  kWrite,     // write(2)
  kFsync,     // fsync(2) — file and directory descriptors
  kRename,    // rename(2) — checkpoint tmp → visible
  kTruncate,  // truncate(2)/ftruncate(2) — torn-tail repair, un-write
  kUnlink,    // unlink(2) — GC, tmp cleanup
  kMkdir,     // mkdir(2) — data dir init
  kOpenDir,   // opendir(3) — recovery directory scan
  kStatvfs,   // statvfs(3) — disk-space watermarks
};

const char* IoOpName(IoOp op);

/// \brief The default environment: direct syscalls. Subclass and override
/// to interpose. All methods must stay thread-safe.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  virtual int Open(const char* path, int flags, mode_t mode);
  virtual ssize_t Write(int fd, const void* buf, size_t count);
  virtual int Fsync(int fd);
  virtual int Close(int fd);
  virtual int Rename(const char* from, const char* to);
  virtual int Truncate(const char* path, off_t length);
  virtual int Ftruncate(int fd, off_t length);
  virtual int Unlink(const char* path);
  virtual int Mkdir(const char* path, mode_t mode);
  virtual DIR* OpenDir(const char* path);
  virtual int Statvfs(const char* path, struct statvfs* out);

  /// \brief The installed environment (never null; defaults to the raw
  /// syscall implementation above).
  static IoEnv* Get();

  /// \brief Installs `env` process-wide (nullptr restores the default);
  /// returns the previously installed environment (nullptr = default).
  /// Not owned. Install before opening anything whose descriptors the
  /// environment should track (i.e. before Wal::Open / QueryChannel::Open).
  static IoEnv* Install(IoEnv* env);
};

/// \brief Free bytes available to unprivileged writers on the filesystem
/// holding `path`, via the installed environment; -1 on error.
int64_t IoFreeBytes(const std::string& path);

/// \brief One injection rule: fail `op` on paths starting with
/// `path_prefix` (empty = every path, including untracked descriptors)
/// with errno `err`, according to `mode`.
struct FaultRule {
  enum class Mode : uint8_t {
    kOneShot,      // fail the first matching call, then disarm
    kAfterN,       // let `after_n` matching calls through, then fail every
                   // one after (a disk going bad and staying bad)
    kProbability,  // fail each matching call with `probability` (seeded)
  };

  std::string path_prefix;
  IoOp op = IoOp::kWrite;
  int err = 5;  // EIO; any errno value
  Mode mode = Mode::kOneShot;
  int64_t after_n = 0;
  double probability = 1.0;
  /// kWrite only: the first injection writes roughly half the requested
  /// bytes for real and returns short; later injections fail with `err`.
  /// Models a volume running out mid-record (torn write, then hard error).
  bool short_write = false;
};

/// \brief Deterministic fault injection behind the IoEnv seam. Descriptors
/// opened through this environment are tracked back to their paths, so
/// fd-based ops (write/fsync/ftruncate) match path-prefix rules too.
class FaultyIoEnv : public IoEnv {
 public:
  explicit FaultyIoEnv(uint64_t seed = 1);

  int Open(const char* path, int flags, mode_t mode) override;
  ssize_t Write(int fd, const void* buf, size_t count) override;
  int Fsync(int fd) override;
  int Close(int fd) override;
  int Rename(const char* from, const char* to) override;
  int Truncate(const char* path, off_t length) override;
  int Ftruncate(int fd, off_t length) override;
  int Unlink(const char* path) override;
  int Mkdir(const char* path, mode_t mode) override;
  DIR* OpenDir(const char* path) override;
  int Statvfs(const char* path, struct statvfs* out) override;

  /// \brief Arms a rule; returns its id (for hits()/RemoveRule()).
  int AddRule(FaultRule rule);
  void RemoveRule(int rule_id);
  /// \brief Disarms every rule ("the disk healed"). Tracking state —
  /// descriptor paths, fsync bookkeeping — is kept.
  void ClearRules();

  /// \brief Times rule `rule_id` injected a failure (0 for unknown ids).
  int64_t hits(int rule_id) const;

  /// \brief Overrides Statvfs free space for paths under `path_prefix`
  /// (bytes < 0 removes the override). Block counts are synthesized from
  /// the real statvfs when it succeeds, else from a 4 KiB block size.
  void SetFreeBytes(const std::string& path_prefix, int64_t bytes);

  /// \brief Fsync calls issued on a descriptor whose earlier fsync (real
  /// or injected) already failed — the fsyncgate violation count. Must
  /// stay 0; see the class comment.
  int64_t fsync_retry_violations() const;

  /// \brief Total failures injected across all rules.
  int64_t total_injected() const;

 private:
  enum class Action : uint8_t { kPass, kFail, kShortWrite };

  /// Decides what happens to one matching-candidate call. Updates rule
  /// state. `path` may be empty (untracked descriptor).
  Action Decide(IoOp op, const std::string& path, int* err);
  std::string PathOf(int fd) const;  // "" if untracked; callers hold mu_

  struct RuleState {
    FaultRule rule;
    int64_t matches = 0;  // calls that matched the scope
    int64_t fired = 0;    // failures injected
    bool armed = true;
    bool short_done = false;
  };

  mutable std::mutex mu_;
  std::unordered_map<int, RuleState> rules_;
  int next_rule_id_ = 1;
  uint64_t rng_state_;
  std::unordered_map<int, std::string> fd_paths_;
  std::unordered_set<int> fsync_failed_;  // fds with a failed fsync
  int64_t fsync_retry_violations_ = 0;
  int64_t total_injected_ = 0;
  std::vector<std::pair<std::string, int64_t>> free_overrides_;
};

}  // namespace xcql

#endif  // XCQL_COMMON_IO_ENV_H_
