#include "common/random.h"

namespace xcql {

namespace {
// SplitMix64, used to expand the seed into the xorshift state.
uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t x = seed;
  s0_ = SplitMix64(x);
  s1_ = SplitMix64(x);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift state must be nonzero
}

uint64_t Random::Next() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Random::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Random::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

std::string Random::Word(int len) {
  std::string out;
  out.reserve(static_cast<size_t>(len));
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(26)));
  }
  return out;
}

}  // namespace xcql
