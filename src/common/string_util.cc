#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xcql {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsSpace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace xcql
