// Deterministic PRNG used by the XMark generator, the workload generators in
// benches/examples, and the property tests. Fixed algorithm (xorshift128+)
// so generated documents are byte-identical across platforms and runs.
#ifndef XCQL_COMMON_RANDOM_H_
#define XCQL_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace xcql {

/// \brief Deterministic, seedable random source (xorshift128+).
class Random {
 public:
  explicit Random(uint64_t seed);

  /// \brief Uniform 64-bit value.
  uint64_t Next();

  /// \brief Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Uniform(uint64_t bound);

  /// \brief Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// \brief Uniform double in [0, 1).
  double NextDouble();

  /// \brief True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// \brief Lowercase ASCII word of `len` characters.
  std::string Word(int len);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace xcql

#endif  // XCQL_COMMON_RANDOM_H_
