// Small string helpers shared by the parsers and serializers.
#ifndef XCQL_COMMON_STRING_UTIL_H_
#define XCQL_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xcql {

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// \brief Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// \brief True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// \brief Parses a whole string as a signed 64-bit decimal integer.
std::optional<int64_t> ParseInt64(std::string_view s);

/// \brief Parses a whole string as a double (leading/trailing space allowed).
std::optional<double> ParseDouble(std::string_view s);

/// \brief printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Joins pieces with `sep`.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

}  // namespace xcql

#endif  // XCQL_COMMON_STRING_UTIL_H_
