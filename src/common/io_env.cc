#include "common/io_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

namespace xcql {

namespace {

IoEnv* DefaultEnv() {
  static IoEnv env;
  return &env;
}

std::atomic<IoEnv*> g_env{nullptr};

}  // namespace

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kOpen:
      return "open";
    case IoOp::kWrite:
      return "write";
    case IoOp::kFsync:
      return "fsync";
    case IoOp::kRename:
      return "rename";
    case IoOp::kTruncate:
      return "truncate";
    case IoOp::kUnlink:
      return "unlink";
    case IoOp::kMkdir:
      return "mkdir";
    case IoOp::kOpenDir:
      return "opendir";
    case IoOp::kStatvfs:
      return "statvfs";
  }
  return "?";
}

int IoEnv::Open(const char* path, int flags, mode_t mode) {
  return ::open(path, flags, mode);
}

ssize_t IoEnv::Write(int fd, const void* buf, size_t count) {
  return ::write(fd, buf, count);
}

int IoEnv::Fsync(int fd) { return ::fsync(fd); }

int IoEnv::Close(int fd) { return ::close(fd); }

int IoEnv::Rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int IoEnv::Truncate(const char* path, off_t length) {
  return ::truncate(path, length);
}

int IoEnv::Ftruncate(int fd, off_t length) {
  return ::ftruncate(fd, length);
}

int IoEnv::Unlink(const char* path) { return ::unlink(path); }

int IoEnv::Mkdir(const char* path, mode_t mode) {
  return ::mkdir(path, mode);
}

DIR* IoEnv::OpenDir(const char* path) { return ::opendir(path); }

int IoEnv::Statvfs(const char* path, struct statvfs* out) {
  return ::statvfs(path, out);
}

IoEnv* IoEnv::Get() {
  IoEnv* env = g_env.load(std::memory_order_acquire);
  return env != nullptr ? env : DefaultEnv();
}

IoEnv* IoEnv::Install(IoEnv* env) {
  return g_env.exchange(env, std::memory_order_acq_rel);
}

int64_t IoFreeBytes(const std::string& path) {
  struct statvfs vfs;
  if (IoEnv::Get()->Statvfs(path.c_str(), &vfs) != 0) return -1;
  const uint64_t frsize = vfs.f_frsize != 0 ? vfs.f_frsize : vfs.f_bsize;
  return static_cast<int64_t>(static_cast<uint64_t>(vfs.f_bavail) * frsize);
}

// ---------------------------------------------------------------------------
// FaultyIoEnv

FaultyIoEnv::FaultyIoEnv(uint64_t seed)
    : rng_state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {}

int FaultyIoEnv::AddRule(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  int id = next_rule_id_++;
  RuleState state;
  state.rule = std::move(rule);
  rules_.emplace(id, std::move(state));
  return id;
}

void FaultyIoEnv::RemoveRule(int rule_id) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(rule_id);
}

void FaultyIoEnv::ClearRules() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
}

int64_t FaultyIoEnv::hits(int rule_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = rules_.find(rule_id);
  return it != rules_.end() ? it->second.fired : 0;
}

void FaultyIoEnv::SetFreeBytes(const std::string& path_prefix,
                               int64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = free_overrides_.begin(); it != free_overrides_.end(); ++it) {
    if (it->first == path_prefix) {
      if (bytes < 0) {
        free_overrides_.erase(it);
      } else {
        it->second = bytes;
      }
      return;
    }
  }
  if (bytes >= 0) free_overrides_.emplace_back(path_prefix, bytes);
}

int64_t FaultyIoEnv::fsync_retry_violations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsync_retry_violations_;
}

int64_t FaultyIoEnv::total_injected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_injected_;
}

std::string FaultyIoEnv::PathOf(int fd) const {
  auto it = fd_paths_.find(fd);
  return it != fd_paths_.end() ? it->second : std::string();
}

FaultyIoEnv::Action FaultyIoEnv::Decide(IoOp op, const std::string& path,
                                        int* err) {
  // Caller holds mu_. First armed rule in id order whose scope matches
  // decides; later rules never see the call (rules are few in practice).
  for (auto& [id, state] : rules_) {
    (void)id;
    if (!state.armed) continue;
    const FaultRule& rule = state.rule;
    if (rule.op != op) continue;
    if (!rule.path_prefix.empty() &&
        path.compare(0, rule.path_prefix.size(), rule.path_prefix) != 0) {
      continue;
    }
    ++state.matches;
    bool fire = false;
    switch (rule.mode) {
      case FaultRule::Mode::kOneShot:
        fire = true;
        state.armed = false;
        break;
      case FaultRule::Mode::kAfterN:
        fire = state.matches > rule.after_n;
        break;
      case FaultRule::Mode::kProbability: {
        // xorshift64*: deterministic for a given seed and call order.
        rng_state_ ^= rng_state_ >> 12;
        rng_state_ ^= rng_state_ << 25;
        rng_state_ ^= rng_state_ >> 27;
        const uint64_t r = rng_state_ * 0x2545f4914f6cdd1dull;
        fire = (static_cast<double>(r >> 11) / 9007199254740992.0) <
               rule.probability;
        break;
      }
    }
    if (!fire) return Action::kPass;
    ++state.fired;
    ++total_injected_;
    if (op == IoOp::kWrite && rule.short_write && !state.short_done) {
      state.short_done = true;
      return Action::kShortWrite;
    }
    *err = rule.err;
    return Action::kFail;
  }
  return Action::kPass;
}

int FaultyIoEnv::Open(const char* path, int flags, mode_t mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kOpen, path, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  int fd = IoEnv::Open(path, flags, mode);
  if (fd >= 0) {
    std::lock_guard<std::mutex> lock(mu_);
    fd_paths_[fd] = path;
    fsync_failed_.erase(fd);  // the kernel may reuse descriptor numbers
  }
  return fd;
}

ssize_t FaultyIoEnv::Write(int fd, const void* buf, size_t count) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    switch (Decide(IoOp::kWrite, PathOf(fd), &err)) {
      case Action::kPass:
        break;
      case Action::kFail:
        errno = err;
        return -1;
      case Action::kShortWrite: {
        size_t half = count / 2;
        if (half == 0) half = count;  // cannot shorten a 1-byte write
        return IoEnv::Write(fd, buf, half);
      }
    }
  }
  return IoEnv::Write(fd, buf, count);
}

int FaultyIoEnv::Fsync(int fd) {
  int injected = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // fsyncgate bookkeeping first: retrying fsync on a descriptor whose
    // earlier fsync failed is a bug regardless of what this call returns.
    if (fsync_failed_.count(fd) != 0) ++fsync_retry_violations_;
    int err = 0;
    if (Decide(IoOp::kFsync, PathOf(fd), &err) == Action::kFail) {
      injected = err;
    }
  }
  int rc = 0;
  if (injected != 0) {
    errno = injected;
    rc = -1;
  } else {
    rc = IoEnv::Fsync(fd);
  }
  if (rc != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    fsync_failed_.insert(fd);
  }
  return rc;
}

int FaultyIoEnv::Close(int fd) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fd_paths_.erase(fd);
    fsync_failed_.erase(fd);
  }
  return IoEnv::Close(fd);
}

int FaultyIoEnv::Rename(const char* from, const char* to) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kRename, from, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  return IoEnv::Rename(from, to);
}

int FaultyIoEnv::Truncate(const char* path, off_t length) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kTruncate, path, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  return IoEnv::Truncate(path, length);
}

int FaultyIoEnv::Ftruncate(int fd, off_t length) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kTruncate, PathOf(fd), &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  return IoEnv::Ftruncate(fd, length);
}

int FaultyIoEnv::Unlink(const char* path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kUnlink, path, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  return IoEnv::Unlink(path);
}

int FaultyIoEnv::Mkdir(const char* path, mode_t mode) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kMkdir, path, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
  }
  return IoEnv::Mkdir(path, mode);
}

DIR* FaultyIoEnv::OpenDir(const char* path) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kOpenDir, path, &err) == Action::kFail) {
      errno = err;
      return nullptr;
    }
  }
  return IoEnv::OpenDir(path);
}

int FaultyIoEnv::Statvfs(const char* path, struct statvfs* out) {
  int64_t override_bytes = -1;
  {
    std::lock_guard<std::mutex> lock(mu_);
    int err = 0;
    if (Decide(IoOp::kStatvfs, path, &err) == Action::kFail) {
      errno = err;
      return -1;
    }
    size_t best = 0;
    for (const auto& [prefix, bytes] : free_overrides_) {
      if (std::strncmp(path, prefix.c_str(), prefix.size()) == 0 &&
          (override_bytes < 0 || prefix.size() >= best)) {
        best = prefix.size();
        override_bytes = bytes;
      }
    }
  }
  int rc = IoEnv::Statvfs(path, out);
  if (override_bytes < 0) return rc;
  if (rc != 0) {
    std::memset(out, 0, sizeof(*out));
    out->f_bsize = 4096;
    out->f_frsize = 4096;
  }
  const uint64_t frsize = out->f_frsize != 0 ? out->f_frsize : out->f_bsize;
  const uint64_t blocks =
      static_cast<uint64_t>(override_bytes) / (frsize != 0 ? frsize : 4096);
  out->f_bavail = blocks;
  out->f_bfree = blocks;
  return 0;
}

}  // namespace xcql
