// Arrow-style Status: error propagation without exceptions across the
// public API. A Status is either OK or carries a code and message.
#ifndef XCQL_COMMON_STATUS_H_
#define XCQL_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <utility>

namespace xcql {

/// \brief Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kParseError,        // XML / XQuery / XCQL / datetime syntax error
  kTypeError,         // dynamic type mismatch during evaluation
  kNotFound,          // stream / filler / function / variable missing
  kUnsupported,       // construct outside the implemented subset
  kInternal,          // invariant violation inside the library
};

/// \brief Returns a short human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: OK, or a code plus message.
///
/// OK is represented by a null state pointer so copying a success Status is
/// free; error details are heap-allocated only on the failure path.
class Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  const std::string& message() const;

  /// \brief "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  std::shared_ptr<State> state_;  // null means OK
};

}  // namespace xcql

/// Propagates a non-OK Status to the caller.
#define XCQL_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::xcql::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#endif  // XCQL_COMMON_STATUS_H_
