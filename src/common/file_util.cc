#include "common/file_util.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/io_env.h"

namespace xcql {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading '" + path + "'");
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  // Through the IoEnv seam, so disk-fault tests can inject failures at
  // every write site the tree has, not just the WAL's.
  IoEnv* io = IoEnv::Get();
  int fd = io->Open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot create '" + path +
                                   "': " + std::strerror(errno));
  }
  size_t off = 0;
  while (off < content.size()) {
    ssize_t n = io->Write(fd, content.data() + off, content.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Status::Internal("error writing '" + path +
                                   "': " + std::strerror(errno));
      (void)io->Close(fd);
      return st;
    }
    off += static_cast<size_t>(n);
  }
  if (io->Close(fd) != 0) {
    return Status::Internal("error writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace xcql
