#include "common/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace xcql {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open '" + path +
                            "': " + std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) {
    return Status::Internal("error reading '" + path + "'");
  }
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot create '" + path +
                                   "': " + std::strerror(errno));
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), f);
  bool failed = written != content.size() || std::fclose(f) != 0;
  if (failed) {
    return Status::Internal("error writing '" + path + "'");
  }
  return Status::OK();
}

}  // namespace xcql
