// Process-wide interned name table. Tag and attribute names repeat millions
// of times across fragments and query results; interning maps each distinct
// spelling to a small stable integer so hot-path comparisons (path node
// tests, hole detection, temporalize grouping) are int compares instead of
// string compares.
//
// Ids are stable for the process lifetime and never reused; the table only
// grows (schemas are tiny, so this is bytes, not megabytes). Lookup takes a
// shared lock, first-time insertion a unique lock, so concurrent tick
// workers interning the same names never race.
#ifndef XCQL_COMMON_INTERNER_H_
#define XCQL_COMMON_INTERNER_H_

#include <string>
#include <string_view>

namespace xcql {

/// \brief Id of the empty name. Text nodes carry it; it is pre-interned so
/// the (very common) empty case never touches the table.
inline constexpr int kEmptyNameId = 0;

/// \brief Returns the stable id for `name`, interning it on first sight.
int InternName(std::string_view name);

/// \brief The spelling behind an id. Precondition: `id` came from
/// InternName in this process.
const std::string& InternedName(int id);

}  // namespace xcql

#endif  // XCQL_COMMON_INTERNER_H_
