#include "common/interner.h"

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

namespace xcql {

namespace {

struct Table {
  std::shared_mutex mu;
  // Keys view into `names`, whose deque-backed strings never move.
  std::unordered_map<std::string_view, int> ids;
  std::deque<std::string> names;

  Table() {
    names.emplace_back();
    ids.emplace(std::string_view(names.back()), kEmptyNameId);
  }
};

// Leaked intentionally: interned ids may be read from static destructors
// (e.g. global node trees torn down at exit), so the table must outlive
// every other static.
Table& GlobalTable() {
  static Table* table = new Table();
  return *table;
}

}  // namespace

int InternName(std::string_view name) {
  if (name.empty()) return kEmptyNameId;
  Table& t = GlobalTable();
  {
    std::shared_lock<std::shared_mutex> lock(t.mu);
    auto it = t.ids.find(name);
    if (it != t.ids.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  t.names.emplace_back(name);
  int id = static_cast<int>(t.names.size()) - 1;
  t.ids.emplace(std::string_view(t.names.back()), id);
  return id;
}

const std::string& InternedName(int id) {
  Table& t = GlobalTable();
  std::shared_lock<std::shared_mutex> lock(t.mu);
  return t.names[static_cast<size_t>(id)];
}

}  // namespace xcql
