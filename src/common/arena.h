// Monotonic allocation arena for transient evaluation objects.
//
// A query evaluation creates thousands of short-lived XML nodes (projection
// copies, attribute nodes, constructor results); allocating each through
// the global heap is a measurable fraction of tick time. An ArenaPool hands
// out bump-pointer allocations from few large blocks and frees everything
// at once when the pool dies.
//
// Lifetime: result nodes ESCAPE the evaluation (into dedup sets, callbacks,
// caller-held sequences), so the arena cannot be freed when the evaluation
// returns. Instead, arena-backed nodes are created with
// std::allocate_shared over an ArenaAllocator that holds a
// shared_ptr<ArenaPool>: the control block's stored allocator copy keeps
// the pool alive until the last escaping node is released, and only then do
// the blocks go back to the heap. Deallocation of individual objects is a
// no-op by design.
//
// An ArenaPool is NOT thread-safe; each evaluation owns its own pool
// (destruction of the last node may happen on any thread — that only
// touches the shared_ptr refcount and the pool destructor, which is safe).
#ifndef XCQL_COMMON_ARENA_H_
#define XCQL_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace xcql {

class ArenaPool {
 public:
  ArenaPool() = default;
  ArenaPool(const ArenaPool&) = delete;
  ArenaPool& operator=(const ArenaPool&) = delete;

  /// \brief Bump-allocates `size` bytes aligned to `align`. Never returns
  /// null (falls back to a dedicated block for oversized requests).
  void* Allocate(size_t size, size_t align) {
    size_t p = (pos_ + align - 1) & ~(align - 1);
    if (p + size > cap_) {
      Grow(size + align);
      p = (pos_ + align - 1) & ~(align - 1);
    }
    pos_ = p + size;
    bytes_allocated_ += size;
    return cur_ + p;
  }

  /// \brief Total bytes handed out over the pool's lifetime (the high-water
  /// mark surfaced in ExecStats — nothing is ever returned early).
  size_t bytes_allocated() const { return bytes_allocated_; }

 private:
  static constexpr size_t kFirstBlock = 16 * 1024;
  static constexpr size_t kMaxBlock = 512 * 1024;

  void Grow(size_t need) {
    size_t want = next_block_;
    if (want < need) want = need;
    if (next_block_ < kMaxBlock) next_block_ *= 2;
    blocks_.emplace_back(new char[want]);
    cur_ = blocks_.back().get();
    cap_ = want;
    pos_ = 0;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* cur_ = nullptr;
  size_t pos_ = 0;
  size_t cap_ = 0;
  size_t next_block_ = kFirstBlock;
  size_t bytes_allocated_ = 0;
};

/// \brief Minimal std allocator over an ArenaPool. Copies (including the
/// one std::allocate_shared stores in the control block) share ownership of
/// the pool, which is what ties the pool's lifetime to its objects.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(std::shared_ptr<ArenaPool> pool)
      : pool_(std::move(pool)) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : pool_(other.pool_) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) noexcept {
    // Monotonic: memory is reclaimed when the pool dies.
  }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return pool_ == other.pool_;
  }

  std::shared_ptr<ArenaPool> pool_;
};

}  // namespace xcql

#endif  // XCQL_COMMON_ARENA_H_
