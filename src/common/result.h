// Arrow-style Result<T>: a value or a Status, for fallible functions that
// produce a value.
#ifndef XCQL_COMMON_RESULT_H_
#define XCQL_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xcql {

/// \brief Holds either a successfully produced T or the Status explaining
/// why it could not be produced.
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return value;` / `return Status::ParseError(...)`.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status st) : v_(std::move(st)) {    // NOLINT(google-explicit-constructor)
    assert(!status().ok() && "Result constructed from OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  /// \brief Access the value. Must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  /// \brief Move the value out. Must only be called when ok().
  T MoveValue() { return std::get<T>(std::move(v_)); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace xcql

/// Assigns the value of a Result expression to `lhs`, or propagates its error
/// Status to the caller.
#define XCQL_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).MoveValue()

#define XCQL_CONCAT_IMPL(a, b) a##b
#define XCQL_CONCAT(a, b) XCQL_CONCAT_IMPL(a, b)

#define XCQL_ASSIGN_OR_RETURN(lhs, expr) \
  XCQL_ASSIGN_OR_RETURN_IMPL(XCQL_CONCAT(_res_, __LINE__), lhs, expr)

#endif  // XCQL_COMMON_RESULT_H_
