// Tests for the optional features built on the Tag Structure: schema
// inference from sample documents and the §4.1 tag-id wire compression.
#include <gtest/gtest.h>

#include "frag/assembler.h"
#include "frag/codec.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "frag/infer.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xcql::frag {
namespace {

// ---- Tag Structure inference ----------------------------------------------------

TEST(InferTest, RecoversThePaperCreditSchema) {
  auto doc = ParseXml(testutil::kCreditView);
  ASSERT_TRUE(doc.ok());
  auto ts = InferTagStructure(*doc.value());
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();

  const TagNode* root = ts.value().root();
  EXPECT_EQ(root->name, "creditAccounts");
  EXPECT_EQ(root->type, TagType::kSnapshot);
  const TagNode* account = root->Child("account");
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->type, TagType::kTemporal);
  EXPECT_EQ(account->Child("customer")->type, TagType::kSnapshot);
  EXPECT_EQ(account->Child("creditLimit")->type, TagType::kTemporal);
  const TagNode* txn = account->Child("transaction");
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->type, TagType::kEvent);  // vtFrom == vtTo on every one
  EXPECT_EQ(txn->Child("vendor")->type, TagType::kSnapshot);
  EXPECT_EQ(txn->Child("status")->type, TagType::kTemporal);
  EXPECT_EQ(txn->Child("amount")->type, TagType::kSnapshot);
}

TEST(InferTest, InferredStructureFragmentsTheDocument) {
  auto doc = ParseXml(testutil::kCreditView);
  ASSERT_TRUE(doc.ok());
  auto ts = InferTagStructure(*doc.value());
  ASSERT_TRUE(ts.ok());
  Fragmenter fragmenter(&ts.value());
  auto frags = fragmenter.Split(*doc.value());
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  EXPECT_EQ(frags.value().size(), 11u);  // same as the hand-written schema

  // And the round trip still holds.
  auto ts2 = TagStructure::Parse(ts.value().ToXml());
  ASSERT_TRUE(ts2.ok());
  FragmentStore store(std::move(ts2).MoveValue(), "");
  ASSERT_TRUE(store.InsertAll(std::move(frags).MoveValue()).ok());
  auto view = Temporalize(store, false);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(Node::DeepEqual(*doc.value(), *view.value()));
}

TEST(InferTest, MixedEvidencePromotesToTemporal) {
  // One occurrence is an instant, another an interval: the tag must be
  // temporal (events are the special case).
  auto doc = ParseXml(R"(
    <root>
      <x vtFrom="2004-01-01T00:00:00" vtTo="2004-01-01T00:00:00"/>
      <x vtFrom="2004-02-01T00:00:00" vtTo="now"/>
    </root>)");
  ASSERT_TRUE(doc.ok());
  auto ts = InferTagStructure(*doc.value());
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value().root()->Child("x")->type, TagType::kTemporal);
}

TEST(InferTest, PlainDocumentIsAllSnapshot) {
  auto doc = ParseXml("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(doc.ok());
  auto ts = InferTagStructure(*doc.value());
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts.value().root()->Child("b")->type, TagType::kSnapshot);
  EXPECT_EQ(ts.value().size(), 3u);  // a, b, c — occurrences merged
}

// ---- Wire compression --------------------------------------------------------------

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ts = TagStructure::Parse(testutil::kCreditTagStructure);
    ASSERT_TRUE(ts.ok());
    ts_ = std::move(ts).MoveValue();
    auto doc = ParseXml(testutil::kCreditView);
    ASSERT_TRUE(doc.ok());
    auto ts_frag = TagStructure::Parse(testutil::kCreditTagStructure);
    Fragmenter fragmenter(&ts_frag.value());
    auto frags = fragmenter.Split(*doc.value());
    ASSERT_TRUE(frags.ok());
    frags_ = std::move(frags).MoveValue();
  }

  TagStructure ts_;
  std::vector<Fragment> frags_;
};

TEST_F(CodecTest, RoundTripsEveryFragment) {
  for (const Fragment& f : frags_) {
    auto wire = CompressFragment(f, ts_);
    ASSERT_TRUE(wire.ok()) << wire.status().ToString();
    auto back = DecompressFragment(wire.value(), ts_);
    ASSERT_TRUE(back.ok()) << back.status().ToString() << "\n"
                           << wire.value();
    EXPECT_EQ(back.value().id, f.id);
    EXPECT_EQ(back.value().tsid, f.tsid);
    EXPECT_EQ(back.value().valid_time, f.valid_time);
    EXPECT_TRUE(Node::DeepEqual(*back.value().content, *f.content))
        << wire.value();
  }
}

TEST_F(CodecTest, CompressesTheStream) {
  size_t plain = 0, compressed = 0;
  for (const Fragment& f : frags_) {
    plain += f.ToXml().size();
    auto wire = CompressFragment(f, ts_);
    ASSERT_TRUE(wire.ok());
    compressed += wire.value().size();
  }
  EXPECT_LT(compressed, plain);
  // Tag-id abbreviation should save a decent fraction on this tag-heavy
  // stream.
  EXPECT_LT(static_cast<double>(compressed) / static_cast<double>(plain),
            0.85)
      << "plain=" << plain << " compressed=" << compressed;
}

TEST_F(CodecTest, CompressedFormUsesTagIds) {
  // Find a transaction fragment (tsid 5) and check the compact shape.
  for (const Fragment& f : frags_) {
    if (f.tsid != 5) continue;
    auto wire = CompressFragment(f, ts_);
    ASSERT_TRUE(wire.ok());
    EXPECT_NE(wire.value().find("<_5"), std::string::npos) << wire.value();
    EXPECT_NE(wire.value().find("<_6>"), std::string::npos) << wire.value();
    EXPECT_EQ(wire.value().find("<transaction"), std::string::npos);
    return;
  }
  FAIL() << "no transaction fragment found";
}

TEST_F(CodecTest, RejectsUndeclaredPayloads) {
  Fragment f;
  f.id = 1;
  f.tsid = 5;
  f.valid_time = DateTime(0);
  f.content = Node::Element("transaction");
  f.content->AddChild(Node::Element("bogus"));
  EXPECT_FALSE(CompressFragment(f, ts_).ok());

  Fragment g;
  g.id = 1;
  g.tsid = 5;
  g.valid_time = DateTime(0);
  g.content = Node::Element("wrongname");
  EXPECT_FALSE(CompressFragment(g, ts_).ok());
}

TEST_F(CodecTest, RejectsMalformedCompressedData) {
  EXPECT_FALSE(DecompressFragment("<notf/>", ts_).ok());
  EXPECT_FALSE(DecompressFragment("<f i=\"1\" t=\"5\"/>", ts_).ok());
  EXPECT_FALSE(
      DecompressFragment("<f i=\"1\" t=\"5\" v=\"0\"><_99/></f>", ts_).ok());
  EXPECT_FALSE(
      DecompressFragment("<f i=\"1\" t=\"5\" v=\"0\"><junk/></f>", ts_)
          .ok());
}

}  // namespace
}  // namespace xcql::frag
