// Disk-fault chaos tests (common/io_env.h): the third chaos axis, next to
// ChaosLink (network faults) and WalHooks (crash points). A FaultyIoEnv is
// installed under the durability layer and injects errno failures — ENOSPC,
// EIO, EDQUOT, short writes, fsync failures, rename failures — at every
// file-touching site, proving three contracts:
//
//  1. No injected failure crashes the process or silently loses acked
//     data: a restart always recovers a contiguous, byte-identical prefix.
//  2. fsyncgate: a descriptor whose fsync failed is never fsync'd again
//     (FaultyIoEnv counts violations; every test asserts the count is 0).
//  3. Self-healing: a degraded server re-arms into a fresh durable
//     generation once the disk heals, subscribers are cut exactly once per
//     epoch change, and the converged subscriber state is byte-identical
//     to a run that never faulted.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/io_env.h"
#include "frag/assembler.h"
#include "frag/fragment.h"
#include "net/frame.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "net/wal.h"
#include "stream/transport.h"
#include "xml/serializer.h"

#ifndef EDQUOT
#define EDQUOT 122
#endif

namespace xcql::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

using xcql::FaultRule;
using xcql::FaultyIoEnv;
using xcql::IoEnv;
using xcql::IoOp;

constexpr const char* kStream = "pkts";
constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
  </tag>
</tag>)";

frag::TagStructure MustParseTs(const std::string& xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

// Polls until `pred` holds or the deadline passes.
template <typename Pred>
bool PollFor(Pred pred, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

// Deterministic 64-byte WAL record for seq i (matches wal_test.cc).
std::string PayloadFor(int64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "record-%06lld",
                static_cast<long long>(seq));
  std::string payload = buf;
  payload.resize(40, '.');
  return payload;
}

std::string RecordFor(int64_t seq) {
  Frame f;
  f.type = FrameType::kFragment;
  f.seq = static_cast<uint64_t>(seq);
  f.payload = PayloadFor(seq);
  auto bytes = EncodeFrame(f, kFrameVersionCrc);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? std::move(bytes).MoveValue() : std::string();
}

// Recovery must always be a contiguous prefix 0..n-1 with byte-identical
// payloads; losing a suffix the fault made un-durable is allowed, losing
// or corrupting anything before it is not.
void ExpectPrefix(const WalRecovery& rec, int64_t at_least = 0) {
  ASSERT_GE(static_cast<int64_t>(rec.records.size()), at_least);
  for (size_t i = 0; i < rec.records.size(); ++i) {
    ASSERT_EQ(rec.records[i].seq, static_cast<int64_t>(i));
    ASSERT_EQ(rec.records[i].payload, PayloadFor(static_cast<int64_t>(i)));
  }
}

bool HasTmpFile(const std::string& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().string().size() >= 4 &&
        e.path().string().substr(e.path().string().size() - 4) == ".tmp") {
      return true;
    }
  }
  return false;
}

// ---- FaultyIoEnv itself -----------------------------------------------------

class IoEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xcql_ioenv_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
    env_ = std::make_unique<FaultyIoEnv>(7);
    IoEnv::Install(env_.get());
  }
  void TearDown() override {
    IoEnv::Install(nullptr);
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string root_;
  std::unique_ptr<FaultyIoEnv> env_;
};

TEST_F(IoEnvTest, OneShotRuleFailsOnceThenDisarms) {
  FaultRule rule;
  rule.path_prefix = root_;
  rule.op = IoOp::kWrite;
  rule.err = ENOSPC;
  int id = env_->AddRule(rule);

  int fd = IoEnv::Get()->Open((root_ + "/f").c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), 1);  // disarmed
  EXPECT_EQ(env_->hits(id), 1);
  EXPECT_EQ(env_->total_injected(), 1);
  IoEnv::Get()->Close(fd);
}

TEST_F(IoEnvTest, AfterNRuleIsStickyLikeADyingDisk) {
  FaultRule rule;
  rule.path_prefix = root_;
  rule.op = IoOp::kWrite;
  rule.err = EIO;
  rule.mode = FaultRule::Mode::kAfterN;
  rule.after_n = 2;
  int id = env_->AddRule(rule);

  int fd = IoEnv::Get()->Open((root_ + "/f").c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), 1);
  EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), 1);
  for (int i = 0; i < 3; ++i) {
    errno = 0;
    EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), -1);
    EXPECT_EQ(errno, EIO);
  }
  EXPECT_EQ(env_->hits(id), 3);
  env_->RemoveRule(id);
  EXPECT_EQ(IoEnv::Get()->Write(fd, "x", 1), 1);  // the disk healed
  IoEnv::Get()->Close(fd);
}

TEST_F(IoEnvTest, ShortWriteLandsHalfThenHardErrors) {
  FaultRule rule;
  rule.path_prefix = root_;
  rule.op = IoOp::kWrite;
  rule.err = ENOSPC;
  rule.mode = FaultRule::Mode::kAfterN;
  rule.after_n = 0;
  rule.short_write = true;
  env_->AddRule(rule);

  int fd = IoEnv::Get()->Open((root_ + "/f").c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  std::string data(100, 'a');
  ssize_t n = IoEnv::Get()->Write(fd, data.data(), data.size());
  ASSERT_GT(n, 0);  // the short half really landed
  ASSERT_LT(n, static_cast<ssize_t>(data.size()));
  errno = 0;
  EXPECT_EQ(IoEnv::Get()->Write(fd, data.data(), data.size()), -1);
  EXPECT_EQ(errno, ENOSPC);
  IoEnv::Get()->Close(fd);
  EXPECT_EQ(fs::file_size(root_ + "/f"), static_cast<uintmax_t>(n));
}

TEST_F(IoEnvTest, FsyncRetryViolationIsCounted) {
  FaultRule rule;
  rule.path_prefix = root_;
  rule.op = IoOp::kFsync;
  rule.err = EIO;
  env_->AddRule(rule);

  int fd = IoEnv::Get()->Open((root_ + "/f").c_str(),
                              O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(IoEnv::Get()->Fsync(fd), -1);
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
  // Deliberately break the fsyncgate rule — the bookkeeping must see it.
  IoEnv::Get()->Fsync(fd);
  EXPECT_EQ(env_->fsync_retry_violations(), 1);
  IoEnv::Get()->Close(fd);

  // Closing releases the descriptor: a *new* file reusing the fd number
  // must not inherit the failed-fsync taint.
  int fd2 = IoEnv::Get()->Open((root_ + "/g").c_str(),
                               O_CREAT | O_WRONLY | O_TRUNC, 0644);
  ASSERT_GE(fd2, 0);
  EXPECT_EQ(IoEnv::Get()->Fsync(fd2), 0);
  EXPECT_EQ(env_->fsync_retry_violations(), 1);
  IoEnv::Get()->Close(fd2);
}

TEST_F(IoEnvTest, StatvfsOverrideUsesLongestPrefixAndFeedsIoFreeBytes) {
  env_->SetFreeBytes(root_, 1 << 20);
  env_->SetFreeBytes(root_ + "/inner", 4 << 20);
  EXPECT_EQ(xcql::IoFreeBytes(root_), 1 << 20);
  EXPECT_EQ(xcql::IoFreeBytes(root_ + "/inner/deep"), 4 << 20);
  env_->SetFreeBytes(root_, -1);
  env_->SetFreeBytes(root_ + "/inner", -1);
  EXPECT_GT(xcql::IoFreeBytes(root_), 0);  // back to the real filesystem
}

// ---- WAL fault matrix -------------------------------------------------------

class DiskFaultWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xcql_disk_fault_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
    env_ = std::make_unique<FaultyIoEnv>(42);
    IoEnv::Install(env_.get());
  }
  void TearDown() override {
    IoEnv::Install(nullptr);
    WalHooks::Install(nullptr);
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string Dir(const std::string& name) { return root_ + "/" + name; }

  Result<std::unique_ptr<Wal>> OpenWal(const std::string& dir,
                                       const WalOptions& opts,
                                       WalRecovery* rec) {
    return Wal::Open(dir, "packets", kPacketTs, opts, rec);
  }

  std::string root_;
  std::unique_ptr<FaultyIoEnv> env_;
};

// Every append-path site × errno class: the append fails cleanly, the
// handle breaks (no out-of-order appends past a record of unknown fate),
// nothing crashes, and a restart recovers a contiguous prefix.
TEST_F(DiskFaultWalTest, AppendFaultMatrixBreaksCleanlyAndRecoversPrefix) {
  struct Case {
    const char* name;
    IoOp op;
    int err;
    bool short_write;
  };
  const Case kCases[] = {
      {"write-enospc", IoOp::kWrite, ENOSPC, false},
      {"write-eio", IoOp::kWrite, EIO, false},
      {"write-edquot", IoOp::kWrite, EDQUOT, false},
      {"write-short-then-enospc", IoOp::kWrite, ENOSPC, true},
      {"fsync-eio", IoOp::kFsync, EIO, false},
      {"fsync-enospc", IoOp::kFsync, ENOSPC, false},
  };
  int n = 0;
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    const std::string dir = Dir("wal" + std::to_string(n++));
    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    for (int64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }

    FaultRule rule;
    rule.path_prefix = dir + "/wal-";  // the active segment only
    rule.op = c.op;
    rule.err = c.err;
    rule.short_write = c.short_write;
    if (c.short_write) {
      // One-shot would disarm after the short half; the point of the
      // short-write case is the torn record *followed by* the hard error.
      rule.mode = FaultRule::Mode::kAfterN;
      rule.after_n = 0;
    }
    int id = env_->AddRule(rule);

    Status st = wal.value()->Append(3, RecordFor(3));
    ASSERT_FALSE(st.ok()) << c.name;
    EXPECT_TRUE(wal.value()->broken());
    EXPECT_GE(wal.value()->stats().append_failures, 1);
    // Broken means broken: the next append is refused without touching
    // the descriptor (an out-of-order record would corrupt recovery).
    EXPECT_FALSE(wal.value()->Append(4, RecordFor(4)).ok());
    EXPECT_GE(env_->hits(id), 1);
    wal.value()->Close();
    env_->ClearRules();

    WalRecovery rerec;
    auto rewal = OpenWal(dir, WalOptions{}, &rerec);
    ASSERT_TRUE(rewal.ok()) << rewal.status().ToString();
    ExpectPrefix(rerec, /*at_least=*/3);  // seqs 0..2 were acked durable
    EXPECT_LE(rerec.records.size(), 4u);
    // The recovered handle is appendable: life goes on from the prefix.
    int64_t next = rewal.value()->next_seq();
    EXPECT_TRUE(rewal.value()->Append(next, RecordFor(next)).ok());
    rewal.value()->Close();
  }
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

TEST_F(DiskFaultWalTest, RotationOpenFailureBreaksWithoutLosingThePrefix) {
  const std::string dir = Dir("wal");
  WalOptions opts;
  opts.segment_bytes = 256;  // 64-byte records: rotate every 4 appends
  WalRecovery rec;
  auto wal = OpenWal(dir, opts, &rec);
  ASSERT_TRUE(wal.ok());
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
  }

  FaultRule rule;
  rule.path_prefix = dir + "/wal-";
  rule.op = IoOp::kOpen;
  rule.err = ENOSPC;
  env_->AddRule(rule);

  // Appends keep failing at the rotation boundary until the handle breaks
  // or the rule disarms; either way nothing before the boundary is lost.
  int64_t seq = 3;
  Status st;
  while (seq < 10 && (st = wal.value()->Append(seq, RecordFor(seq))).ok()) {
    ++seq;
  }
  ASSERT_FALSE(st.ok());
  wal.value()->Close();
  env_->ClearRules();

  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok());
  ExpectPrefix(rerec, /*at_least=*/3);
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Satellite: a failed checkpoint must unlink its half-written temp file —
// at the write, the fsync, and the rename site — and a stale *.tmp left by
// a crash is swept at the next Open.
TEST_F(DiskFaultWalTest, CheckpointFailureLeavesNoTmpBehind) {
  const IoOp kSites[] = {IoOp::kWrite, IoOp::kFsync, IoOp::kRename};
  int n = 0;
  for (IoOp site : kSites) {
    SCOPED_TRACE(static_cast<int>(site));
    const std::string dir = Dir("ckpt" + std::to_string(n++));
    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }

    FaultRule rule;
    rule.path_prefix = dir + "/checkpoint-";
    rule.op = site;
    rule.err = site == IoOp::kWrite ? ENOSPC : EIO;
    env_->AddRule(rule);

    EXPECT_FALSE(wal.value()->Checkpoint().ok());
    EXPECT_FALSE(HasTmpFile(dir));
    // A checkpoint failure is not fatal to the log: appends and a retried
    // checkpoint (the rule is one-shot) both succeed.
    EXPECT_TRUE(wal.value()->Append(5, RecordFor(5)).ok());
    EXPECT_TRUE(wal.value()->Checkpoint().ok());
    EXPECT_EQ(wal.value()->checkpointed(), 6);
    wal.value()->Close();
    env_->ClearRules();

    WalRecovery rerec;
    auto rewal = OpenWal(dir, WalOptions{}, &rerec);
    ASSERT_TRUE(rewal.ok());
    ExpectPrefix(rerec, /*at_least=*/6);
    rewal.value()->Close();
  }
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

TEST_F(DiskFaultWalTest, StaleTmpFromACrashIsSweptAtOpen) {
  const std::string dir = Dir("wal");
  {
    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
    wal.value()->Close();
  }
  {
    std::ofstream out(dir + "/checkpoint-00000000000000000042.ckpt.tmp");
    out << "half-written checkpoint from a crashed process";
  }
  ASSERT_TRUE(HasTmpFile(dir));
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  EXPECT_FALSE(HasTmpFile(dir));
  ExpectPrefix(rec, /*at_least=*/1);
  wal.value()->Close();
}

// The re-arm core: a broken handle rebuilds in place into a fresh
// generation — new epoch, manifest carrying the base, the live records
// re-checkpointed through fresh descriptors — and appends resume.
TEST_F(DiskFaultWalTest, RearmRebuildsAFreshGenerationInPlace) {
  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  const uint64_t old_epoch = wal.value()->epoch();
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
  }

  FaultRule rule;
  rule.path_prefix = dir + "/wal-";
  rule.op = IoOp::kFsync;
  rule.err = EIO;
  env_->AddRule(rule);
  ASSERT_FALSE(wal.value()->Append(5, RecordFor(5)).ok());
  ASSERT_TRUE(wal.value()->broken());

  // Retention already trimmed seqs 0..1 from memory: the caller re-arms
  // with its live tail, seqs 2..5 (including the frame whose append the
  // sick descriptor rejected — it never left memory).
  std::vector<std::shared_ptr<const std::string>> live;
  for (int64_t i = 2; i <= 5; ++i) {
    live.push_back(std::make_shared<const std::string>(RecordFor(i)));
  }
  ASSERT_TRUE(wal.value()->Rearm(2, live).ok());
  EXPECT_FALSE(wal.value()->broken());
  EXPECT_NE(wal.value()->epoch(), old_epoch);
  EXPECT_EQ(wal.value()->base_seq(), 2);
  EXPECT_EQ(wal.value()->next_seq(), 6);
  EXPECT_EQ(wal.value()->stats().rearms, 1);
  EXPECT_TRUE(wal.value()->Append(6, RecordFor(6)).ok());
  const uint64_t new_epoch = wal.value()->epoch();
  wal.value()->Close();

  // A restart sees only the new generation: base 2, records 2..6, the
  // re-armed epoch — no trace of the old one.
  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok()) << rewal.status().ToString();
  EXPECT_EQ(rerec.epoch, new_epoch);
  EXPECT_EQ(rerec.base_seq, 2);
  ASSERT_EQ(rerec.records.size(), 5u);
  for (size_t i = 0; i < rerec.records.size(); ++i) {
    EXPECT_EQ(rerec.records[i].seq, static_cast<int64_t>(2 + i));
    EXPECT_EQ(rerec.records[i].payload,
              PayloadFor(static_cast<int64_t>(2 + i)));
  }
  rewal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

TEST_F(DiskFaultWalTest, RearmOnAStillSickDiskFailsAndStaysRetryable) {
  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  for (int64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
  }

  // A disk that is bad and stays bad: every write under the dir fails.
  FaultRule rule;
  rule.path_prefix = dir;
  rule.op = IoOp::kWrite;
  rule.err = EIO;
  rule.mode = FaultRule::Mode::kAfterN;
  rule.after_n = 0;
  int id = env_->AddRule(rule);
  ASSERT_FALSE(wal.value()->Append(3, RecordFor(3)).ok());
  ASSERT_TRUE(wal.value()->broken());

  std::vector<std::shared_ptr<const std::string>> live;
  for (int64_t i = 0; i <= 3; ++i) {
    live.push_back(std::make_shared<const std::string>(RecordFor(i)));
  }
  EXPECT_FALSE(wal.value()->Rearm(0, live).ok());
  EXPECT_TRUE(wal.value()->broken());

  env_->RemoveRule(id);  // the disk heals; the same Rearm now succeeds
  ASSERT_TRUE(wal.value()->Rearm(0, live).ok());
  EXPECT_FALSE(wal.value()->broken());
  EXPECT_EQ(wal.value()->next_seq(), 4);
  EXPECT_TRUE(wal.value()->Append(4, RecordFor(4)).ok());
  wal.value()->Close();

  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok());
  ExpectPrefix(rerec, /*at_least=*/5);
  rewal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Satellite: the interval flusher's fsync failure must surface through the
// failure callback (there is no append on which to return an error).
TEST_F(DiskFaultWalTest, FlusherFsyncFailureFiresTheFailureCallback) {
  const std::string dir = Dir("wal");
  WalOptions opts;
  opts.fsync = FsyncPolicy::kInterval;
  opts.fsync_interval = 10ms;
  WalRecovery rec;
  auto wal = OpenWal(dir, opts, &rec);
  ASSERT_TRUE(wal.ok());

  std::atomic<int> fired{0};
  Status seen;
  std::mutex seen_mu;
  wal.value()->SetFailureCallback([&](const Status& why) {
    std::lock_guard<std::mutex> lock(seen_mu);
    seen = why;
    fired.fetch_add(1);
  });

  ASSERT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
  FaultRule rule;
  rule.path_prefix = dir + "/wal-";
  rule.op = IoOp::kFsync;
  rule.err = EIO;
  env_->AddRule(rule);
  ASSERT_TRUE(wal.value()->Append(1, RecordFor(1)).ok());  // dirties the log

  ASSERT_TRUE(PollFor([&] { return fired.load() > 0; }, 5s));
  EXPECT_TRUE(wal.value()->broken());
  {
    std::lock_guard<std::mutex> lock(seen_mu);
    EXPECT_FALSE(seen.ok());
  }
  // Exactly one notification per break, and — fsyncgate — the broken
  // descriptor was never fsync'd again, including by Close.
  EXPECT_EQ(fired.load(), 1);
  wal.value()->SetFailureCallback(nullptr);
  wal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Real-ENOSPC smoke: no injection, a real kernel limit. A child caps its
// file size with RLIMIT_FSIZE (SIGXFSZ ignored, so writes fail with
// EFBIG), appends until the disk "fills", and must break cleanly; the
// parent then recovers a contiguous prefix.
TEST_F(DiskFaultWalTest, RealFileLimitEnospcSmoke) {
  const std::string dir = Dir("wal");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::signal(SIGXFSZ, SIG_IGN);
    struct rlimit rl;
    rl.rlim_cur = 8192;
    rl.rlim_max = 8192;
    if (::setrlimit(RLIMIT_FSIZE, &rl) != 0) _exit(4);
    WalRecovery rec;
    auto wal = Wal::Open(dir, "packets", kPacketTs, WalOptions{}, &rec);
    if (!wal.ok()) _exit(2);
    bool failed_cleanly = false;
    for (int64_t i = 0; i < 1000; ++i) {
      if (!wal.value()->Append(i, RecordFor(i)).ok()) {
        failed_cleanly = wal.value()->broken();
        break;
      }
    }
    _exit(failed_cleanly ? 0 : 3);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "child died from a signal";
  ASSERT_EQ(WEXITSTATUS(status), 0);

  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  ExpectPrefix(rec, /*at_least=*/1);  // the limit bit after ~120 records
  EXPECT_LT(rec.records.size(), 1000u);
  int64_t next = wal.value()->next_seq();
  EXPECT_TRUE(wal.value()->Append(next, RecordFor(next)).ok());
  wal.value()->Close();
}

// ---- Query registry ---------------------------------------------------------

RemoteQuerySpec QuerySpec(const std::string& text) {
  RemoteQuerySpec spec;
  spec.method = 2;  // lang::ExecMethod::kQaCPlus
  spec.text = text;
  return spec;
}

// Satellite: a QUERY whose registry record cannot be persisted must be
// rejected — never acknowledged, then silently volatile. The registry
// truncates the partial record away and stays usable for the next QUERY.
TEST_F(DiskFaultWalTest, QueryThatCannotPersistIsRejectedNotVolatile) {
  const std::string reg = Dir("queries.reg");
  const struct {
    const char* name;
    IoOp op;
  } kSites[] = {{"write", IoOp::kWrite}, {"fsync", IoOp::kFsync}};

  for (const auto& site : kSites) {
    SCOPED_TRACE(site.name);
    QueryChannelOptions copts;
    copts.registry_path = reg;
    QueryChannel channel(kStream, MustParseTs(kPacketTs), copts);
    ASSERT_TRUE(channel.Open().ok());
    const int64_t recovered = channel.stats().recovered_queries;
    // The second site iteration reopens the same registry, so the first
    // iteration's admitted query replays into the baseline.
    const int base_active = channel.stats().active_queries;

    FaultRule rule;
    rule.path_prefix = reg;
    rule.op = site.op;
    rule.err = site.op == IoOp::kWrite ? ENOSPC : EIO;
    env_->AddRule(rule);

    const std::string text =
        std::string("for $p in stream(\"pkts\")//packet return string($p/") +
        (site.op == IoOp::kWrite ? "id" : "srcIP") + ")";
    auto refused = channel.Register(QuerySpec(text));
    ASSERT_FALSE(refused.ok()) << site.name;
    EXPECT_EQ(channel.stats().active_queries, base_active);

    // The rule was one-shot; the registry repaired itself (partial record
    // truncated, fsync-failed descriptor replaced) and the same QUERY now
    // registers durably.
    auto admitted = channel.Register(QuerySpec(text));
    ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
    EXPECT_EQ(channel.stats().active_queries, base_active + 1);

    // A reopen replays exactly the admitted registrations — the refused
    // record never hit the durable registry.
    QueryChannel fresh(kStream, MustParseTs(kPacketTs), copts);
    ASSERT_TRUE(fresh.Open().ok());
    EXPECT_EQ(fresh.stats().recovered_queries, recovered + 1);
    env_->ClearRules();
  }
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// ---- Server: degrade, self-heal, watermarks ---------------------------------

frag::Fragment MakePacket(int64_t id, int64_t t, int pkt, size_t pad = 0) {
  frag::Fragment f;
  f.id = id;
  f.tsid = 2;
  f.valid_time = DateTime(t);
  f.content = Node::Element("packet");
  NodePtr pid = Node::Element("id");
  pid->AddChild(Node::Text(std::to_string(pkt)));
  f.content->AddChild(std::move(pid));
  if (pad > 0) {
    NodePtr src = Node::Element("srcIP");
    src->AddChild(Node::Text(std::string(pad, 'x')));
    f.content->AddChild(std::move(src));
  }
  return f;
}

frag::Fragment MakeRoot(const std::vector<int64_t>& hole_ids) {
  frag::Fragment f;
  f.id = 0;
  f.tsid = 1;
  f.valid_time = DateTime(999);
  f.content = Node::Element("packets");
  for (int64_t id : hole_ids) f.content->AddChild(frag::MakeHole(id, 2));
  return f;
}

std::string ViewOf(const frag::FragmentStore& store) {
  auto view = frag::Temporalize(store, false);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  if (!view.ok()) return "";
  return SerializeXml(*view.value());
}

class DiskFaultTransportTest : public DiskFaultWalTest {};

// The acceptance centerpiece: a chaos soak of repeated fail/heal cycles
// with a live subscriber. Each cycle the disk fails once (degrading the
// server), then heals; the self-healing supervisor re-arms into a fresh
// durable generation. After N cycles the subscriber's converged document
// must be byte-identical to a run that never faulted, the re-arm counter
// must equal N, and no descriptor was ever fsync'd after a failed fsync.
TEST_F(DiskFaultTransportTest, SelfHealingSoakConvergesByteIdentical) {
  constexpr int kCycles = 3;
  constexpr int kPerCycle = 3;

  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());

  stream::StreamServer source(kStream, MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  sopts.durability.self_heal = true;
  sopts.durability.probe_initial = 20ms;
  sopts.durability.probe_max = 100ms;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = kStream;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(0, 10s));

  int seq = 0;  // last published seq (the root was seq 0)
  int pkt = 0;
  std::vector<frag::Fragment> published;  // for the never-faulted reference
  for (int cycle = 1; cycle <= kCycles; ++cycle) {
    SCOPED_TRACE(cycle);
    // The disk fails exactly once: the next publish's append breaks the
    // WAL and the server degrades, cutting the subscriber.
    FaultRule rule;
    rule.path_prefix = dir + "/wal-";
    rule.op = cycle % 2 ? IoOp::kFsync : IoOp::kWrite;
    rule.err = cycle % 2 ? EIO : ENOSPC;
    env_->AddRule(rule);

    frag::Fragment f = MakePacket(1 + pkt % 2, 1000 + pkt * 10, pkt);
    ++pkt;
    published.push_back(f);
    ASSERT_TRUE(source.Publish(f).ok());
    ++seq;
    ASSERT_TRUE(PollFor([&] { return server.wal_degraded(); }, 5s));

    // The fault was one-shot, so the disk is already healed: the probe
    // loop re-arms on its own. Every frame — including the one the WAL
    // rejected — is re-checkpointed into the fresh generation.
    ASSERT_TRUE(PollFor(
        [&] {
          return !server.wal_degraded() &&
                 server.metrics().durability_rearms == cycle;
        },
        10s));
    EXPECT_EQ(server.epoch(), wal.value()->epoch());
    EXPECT_EQ(wal.value()->stats().rearms, cycle);
    EXPECT_GT(server.time_in_degraded_ms(), 0);

    // Durable life resumes: more traffic lands in the new generation,
    // and the subscriber reconverges onto it before the next fault (so
    // every cycle's epoch change is actually observed, not collapsed
    // into one final reconnect).
    for (int i = 0; i < kPerCycle; ++i) {
      frag::Fragment g = MakePacket(1 + pkt % 2, 1000 + pkt * 10, pkt);
      ++pkt;
      published.push_back(g);
      ASSERT_TRUE(source.Publish(g).ok());
      ++seq;
    }
    ASSERT_TRUE(sub.WaitForSeq(seq, 15s))
        << "cycle " << cycle << " stuck at " << sub.last_seq() << " of "
        << seq;
  }

  // The subscriber reconverged across every cut: at least one epoch
  // change per cycle (degrade and re-arm each mint one; a re-arm faster
  // than the reconnect hides the volatile epoch) and never more than two.
  EXPECT_GE(sub.metrics().epoch_resets, kCycles);
  EXPECT_LE(sub.metrics().epoch_resets, 2 * kCycles);
  EXPECT_EQ(sub.server_epoch(), wal.value()->epoch());

  frag::FragmentStore store(MustParseTs(kPacketTs), kStream);
  ASSERT_TRUE(sub.DrainInto(&store).ok());
  sub.Stop();
  server.Stop();

  // Byte-identical to a run that never faulted.
  frag::FragmentStore ref(MustParseTs(kPacketTs), kStream);
  ASSERT_TRUE(ref.Insert(MakeRoot({1, 2})).ok());
  for (const auto& f : published) ASSERT_TRUE(ref.Insert(f).ok());
  EXPECT_EQ(store.size(), ref.size());
  EXPECT_EQ(ViewOf(store), ViewOf(ref));

  // And durable: a restart recovers every frame of the final generation.
  const uint64_t final_epoch = wal.value()->epoch();
  wal.value()->Close();
  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok());
  EXPECT_EQ(rerec.epoch, final_epoch);
  EXPECT_EQ(rerec.base_seq, 0);
  EXPECT_EQ(static_cast<int64_t>(rerec.records.size()), seq + 1);
  rewal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Self-heal off: degraded is terminal until the operator (here, the test)
// calls TryRearm explicitly.
TEST_F(DiskFaultTransportTest, ManualTryRearmRestoresDurability) {
  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());

  stream::StreamServer source(kStream, MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  sopts.durability.self_heal = false;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(server.TryRearm().ok());  // not degraded: a no-op
  EXPECT_EQ(server.metrics().durability_rearms, 0);

  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  FaultRule rule;
  rule.path_prefix = dir + "/wal-";
  rule.op = IoOp::kWrite;
  rule.err = ENOSPC;
  env_->AddRule(rule);
  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 0)).ok());
  ASSERT_TRUE(server.wal_degraded());

  // Nobody re-arms on their own with self_heal off.
  std::this_thread::sleep_for(100ms);
  ASSERT_TRUE(server.wal_degraded());
  EXPECT_GT(server.time_in_degraded_ms(), 0);

  ASSERT_TRUE(server.TryRearm().ok());
  EXPECT_FALSE(server.wal_degraded());
  EXPECT_EQ(server.epoch(), wal.value()->epoch());
  EXPECT_EQ(server.metrics().durability_rearms, 1);
  EXPECT_GE(server.metrics().degraded_ms_total, 0);
  ASSERT_TRUE(source.Publish(MakePacket(2, 1010, 1)).ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = kStream;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  EXPECT_EQ(sub.server_epoch(), wal.value()->epoch());
  sub.Stop();
  server.Stop();

  wal.value()->Close();
  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok());
  EXPECT_EQ(rerec.records.size(), 3u);  // root + both packets survived
  rewal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Hard watermark: durability degrades preemptively while appends would
// still succeed, refuses to re-arm while space stays scarce, and re-arms
// once free bytes recover.
TEST_F(DiskFaultTransportTest, HardWatermarkDegradesPreemptivelyThenHeals) {
  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());

  env_->SetFreeBytes(dir, 1 << 20);  // 1 MiB free, hard mark at 64 MiB

  stream::StreamServer source(kStream, MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  sopts.durability.self_heal = true;
  sopts.durability.probe_initial = 20ms;
  sopts.durability.probe_max = 100ms;
  sopts.durability.hard_free_bytes = 64 << 20;
  sopts.durability.watermark_interval = 20ms;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  // No append ever failed — the supervisor saw the statvfs reading and
  // degraded before the disk could tear a half-written record.
  ASSERT_TRUE(PollFor([&] { return server.wal_degraded(); }, 5s));
  EXPECT_EQ(server.metrics().wal_append_failures, 0);
  EXPECT_EQ(server.metrics().data_dir_free_bytes, 1 << 20);

  // Scarce space also vetoes re-arming: degraded must persist even though
  // the probe write itself would succeed.
  std::this_thread::sleep_for(200ms);
  ASSERT_TRUE(server.wal_degraded());
  EXPECT_EQ(server.metrics().durability_rearms, 0);

  // Space recovers; the supervisor re-arms on its own.
  env_->SetFreeBytes(dir, 512ll << 20);
  ASSERT_TRUE(PollFor(
      [&] {
        return !server.wal_degraded() &&
               server.metrics().durability_rearms == 1;
      },
      10s));
  EXPECT_EQ(server.epoch(), wal.value()->epoch());

  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 0)).ok());
  server.Stop();
  wal.value()->Close();

  WalRecovery rerec;
  auto rewal = OpenWal(dir, WalOptions{}, &rerec);
  ASSERT_TRUE(rewal.ok());
  EXPECT_EQ(rerec.records.size(), 2u);
  rewal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

// Soft watermark: scarce-but-not-critical space forces a retention pass at
// the next publish, trimming the frame log down to its windows early.
TEST_F(DiskFaultTransportTest, SoftWatermarkForcesAnEmergencyRetentionPass) {
  const std::string dir = Dir("wal");
  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());

  stream::StreamServer source(kStream, MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  sopts.durability.self_heal = false;
  sopts.durability.soft_free_bytes = 64 << 20;
  sopts.durability.watermark_interval = 20ms;
  sopts.retention.max_frames = 4;
  sopts.retention.check_every = 1000000;  // never trip the counter path
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i % 2, 1000 + i * 10, i)).ok());
  }
  // Plenty of space: no emergency pass, the log keeps everything (the
  // counter path would need a million publishes).
  std::this_thread::sleep_for(100ms);
  EXPECT_EQ(server.metrics().emergency_retention_runs, 0);
  EXPECT_EQ(server.log_base(), 0);

  // Space dips below the soft mark; publishes now run emergency passes.
  // The live root pins the first pass (it gets refreshed, not trimmed),
  // so the log visibly shrinks on a later one.
  env_->SetFreeBytes(dir, 1 << 20);
  int next_pkt = 10;
  ASSERT_TRUE(PollFor(
      [&] {
        frag::Fragment f =
            MakePacket(1 + next_pkt % 2, 1000 + next_pkt * 10, next_pkt);
        ++next_pkt;
        EXPECT_TRUE(source.Publish(f).ok());
        return server.log_base() > 0;
      },
      10s));
  EXPECT_GE(server.metrics().emergency_retention_runs, 1);
  EXPECT_FALSE(server.wal_degraded());  // soft is advisory, never degrades

  server.Stop();
  wal.value()->Close();
  EXPECT_EQ(env_->fsync_retry_violations(), 0);
}

}  // namespace
}  // namespace xcql::net
