// Fidelity test: the paper's §5 reconstruction functions — get_fillers,
// get_fillers_list and temporalize, written in XQuery in the paper — are
// executed *verbatim* on our engine against a doc("fragments.xml") built
// from the fragment stream, and must reproduce the native C++
// reconstruction. This exercises computed constructors, attribute wildcards,
// positional variables, recursion and ordering exactly as the paper's
// pseudo-code demands.
#include <gtest/gtest.h>

#include "frag/assembler.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "frag/io.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xq/eval.h"

namespace xcql {
namespace {

// A temporal-only schema: the paper's §5 get_fillers assigns every version
// a [validTime, next-validTime/now) lifespan, which matches our store's
// derivation for temporal tags (events would differ: the paper's function
// does not special-case their point lifespans).
constexpr const char* kTs = R"(
<tag type="snapshot" id="1" name="inventory">
  <tag type="temporal" id="2" name="product">
    <tag type="snapshot" id="3" name="name"/>
    <tag type="temporal" id="4" name="price"/>
    <tag type="temporal" id="5" name="stock"/>
  </tag>
</tag>)";

constexpr const char* kView = R"(
<inventory>
  <product id="p1" vtFrom="2004-01-01T00:00:00" vtTo="now">
    <name>widget</name>
    <price vtFrom="2004-01-01T00:00:00" vtTo="2004-02-01T00:00:00">10</price>
    <price vtFrom="2004-02-01T00:00:00" vtTo="now">12</price>
    <stock vtFrom="2004-01-01T00:00:00" vtTo="now">5</stock>
  </product>
  <product id="p2" vtFrom="2004-01-15T00:00:00" vtTo="now">
    <name>gadget</name>
    <price vtFrom="2004-01-15T00:00:00" vtTo="now">99</price>
  </product>
</inventory>)";

// The paper's §5 functions, reformatted but textually faithful (modulo the
// XML type annotations, which the engine parses and ignores, and the
// hole/filler `stream` stamp which only the native store adds).
constexpr const char* kPaperProlog = R"(
define function get_fillers($fid as xs:integer) as element()
{ <filler id="{$fid}">
  { let $fillers := doc("fragments.xml")/fragments/filler[@id = $fid]
    for $f at $p in $fillers
    let $e := $f/*
    order by $f/@validTime
    return
      element {name($e)}
      { $e/@*,
        attribute vtFrom {$f/@validTime},
        attribute vtTo
        { if ($p = count($fillers))
          then "now"
          else $fillers[$p + 1]/@validTime },
        $e/node() } }
  </filler> };

define function get_fillers_list($fids as xs:integer*) as element()*
{ for $fid in $fids
  return get_fillers($fid) };

define function temporalize($tag as element()*) as element()*
{ for $e in $tag/*
  return if (not(empty($e/*)))
         then element {name($e)} {$e/@*, temporalize($e)}
         else if (name($e) = "hole")
         then temporalize(get_fillers($e/@id))
         else $e };
)";

class PaperFunctionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ts = frag::TagStructure::Parse(kTs);
    ASSERT_TRUE(ts.ok());
    auto ts2 = frag::TagStructure::Parse(kTs);
    ASSERT_TRUE(ts2.ok());
    auto doc = ParseXml(kView);
    ASSERT_TRUE(doc.ok());
    view_ = doc.value();
    frag::Fragmenter fragmenter(&ts.value());
    auto frags = fragmenter.Split(*view_);
    ASSERT_TRUE(frags.ok()) << frags.status().ToString();

    // doc("fragments.xml"): the recorded stream, exactly as the paper's
    // client stores it. The engine's doc() returns the node bound here, so
    // bind a document wrapper to make the paper's absolute-style path
    // doc(…)/fragments/filler work.
    auto fragments_root =
        ParseXml(frag::SerializeFragmentStream(frags.value()));
    ASSERT_TRUE(fragments_root.ok());
    NodePtr fragments_doc_node = Node::Element("#document");
    fragments_doc_node->AddChild(fragments_root.value());

    // Unnamed store: no stream stamps on holes, so the XQuery and native
    // reconstructions see identical fragment payloads.
    store_ = std::make_unique<frag::FragmentStore>(std::move(ts2).MoveValue(),
                                                   "");
    ASSERT_TRUE(store_->InsertAll(std::move(frags).MoveValue()).ok());

    registry_ = xq::FunctionRegistry::Builtins();
    ctx_.functions = &registry_;
    ctx_.now = DateTime::Parse("2004-06-01T00:00:00").value();
    ctx_.documents["fragments.xml"] = fragments_doc_node;
  }

  Result<xq::Sequence> Run(const std::string& body) {
    return xq::EvalQuery(std::string(kPaperProlog) + body, &ctx_);
  }

  NodePtr view_;
  std::unique_ptr<frag::FragmentStore> store_;
  xq::FunctionRegistry registry_;
  xq::EvalContext ctx_;
};

TEST_F(PaperFunctionsTest, GetFillersReconstructsVersionChains) {
  // Filler ids are deterministic: root 0, products p1/p2 = 1/2, p1's
  // price = 3.
  auto r = Run("get_fillers(3)/price/text()");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xq::SequenceToString(r.value()), "10 12");

  auto attrs = Run("for $p in get_fillers(3)/price "
                   "return concat(string($p/@vtFrom), \"/\", "
                   "string($p/@vtTo))");
  ASSERT_TRUE(attrs.ok()) << attrs.status().ToString();
  EXPECT_EQ(xq::SequenceToString(attrs.value()),
            "2004-01-01T00:00:00/2004-02-01T00:00:00 "
            "2004-02-01T00:00:00/now");
}

TEST_F(PaperFunctionsTest, GetFillersMatchesNativeStore) {
  // Id 0 is the snapshot root: the paper's function annotates it with a
  // synthetic lifespan whereas the model (and our store) give snapshots
  // none — the one knowing deviation of the paper's pseudo-code from its
  // own §3.1 view. All temporal fillers must match exactly.
  for (int64_t id = 1; id < 8; ++id) {
    auto native = store_->GetFillerVersions(id, /*linear=*/false);
    ASSERT_TRUE(native.ok());
    auto xquery = Run("get_fillers(" + std::to_string(id) + ")/*");
    ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
    ASSERT_EQ(xquery.value().size(), native.value().size()) << "id " << id;
    for (size_t i = 0; i < native.value().size(); ++i) {
      EXPECT_TRUE(Node::DeepEqual(*native.value()[i],
                                  *xq::AsNode(xquery.value()[i])))
          << "id " << id << " version " << i << "\nnative: "
          << SerializeXml(*native.value()[i]) << "\nxquery: "
          << SerializeXml(*xq::AsNode(xquery.value()[i]));
    }
  }
}

TEST_F(PaperFunctionsTest, GetFillersListFlattens) {
  auto r = Run("count(get_fillers_list((1, 4)))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(xq::SequenceToString(r.value()), "2");
}

TEST_F(PaperFunctionsTest, PaperTemporalizeMatchesNativeTemporalize) {
  auto native = frag::Temporalize(*store_, /*linear_scan=*/false);
  ASSERT_TRUE(native.ok());
  // The paper's temporalize maps over the children of its argument, so the
  // root wrapper's single child is the reconstructed <inventory>.
  auto xquery = Run("temporalize(get_fillers(0))");
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  ASSERT_EQ(xquery.value().size(), 1u);
  // Strip the synthetic root lifespan the paper's get_fillers adds (see
  // GetFillersMatchesNativeStore) before comparing.
  NodePtr root = xq::AsNode(xquery.value().front());
  root->RemoveAttr("vtFrom");
  root->RemoveAttr("vtTo");
  EXPECT_TRUE(
      Node::DeepEqual(*native.value(), *xq::AsNode(xquery.value().front())))
      << "native:\n"
      << SerializeXml(*native.value(), {.pretty = true}) << "\nxquery:\n"
      << SerializeXml(*xq::AsNode(xquery.value().front()), {.pretty = true});
}

TEST_F(PaperFunctionsTest, PaperTemporalizeMatchesTheSourceView) {
  auto xquery = Run("temporalize(get_fillers(0))");
  ASSERT_TRUE(xquery.ok()) << xquery.status().ToString();
  ASSERT_EQ(xquery.value().size(), 1u);
  NodePtr root = xq::AsNode(xquery.value().front());
  root->RemoveAttr("vtFrom");
  root->RemoveAttr("vtTo");
  EXPECT_TRUE(Node::DeepEqual(*view_, *root))
      << SerializeXml(*root, {.pretty = true});
}

}  // namespace
}  // namespace xcql
