// Unit tests for the temporal substrate: dateTime parsing/formatting and
// calendar arithmetic, duration parsing, interval algebra.
#include <gtest/gtest.h>

#include "common/random.h"
#include "temporal/datetime.h"
#include "temporal/duration.h"
#include "temporal/interval.h"

namespace xcql {
namespace {

TEST(DateTimeTest, ParsesFullDateTime) {
  auto r = DateTime::Parse("2003-10-23T12:23:34");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().ToString(), "2003-10-23T12:23:34");
}

TEST(DateTimeTest, ParsesDateOnlyAsMidnight) {
  auto r = DateTime::Parse("2003-11-01");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToString(), "2003-11-01T00:00:00");
}

TEST(DateTimeTest, ParsesEpoch) {
  auto r = DateTime::Parse("1970-01-01T00:00:00");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().seconds(), 0);
}

TEST(DateTimeTest, RoundTripsManyDates) {
  const char* dates[] = {
      "1998-10-10T12:20:22", "2001-04-23T23:11:08", "2003-12-31T23:59:59",
      "2000-02-29T00:00:00",  // leap day
      "1900-03-01T01:02:03",  // 1900 not a leap year
      "2400-02-29T12:00:00",  // 2400 is a leap year
      "1969-07-20T20:17:40",  // pre-epoch
      "0001-01-01T00:00:00",
  };
  for (const char* d : dates) {
    auto r = DateTime::Parse(d);
    ASSERT_TRUE(r.ok()) << d << ": " << r.status().ToString();
    EXPECT_EQ(r.value().ToString(), d);
  }
}

TEST(DateTimeTest, RejectsMalformed) {
  EXPECT_FALSE(DateTime::Parse("2003-13-01").ok());        // month 13
  EXPECT_FALSE(DateTime::Parse("2003-02-30").ok());        // Feb 30
  EXPECT_FALSE(DateTime::Parse("1900-02-29").ok());        // not leap
  EXPECT_FALSE(DateTime::Parse("2003-10-23 12:23:34").ok());  // no 'T'
  EXPECT_FALSE(DateTime::Parse("2003-10-23T25:00:00").ok());  // hour 25
  EXPECT_FALSE(DateTime::Parse("2003-10-23T12:61:00").ok());  // minute 61
  EXPECT_FALSE(DateTime::Parse("2003-10-23T12:23:34x").ok());  // trailing
  EXPECT_FALSE(DateTime::Parse("").ok());
  EXPECT_FALSE(DateTime::Parse("garbage").ok());
}

TEST(DateTimeTest, SpecialConstants) {
  EXPECT_EQ(DateTime::Parse("start").value(), DateTime::Start());
  EXPECT_EQ(DateTime::Parse("now").value(), DateTime::End());
  EXPECT_EQ(DateTime::Start().ToString(), "start");
  EXPECT_EQ(DateTime::End().ToString(), "now");
}

TEST(DateTimeTest, Ordering) {
  DateTime a = DateTime::Parse("2003-10-23T12:23:34").value();
  DateTime b = DateTime::Parse("2003-10-23T12:23:35").value();
  EXPECT_LT(a, b);
  EXPECT_LT(DateTime::Start(), a);
  EXPECT_LT(b, DateTime::End());
}

TEST(DateTimeTest, AddSecondsDuration) {
  DateTime a = DateTime::Parse("2003-10-23T12:23:34").value();
  Duration d = Duration::Parse("PT1H").value();
  EXPECT_EQ(a.Add(d).ToString(), "2003-10-23T13:23:34");
  EXPECT_EQ(a.Subtract(d).ToString(), "2003-10-23T11:23:34");
}

TEST(DateTimeTest, AddCrossesDayBoundary) {
  DateTime a = DateTime::Parse("2003-10-23T23:30:00").value();
  EXPECT_EQ(a.Add(Duration::Parse("PT1H").value()).ToString(),
            "2003-10-24T00:30:00");
}

TEST(DateTimeTest, AddMonthsClampsToMonthEnd) {
  DateTime jan31 = DateTime::Parse("2003-01-31T10:00:00").value();
  EXPECT_EQ(jan31.Add(Duration::Parse("P1M").value()).ToString(),
            "2003-02-28T10:00:00");
  DateTime leap = DateTime::Parse("2004-01-31T10:00:00").value();
  EXPECT_EQ(leap.Add(Duration::Parse("P1M").value()).ToString(),
            "2004-02-29T10:00:00");
}

TEST(DateTimeTest, AddYearDuration) {
  DateTime a = DateTime::Parse("2003-06-15T08:00:00").value();
  EXPECT_EQ(a.Add(Duration::Parse("P2Y").value()).ToString(),
            "2005-06-15T08:00:00");
}

TEST(DateTimeTest, SubtractMixedDuration) {
  DateTime a = DateTime::Parse("2003-03-31T00:00:00").value();
  // Subtract one month: clamps to Feb 28, then subtract one day.
  EXPECT_EQ(a.Subtract(Duration::Parse("P1M1D").value()).ToString(),
            "2003-02-27T00:00:00");
}

TEST(DateTimeTest, DiffSeconds) {
  DateTime a = DateTime::Parse("2003-10-23T12:23:34").value();
  DateTime b = DateTime::Parse("2003-10-23T12:24:35").value();
  EXPECT_EQ(b.DiffSeconds(a), 61);
  EXPECT_EQ(a.DiffSeconds(b), -61);
}

TEST(DateTimeTest, SpecialsAbsorbArithmetic) {
  Duration d = Duration::Parse("PT1S").value();
  EXPECT_EQ(DateTime::Start().Add(d), DateTime::Start());
  EXPECT_EQ(DateTime::End().Add(d), DateTime::End());
}

TEST(DateTimeTest, LooksLikeDateTime) {
  EXPECT_TRUE(DateTime::LooksLikeDateTime("2003-11-01"));
  EXPECT_TRUE(DateTime::LooksLikeDateTime("2003-11-01T00:00:00,more"));
  EXPECT_FALSE(DateTime::LooksLikeDateTime("203-11-01"));
  EXPECT_FALSE(DateTime::LooksLikeDateTime("20031101"));
  EXPECT_FALSE(DateTime::LooksLikeDateTime("2003"));
}

TEST(DurationTest, ParsesSimpleForms) {
  EXPECT_EQ(Duration::Parse("PT1M").value().seconds(), 60);
  EXPECT_EQ(Duration::Parse("PT1H").value().seconds(), 3600);
  EXPECT_EQ(Duration::Parse("PT1S").value().seconds(), 1);
  EXPECT_EQ(Duration::Parse("P1D").value().seconds(), 86400);
  EXPECT_EQ(Duration::Parse("P1Y").value().months(), 12);
  EXPECT_EQ(Duration::Parse("P3M").value().months(), 3);
}

TEST(DurationTest, MonthBeforeTIsMonthAfterTIsMinute) {
  Duration d = Duration::Parse("P1MT1M").value();
  EXPECT_EQ(d.months(), 1);
  EXPECT_EQ(d.seconds(), 60);
}

TEST(DurationTest, ParsesCompositeForm) {
  Duration d = Duration::Parse("P1Y2M3DT4H5M6S").value();
  EXPECT_EQ(d.months(), 14);
  EXPECT_EQ(d.seconds(), 3 * 86400 + 4 * 3600 + 5 * 60 + 6);
}

TEST(DurationTest, ParsesNegative) {
  Duration d = Duration::Parse("-P30D").value();
  EXPECT_EQ(d.seconds(), -30 * 86400);
}

TEST(DurationTest, RejectsMalformed) {
  EXPECT_FALSE(Duration::Parse("").ok());
  EXPECT_FALSE(Duration::Parse("P").ok());
  EXPECT_FALSE(Duration::Parse("1Y").ok());
  EXPECT_FALSE(Duration::Parse("PT1X").ok());
  EXPECT_FALSE(Duration::Parse("P1H").ok());   // H only valid after T
  EXPECT_FALSE(Duration::Parse("PT1D").ok());  // D only valid before T
  EXPECT_FALSE(Duration::Parse("P1MT1MT1M").ok());  // duplicate T
}

TEST(DurationTest, CanonicalToString) {
  EXPECT_EQ(Duration::Parse("PT1H").value().ToString(), "PT1H");
  EXPECT_EQ(Duration::Parse("PT90M").value().ToString(), "PT1H30M");
  EXPECT_EQ(Duration::Parse("P14M").value().ToString(), "P1Y2M");
  EXPECT_EQ(Duration(0, 0).ToString(), "PT0S");
  EXPECT_EQ(Duration::Parse("-P30D").value().ToString(), "-P30D");
}

TEST(DurationTest, RoundTripThroughToString) {
  const char* durs[] = {"PT1M", "PT1H", "P1D", "P1Y2M3DT4H5M6S", "-PT30S"};
  for (const char* d : durs) {
    Duration v = Duration::Parse(d).value();
    Duration again = Duration::Parse(v.ToString()).value();
    EXPECT_EQ(v, again) << d;
  }
}

// Property: ToString∘Parse is the identity on random instants across a
// ±200-year window, and ordering agrees with the underlying seconds.
class DateTimeRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DateTimeRoundTripTest, SecondsToStringParseRoundTrip) {
  Random rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    int64_t secs = rng.UniformRange(-6'311'520'000LL, 6'311'520'000LL);
    DateTime t(secs);
    auto back = DateTime::Parse(t.ToString());
    ASSERT_TRUE(back.ok()) << t.ToString();
    EXPECT_EQ(back.value().seconds(), secs) << t.ToString();
  }
}

TEST_P(DateTimeRoundTripTest, AddThenSubtractSecondsDurationIsIdentity) {
  Random rng(GetParam() + 77);
  for (int i = 0; i < 100; ++i) {
    DateTime t(rng.UniformRange(0, 4'000'000'000LL));
    Duration d = Duration::FromSeconds(rng.UniformRange(0, 10'000'000));
    EXPECT_EQ(t.Add(d).Subtract(d), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DateTimeRoundTripTest,
                         ::testing::Range<uint64_t>(0, 8));

TEST(DateTimeEdgeTest, CenturyBoundaries) {
  // 2000 was a leap year (divisible by 400), 2100 is not.
  EXPECT_TRUE(DateTime::Parse("2000-02-29").ok());
  EXPECT_FALSE(DateTime::Parse("2100-02-29").ok());
  DateTime end_of_feb = DateTime::Parse("2000-02-29T23:59:59").value();
  EXPECT_EQ(end_of_feb.Add(Duration::FromSeconds(1)).ToString(),
            "2000-03-01T00:00:00");
}

TEST(DateTimeEdgeTest, YearBoundary) {
  DateTime nye = DateTime::Parse("2003-12-31T23:59:59").value();
  EXPECT_EQ(nye.Add(Duration::FromSeconds(1)).ToString(),
            "2004-01-01T00:00:00");
}

class IntervalRelationTest : public ::testing::Test {
 protected:
  static Interval I(const char* a, const char* b) {
    return Interval(DateTime::Parse(a).value(), DateTime::Parse(b).value());
  }
};

TEST_F(IntervalRelationTest, Before) {
  Interval a = I("2003-01-01", "2003-02-01");
  Interval b = I("2003-03-01", "2003-04-01");
  EXPECT_TRUE(a.Before(b));
  EXPECT_FALSE(b.Before(a));
  EXPECT_TRUE(b.After(a));
}

TEST_F(IntervalRelationTest, Meets) {
  Interval a = I("2003-01-01", "2003-02-01");
  Interval b = I("2003-02-01", "2003-03-01");
  EXPECT_TRUE(a.Meets(b));
  EXPECT_TRUE(b.MetBy(a));
  EXPECT_FALSE(a.Before(b));  // closed intervals share the endpoint
  EXPECT_TRUE(a.Intersects(b));
}

TEST_F(IntervalRelationTest, Overlaps) {
  Interval a = I("2003-01-01", "2003-02-15");
  Interval b = I("2003-02-01", "2003-03-01");
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_FALSE(b.Overlaps(a));
  EXPECT_TRUE(a.Intersects(b));
}

TEST_F(IntervalRelationTest, ContainsAndDuring) {
  Interval outer = I("2003-01-01", "2003-12-31");
  Interval inner = I("2003-03-01", "2003-04-01");
  EXPECT_TRUE(outer.ContainsInterval(inner));
  EXPECT_TRUE(inner.During(outer));
  EXPECT_FALSE(inner.ContainsInterval(outer));
}

TEST_F(IntervalRelationTest, IntersectClips) {
  Interval a = I("2003-01-01", "2003-02-15");
  Interval b = I("2003-02-01", "2003-03-01");
  auto c = a.Intersect(b);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->begin().ToString(), "2003-02-01T00:00:00");
  EXPECT_EQ(c->end().ToString(), "2003-02-15T00:00:00");
}

TEST_F(IntervalRelationTest, IntersectDisjointIsEmpty) {
  Interval a = I("2003-01-01", "2003-02-01");
  Interval b = I("2003-03-01", "2003-04-01");
  EXPECT_FALSE(a.Intersect(b).has_value());
}

TEST_F(IntervalRelationTest, SpanCovers) {
  Interval a = I("2003-01-01", "2003-02-01");
  Interval b = I("2003-03-01", "2003-04-01");
  Interval s = a.Span(b);
  EXPECT_EQ(s.begin(), a.begin());
  EXPECT_EQ(s.end(), b.end());
}

TEST_F(IntervalRelationTest, PointInterval) {
  DateTime t = DateTime::Parse("2003-10-23T12:23:34").value();
  Interval p = Interval::Point(t);
  EXPECT_TRUE(p.Contains(t));
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(p.Equals(Interval(t, t)));
}

TEST_F(IntervalRelationTest, EmptyInterval) {
  Interval e(DateTime::Parse("2003-02-01").value(),
             DateTime::Parse("2003-01-01").value());
  EXPECT_TRUE(e.empty());
}

TEST_F(IntervalRelationTest, AllContainsEverything) {
  EXPECT_TRUE(Interval::All().Contains(DateTime::Parse("2003-01-01").value()));
  EXPECT_TRUE(Interval::All().Contains(DateTime::Start()));
  EXPECT_TRUE(Interval::All().Contains(DateTime::End()));
}

}  // namespace
}  // namespace xcql
