// Randomized method-equivalence property (the paper's Fig. 2 claim, tested
// adversarially): for randomized temporal documents over the credit-card
// schema, a corpus of XCQL queries spanning every language feature must
// return identical results under CaQ, QaC and QaC+.
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/string_util.h"
#include "test_util.h"
#include "xcql/executor.h"

namespace xcql::lang {
namespace {

// Builds a random, model-consistent temporal view: version chains with the
// last version open at "now", events with point lifespans, times strictly
// increasing within each chain.
class DocGen {
 public:
  explicit DocGen(uint64_t seed) : rng_(seed) {}

  NodePtr Build() {
    NodePtr root = Node::Element("creditAccounts");
    int accounts = 1 + static_cast<int>(rng_.Uniform(5));
    for (int a = 0; a < accounts; ++a) {
      root->AddChild(Account(a));
    }
    return root;
  }

 private:
  std::string NextTime() {
    clock_ += 1000 + static_cast<int64_t>(rng_.Uniform(40000));
    return DateTime(clock_).ToString();
  }

  NodePtr Account(int n) {
    NodePtr account = Node::Element("account");
    account->SetAttr("id", std::to_string(1000 + n));
    std::string opened = NextTime();
    account->SetAttr("vtFrom", opened);
    account->SetAttr("vtTo", "now");
    NodePtr customer = Node::Element("customer");
    customer->AddChild(Node::Text(rng_.Word(5) + " " + rng_.Word(7)));
    account->AddChild(std::move(customer));
    // creditLimit version chain.
    int limits = 1 + static_cast<int>(rng_.Uniform(3));
    std::vector<std::string> times = {opened};
    for (int i = 0; i < limits; ++i) times.push_back(NextTime());
    for (int i = 0; i < limits; ++i) {
      NodePtr limit = Node::Element("creditLimit");
      limit->SetAttr("vtFrom", times[static_cast<size_t>(i)]);
      limit->SetAttr("vtTo", i + 1 == limits
                                 ? "now"
                                 : times[static_cast<size_t>(i + 1)]);
      limit->AddChild(Node::Text(
          std::to_string(500 * rng_.UniformRange(1, 20))));
      account->AddChild(std::move(limit));
    }
    // Transactions (events) with status version chains.
    int txns = static_cast<int>(rng_.Uniform(6));
    for (int t = 0; t < txns; ++t) {
      NodePtr txn = Node::Element("transaction");
      txn->SetAttr("id", std::to_string(n * 100 + t));
      std::string when = NextTime();
      txn->SetAttr("vtFrom", when);
      txn->SetAttr("vtTo", when);
      NodePtr vendor = Node::Element("vendor");
      static const char* kVendors[] = {"Pizza Palace", "MegaStore",
                                       "Corner Cafe", "ABC Inc"};
      vendor->AddChild(Node::Text(kVendors[rng_.Uniform(4)]));
      txn->AddChild(std::move(vendor));
      int statuses = 1 + static_cast<int>(rng_.Uniform(3));
      std::vector<std::string> stimes;
      for (int i = 0; i <= statuses; ++i) stimes.push_back(NextTime());
      static const char* kStates[] = {"charged", "suspended", "denied",
                                      "questioned"};
      for (int i = 0; i < statuses; ++i) {
        NodePtr status = Node::Element("status");
        status->SetAttr("vtFrom", stimes[static_cast<size_t>(i)]);
        status->SetAttr("vtTo", i + 1 == statuses
                                    ? "now"
                                    : stimes[static_cast<size_t>(i + 1)]);
        status->AddChild(Node::Text(kStates[rng_.Uniform(4)]));
        txn->AddChild(std::move(status));
      }
      NodePtr amount = Node::Element("amount");
      amount->AddChild(
          Node::Text(StringPrintf("%.2f", rng_.NextDouble() * 3000)));
      txn->AddChild(std::move(amount));
      account->AddChild(std::move(txn));
    }
    return account;
  }

  Random rng_;
  // Seconds since epoch, starting 2004-01-01 and always advancing; the
  // fixture's `now` (2006-01-01) stays safely beyond every generated time.
  int64_t clock_ = 1072915200;
};

// Query corpus: one entry per language feature over this schema. Windows
// use absolute times inside the generated range.
const char* kQueryCorpus[] = {
    // paths and predicates
    "for $a in stream(\"credit\")/creditAccounts/account return "
    "string($a/@id)",
    "count(stream(\"credit\")//transaction)",
    "stream(\"credit\")//transaction[amount > 1500]/vendor/text()",
    "count(stream(\"credit\")//transaction[vendor = \"ABC Inc\"])",
    "count(stream(\"credit\")//status)",
    "count(stream(\"credit\")//account/*)",
    "stream(\"credit\")//account[@id = \"1002\"]/customer/text()",
    // positional predicates on single contexts
    "for $a in stream(\"credit\")//account return "
    "string($a/transaction[1]/@id)",
    "for $t in stream(\"credit\")//transaction return $t/status[last()]"
    "/text()",
    // projections
    "for $a in stream(\"credit\")//account return "
    "$a/creditLimit?[now]/text()",
    "count(stream(\"credit\")//transaction?[2004-02-01,2004-08-01])",
    "stream(\"credit\")//transaction[status?[now] = \"charged\"]"
    "/vendor/text()",
    "for $a in stream(\"credit\")//account return "
    "$a/creditLimit#[1]/text()",
    "for $a in stream(\"credit\")//account return "
    "$a/creditLimit#[last]/text()",
    "for $t in stream(\"credit\")//transaction return "
    "count($t/status#[1,2])",
    // lifespan accessors and interval relations
    "for $t in stream(\"credit\")//transaction return vtFrom($t)",
    "count(for $t in stream(\"credit\")//transaction "
    "where $t before 2004-06-01T00:00:00 return $t)",
    "some $t in stream(\"credit\")//transaction, "
    "$s in stream(\"credit\")//status satisfies $t before $s",
    // aggregates and quantifiers
    "sum(stream(\"credit\")//transaction/amount)",
    "avg(stream(\"credit\")//creditLimit/text())",
    "every $t in stream(\"credit\")//transaction satisfies "
    "$t/amount >= 0",
    "max(stream(\"credit\")//transaction/amount)",
    // FLWOR features
    "for $a in stream(\"credit\")//account "
    "order by $a/customer return string($a/@id)",
    "for $a at $i in stream(\"credit\")//account "
    "where count($a/transaction) > 0 return $i",
    "for $a in stream(\"credit\")//account "
    "let $n := count($a/transaction) order by $n descending "
    "return concat(string($a/@id), \":\", $n)",
    // constructors
    "for $a in stream(\"credit\")//account return "
    "<summary id={$a/@id} limits=\"{count($a/creditLimit)}\">"
    "{$a/customer/text()}</summary>",
    // prolog declarations
    "declare variable $cut := 1000; "
    "count(stream(\"credit\")//transaction[amount > $cut])",
    "declare function big($t) { $t/amount > 2000 }; "
    "count(for $t in stream(\"credit\")//transaction "
    "where big($t) return $t)",
    // paper queries
    R"(for $a in stream("credit")/creditAccounts/account
       where sum($a/transaction?[2004-03-01,2004-12-01]
                 [status = "charged"]/amount) >= $a/creditLimit?[now]
       return <maxed>{string($a/@id)}</maxed>)",
    R"(for $a in stream("credit")/creditAccounts/account
       where sum($a/transaction?[now - P30D, now]
                 [status = "charged"]/amount) >=
             max($a/creditLimit?[now] * 0.9, 5000)
       return <alert>{string($a/@id)}</alert>)",
};

class RandomEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomEquivalenceTest, AllMethodsAgreeOnRandomDocuments) {
  DocGen gen(GetParam());
  NodePtr doc = gen.Build();
  std::string xml = SerializeXml(*doc);
  auto store = testutil::MakeStream("credit", testutil::kCreditTagStructure,
                                    xml.c_str());
  ASSERT_NE(store, nullptr) << xml;
  QueryExecutor exec;
  ASSERT_TRUE(exec.RegisterStream(store.get()).ok());

  for (const char* query : kQueryCorpus) {
    std::string results[3];
    int i = 0;
    for (ExecMethod m :
         {ExecMethod::kCaQ, ExecMethod::kQaC, ExecMethod::kQaCPlus}) {
      ExecOptions opts;
      opts.method = m;
      opts.now = DateTime::Parse("2006-01-01T00:00:00").value();
      auto r = exec.Execute(query, opts);
      ASSERT_TRUE(r.ok()) << "seed " << GetParam() << " method "
                          << ExecMethodName(m) << "\nquery: " << query
                          << "\n" << r.status().ToString();
      results[i++] = testutil::Render(r.value());
    }
    EXPECT_EQ(results[0], results[1])
        << "seed " << GetParam() << " CaQ vs QaC\nquery: " << query;
    EXPECT_EQ(results[1], results[2])
        << "seed " << GetParam() << " QaC vs QaC+\nquery: " << query;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 20));

// Compiled-plan differential (the plan layer's correctness property, see
// xq/plan.h): over the same randomized documents and the full query corpus,
// evaluating the compiled plan must produce byte-identical serialized
// results to the tree-walking interpreter — under every execution method
// and both lossy-degradation hole policies. Every corpus query must also
// actually lower (no silent fallback), so the property really exercises the
// plan and not the interpreter twice.
class CompiledPlanEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(CompiledPlanEquivalenceTest, CompiledMatchesInterpreted) {
  DocGen gen(GetParam());
  NodePtr doc = gen.Build();
  std::string xml = SerializeXml(*doc);
  auto store = testutil::MakeStream("credit", testutil::kCreditTagStructure,
                                    xml.c_str());
  ASSERT_NE(store, nullptr) << xml;
  QueryExecutor exec;
  ASSERT_TRUE(exec.RegisterStream(store.get()).ok());

  for (const char* query : kQueryCorpus) {
    for (ExecMethod m :
         {ExecMethod::kCaQ, ExecMethod::kQaC, ExecMethod::kQaCPlus}) {
      auto prepared = exec.Prepare(query, m);
      ASSERT_TRUE(prepared.ok()) << query << "\n"
                                 << prepared.status().ToString();
      EXPECT_NE(prepared.value().plan, nullptr)
          << "query did not lower to a plan (" << ExecMethodName(m)
          << "): " << prepared.value().plan_fallback_reason
          << "\nquery: " << query;
      for (xq::HolePolicy policy :
           {xq::HolePolicy::kOmit, xq::HolePolicy::kKeepHole}) {
        ExecOptions opts;
        opts.method = m;
        opts.now = DateTime::Parse("2006-01-01T00:00:00").value();
        opts.hole_policy = policy;
        ExecStats compiled_stats;
        opts.stats = &compiled_stats;
        auto compiled = exec.ExecutePrepared(prepared.value(), opts);
        ASSERT_TRUE(compiled.ok()) << "seed " << GetParam() << " compiled "
                                   << ExecMethodName(m) << "\nquery: "
                                   << query << "\n"
                                   << compiled.status().ToString();
        ExecOptions interp_opts = opts;
        interp_opts.use_compiled_plan = false;
        ExecStats interp_stats;
        interp_opts.stats = &interp_stats;
        auto interpreted = exec.ExecutePrepared(prepared.value(), interp_opts);
        ASSERT_TRUE(interpreted.ok())
            << "seed " << GetParam() << " interpreted " << ExecMethodName(m)
            << "\nquery: " << query << "\n"
            << interpreted.status().ToString();
        EXPECT_TRUE(compiled_stats.used_compiled_plan) << query;
        EXPECT_FALSE(interp_stats.used_compiled_plan) << query;
        EXPECT_EQ(testutil::Render(compiled.value()),
                  testutil::Render(interpreted.value()))
            << "seed " << GetParam() << " method " << ExecMethodName(m)
            << " policy " << static_cast<int>(policy)
            << "\nquery: " << query;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledPlanEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 10));

}  // namespace
}  // namespace xcql::lang
