// Tests for the StreamManager facade: stream lifecycle, publishing,
// one-shot querying under all methods, continuous queries, UDF
// registration, and the paper's running example end to end.
#include <gtest/gtest.h>

#include "core/stream_manager.h"
#include "test_util.h"

namespace xcql {
namespace {

DateTime T(const char* s) { return DateTime::Parse(s).value(); }

class StreamManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        mgr_.CreateStream("credit", testutil::kCreditTagStructure).ok());
    ASSERT_TRUE(
        mgr_.PublishDocumentXml("credit", testutil::kCreditView).ok());
    mgr_.clock().AdvanceTo(T("2003-12-01T00:00:00"));
  }

  std::string Run(const std::string& q,
                  lang::ExecMethod m = lang::ExecMethod::kQaCPlus) {
    lang::ExecOptions opts;
    opts.method = m;
    auto r = mgr_.QueryToString(q, opts);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    return r.value();
  }

  StreamManager mgr_;
};

TEST_F(StreamManagerTest, CreateStreamValidates) {
  EXPECT_FALSE(mgr_.CreateStream("credit", testutil::kCreditTagStructure)
                   .ok());  // duplicate
  EXPECT_FALSE(mgr_.CreateStream("bad", "<junk/>").ok());
  EXPECT_NE(mgr_.server("credit"), nullptr);
  EXPECT_NE(mgr_.store("credit"), nullptr);
  EXPECT_EQ(mgr_.server("missing"), nullptr);
}

TEST_F(StreamManagerTest, PublishingValidates) {
  EXPECT_FALSE(mgr_.PublishDocumentXml("missing", "<x/>").ok());
  EXPECT_FALSE(mgr_.PublishDocumentXml("credit", "not xml").ok());
  EXPECT_FALSE(mgr_.PublishFragmentXml("credit", "<notfiller/>").ok());
}

TEST_F(StreamManagerTest, QueriesRunUnderAllMethods) {
  for (lang::ExecMethod m : {lang::ExecMethod::kCaQ, lang::ExecMethod::kQaC,
                             lang::ExecMethod::kQaCPlus}) {
    EXPECT_EQ(Run("count(stream(\"credit\")//transaction)", m), "2")
        << lang::ExecMethodName(m);
  }
}

TEST_F(StreamManagerTest, TranslateShowsTheRewriting) {
  auto t = mgr_.Translate("stream(\"credit\")//transaction",
                          lang::ExecMethod::kQaCPlus);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t.value().find("xcql:tsid_scan"), std::string::npos);
}

TEST_F(StreamManagerTest, MaterializeViewReconstructs) {
  auto view = mgr_.MaterializeView("credit");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value()->name(), "creditAccounts");
  EXPECT_EQ(view.value()->ChildElements("account").size(), 2u);
}

TEST_F(StreamManagerTest, FragmentUpdateChangesQueryResults) {
  // Paper §4.2 filler 5 in reverse: before any update, the $1200
  // transaction is suspended; a new status version re-charges it.
  EXPECT_EQ(Run("count(stream(\"credit\")//transaction[amount > 1000]"
                "[status?[now] = \"charged\"])"),
            "0");
  // Locate the suspended status filler.
  int64_t status_id = -1;
  for (int64_t cand = 0; cand < 32; ++cand) {
    auto versions = mgr_.store("credit")->GetFillerVersions(cand, false);
    if (versions.ok() && !versions.value().empty() &&
        versions.value().back()->StringValue() == "suspended") {
      status_id = cand;
      break;
    }
  }
  ASSERT_GE(status_id, 0);
  std::string filler = "<filler id=\"" + std::to_string(status_id) +
                       "\" tsid=\"7\" validTime=\"2003-12-05T08:00:00\">"
                       "<status>charged</status></filler>";
  ASSERT_TRUE(mgr_.PublishFragmentXml("credit", filler).ok());
  EXPECT_EQ(Run("count(stream(\"credit\")//transaction[amount > 1000]"
                "[status?[now] = \"charged\"])"),
            "1");
}

TEST_F(StreamManagerTest, UserDefinedFunctions) {
  mgr_.RegisterFunction(
      "half", 1, 1,
      [](xq::EvalContext&,
         std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        auto n = xq::AtomizeItem(args[0].front()).ToNumber();
        if (!n) return Status::TypeError("half() needs a number");
        return xq::SingletonAtomic(xq::Atomic(*n / 2));
      });
  EXPECT_EQ(Run("half(sum(stream(\"credit\")//creditLimit/text()))"), "5000");
}

TEST_F(StreamManagerTest, ContinuousQueryThroughFacade) {
  std::vector<std::string> emitted;
  auto id = mgr_.RegisterContinuousQuery(
      "for $t in stream(\"credit\")//transaction where $t/amount > 1000 "
      "return string($t/@id)",
      [&](const xq::Sequence& delta, DateTime) {
        for (const auto& item : delta) {
          emitted.push_back(xq::AsAtomic(item).ToStringValue());
        }
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(mgr_.Tick().ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], "23456");
  ASSERT_TRUE(mgr_.AdvanceTo(T("2003-12-10T00:00:00")).ok());
  EXPECT_EQ(emitted.size(), 1u);  // nothing new
  ASSERT_TRUE(mgr_.UnregisterContinuousQuery(id.value()).ok());
}

TEST_F(StreamManagerTest, StreamNames) {
  EXPECT_EQ(mgr_.StreamNames(), std::vector<std::string>{"credit"});
}

TEST_F(StreamManagerTest, TimeTravelQueries) {
  // The temporal view is a read-once temporal database (paper §1): pinning
  // `now` evaluates the stream's state at any past instant.
  struct Probe {
    const char* at;
    const char* expected_limit;
    const char* expected_status_count;  // statuses valid at that instant
  };
  const Probe probes[] = {
      // Before the 2001 limit change: the original $2000 limit.
      {"2000-06-01T00:00:00", "2000", "0"},
      // After the change, before any transaction.
      {"2002-01-01T00:00:00", "5000", "0"},
      // After both transactions and the suspension.
      {"2003-11-20T00:00:00", "5000", "2"},
  };
  for (const Probe& p : probes) {
    lang::ExecOptions opts;
    opts.now = T(p.at);
    auto limit = mgr_.QueryToString(
        "stream(\"credit\")//account[@id = \"1234\"]/creditLimit?[now]"
        "/text()",
        opts);
    ASSERT_TRUE(limit.ok()) << limit.status().ToString();
    EXPECT_EQ(limit.value(), p.expected_limit) << "at " << p.at;
    auto statuses = mgr_.QueryToString(
        "count(stream(\"credit\")//status?[now])", opts);
    ASSERT_TRUE(statuses.ok());
    EXPECT_EQ(statuses.value(), p.expected_status_count) << "at " << p.at;
  }
}

TEST_F(StreamManagerTest, TimeTravelSeesEventsOnlyAfterTheyHappen) {
  lang::ExecOptions before;
  before.now = T("2003-01-01T00:00:00");
  EXPECT_EQ(
      mgr_.QueryToString(
              "count(stream(\"credit\")//transaction?[start, now])", before)
          .value(),
      "0");
  lang::ExecOptions after;
  after.now = T("2003-12-01T00:00:00");
  EXPECT_EQ(
      mgr_.QueryToString(
              "count(stream(\"credit\")//transaction?[start, now])", after)
          .value(),
      "2");
}

TEST_F(StreamManagerTest, PaperQuery1EndToEnd) {
  // Push a burst of November transactions that max out account 5678
  // (limit 3000), then run the paper's Query 1.
  stream::StreamServer* srv = mgr_.server("credit");
  ASSERT_NE(srv, nullptr);
  // Find account 5678's filler id to hang new transactions off it.
  int64_t account_id = -1;
  for (int64_t cand = 0; cand < 32; ++cand) {
    auto versions = mgr_.store("credit")->GetFillerVersions(cand, false);
    if (versions.ok() && !versions.value().empty() &&
        versions.value().back()->name() == "account" &&
        *versions.value().back()->FindAttr("id") == "5678") {
      account_id = cand;
      break;
    }
  }
  ASSERT_GE(account_id, 0);
  // Rebuild the account context payload (customer + existing holes) the way
  // the server-side event generator would maintain it.
  auto versions = mgr_.store("credit")->GetFillerVersions(account_id, false);
  ASSERT_TRUE(versions.ok());
  NodePtr context = Node::Element("account");
  context->SetAttr("id", "5678");
  for (const auto& c : versions.value().back()->children()) {
    if (c->is_element() && c->name() == "hole") {
      context->AddChild(frag::MakeHole(frag::HoleId(*c).value(),
                                       frag::HoleTsid(*c).value()));
    } else if (c->is_element() && c->name() == "customer") {
      context->AddChild(c->Clone());
    }
  }
  stream::EventAppender appender(srv, account_id, /*tsid=*/2,
                                 std::move(context));
  for (int i = 0; i < 2; ++i) {
    NodePtr txn = Node::Element("transaction");
    txn->SetAttr("id", "9990" + std::to_string(i));
    NodePtr vendor = Node::Element("vendor");
    vendor->AddChild(Node::Text("MegaStore"));
    txn->AddChild(std::move(vendor));
    NodePtr status = Node::Element("status");
    status->AddChild(Node::Text("charged"));
    txn->AddChild(std::move(status));
    NodePtr amount = Node::Element("amount");
    amount->AddChild(Node::Text("1600"));
    txn->AddChild(std::move(amount));
    ASSERT_TRUE(appender
                    .Append(std::move(txn),
                            T(i == 0 ? "2003-11-05T10:00:00"
                                     : "2003-11-12T15:00:00"))
                    .ok());
  }
  ASSERT_TRUE(appender.Flush(T("2003-11-12T15:00:00")).ok());

  // The appended transactions make account 5678's November charges (3200)
  // exceed its current limit (3000). The account now has two versions (the
  // update created one), but only the second version's payload carries the
  // new transaction holes, so exactly one row is reported.
  const char* q1 = R"(
    for $a in stream("credit")/creditAccounts/account
    where sum($a/transaction?[2003-11-01,2003-12-01]
              [status = "charged"]/amount) >= $a/creditLimit?[now]
    return <maxed>{string($a/@id)}</maxed>)";
  EXPECT_EQ(Run(q1), "<maxed>5678</maxed>");
}

// A context republished k times carries its surviving holes in every
// version, so the Fig. 3 QaC translation requests those filler ids k
// times per step. Under the default (indexed) cost model the repeats are
// deduplicated, matching the QaC+ index path's once-per-filler
// enumeration; the paper-faithful linear scan keeps the literal
// per-occurrence behavior.
TEST(RepeatedHoleTest, QaCMatchesQaCPlusAcrossContextVersions) {
  StreamManager mgr;
  ASSERT_TRUE(
      mgr.CreateStream("credit", testutil::kCreditTagStructure).ok());
  ASSERT_TRUE(mgr
                  .PublishDocumentXml(
                      "credit",
                      R"(<creditAccounts>
                           <account id="1" vtFrom="2004-01-01T00:00:00"
                                    vtTo="now">
                             <customer>Sam</customer>
                           </account>
                         </creditAccounts>)")
                  .ok());
  NodePtr context = Node::Element("account");
  context->SetAttr("id", "1");
  stream::EventAppender appender(mgr.server("credit"), /*context_id=*/1,
                                 /*context_tsid=*/2, std::move(context));
  DateTime t = T("2004-01-02T00:00:00");
  int id = 0;
  // Three flushes of two transactions: three account versions whose hole
  // lists accumulate (2, 4, 6 holes).
  for (int flush = 0; flush < 3; ++flush) {
    for (int i = 0; i < 2; ++i) {
      t = t.Add(Duration::FromSeconds(60));
      NodePtr txn = Node::Element("transaction");
      txn->SetAttr("id", std::to_string(id++));
      NodePtr amount = Node::Element("amount");
      amount->AddChild(Node::Text("10"));
      txn->AddChild(std::move(amount));
      ASSERT_TRUE(appender.Append(std::move(txn), t).ok());
    }
    ASSERT_TRUE(appender.Flush(t).ok());
  }
  mgr.clock().AdvanceTo(t);

  auto count = [&](lang::ExecMethod m, std::optional<bool> linear) {
    lang::ExecOptions opts;
    opts.method = m;
    opts.linear_get_fillers = linear;
    auto r = mgr.QueryToString(
        "count(stream(\"credit\")//account/transaction)", opts);
    return r.ok() ? r.value() : "ERROR: " + r.status().ToString();
  };
  EXPECT_EQ(count(lang::ExecMethod::kQaCPlus, std::nullopt), "6");
  EXPECT_EQ(count(lang::ExecMethod::kQaC, std::nullopt), "6");
  // The paper's literal access path enumerates per hole occurrence
  // (2 + 4 + 6), as does the materialized view, whose version snapshots
  // each splice in their referenced fillers.
  EXPECT_EQ(count(lang::ExecMethod::kQaC, true), "12");
  EXPECT_EQ(count(lang::ExecMethod::kCaQ, std::nullopt), "12");
}

}  // namespace
}  // namespace xcql
