// Tests for the durability layer (src/net/wal.h): record codec round-trip
// through reopen, torn-tail truncation at every byte boundary, poison
// (corruption) detection, checkpoint compaction + GC, epoch rules, and the
// fork-based kill-point matrix — a child process runs a scripted workload
// and _exit()s at each WalHooks crash point; the parent then recovers the
// directory and proves the log is a contiguous, appendable prefix.
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/file_util.h"
#include "frag/codec.h"
#include "net/frame.h"
#include "net/wal.h"
#include "stream/transport.h"

namespace xcql::net {
namespace {

namespace fs = std::filesystem;

constexpr const char* kStream = "packets";
constexpr const char* kTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
  </tag>
</tag>)";

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xcql_wal_test_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    root_ = tmpl;
  }
  void TearDown() override {
    WalHooks::Install(nullptr);
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  // A fresh directory path (not yet created) under the test root.
  std::string Dir(const std::string& name = "wal") {
    return root_ + "/" + name;
  }

  std::string root_;
};

// The deterministic record for seq i: payload is fixed-size so frame sizes
// (and thus rotation points) are predictable. 40-byte payload + 24-byte v2
// header = a 64-byte record.
std::string PayloadFor(int64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "record-%06lld",
                static_cast<long long>(seq));
  std::string payload = buf;
  payload.resize(40, '.');
  return payload;
}

std::string RecordFor(int64_t seq) {
  Frame f;
  f.type = FrameType::kFragment;
  f.seq = static_cast<uint64_t>(seq);
  f.payload = PayloadFor(seq);
  auto bytes = EncodeFrame(f, kFrameVersionCrc);
  EXPECT_TRUE(bytes.ok());
  return bytes.ok() ? std::move(bytes).MoveValue() : std::string();
}

Result<std::unique_ptr<Wal>> OpenWal(const std::string& dir,
                                     const WalOptions& opts,
                                     WalRecovery* rec) {
  return Wal::Open(dir, kStream, kTs, opts, rec);
}

void ExpectPrefix(const WalRecovery& rec, int64_t at_least = 0) {
  ASSERT_GE(static_cast<int64_t>(rec.records.size()), at_least);
  for (size_t i = 0; i < rec.records.size(); ++i) {
    ASSERT_EQ(rec.records[i].seq, static_cast<int64_t>(i));
    ASSERT_EQ(rec.records[i].payload, PayloadFor(static_cast<int64_t>(i)));
  }
}

std::vector<std::string> DirEntries(const std::string& dir) {
  std::vector<std::string> names;
  for (const auto& e : fs::directory_iterator(dir)) {
    names.push_back(e.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

// Appends raw bytes to an existing file (simulating a torn tail or
// filesystem garbage past the last record).
void AppendRaw(const std::string& path, std::string_view bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::app);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(f.good());
}

TEST_F(WalTest, RecordsRoundTripThroughReopen) {
  WalOptions opts;
  uint64_t epoch = 0;
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), opts, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_TRUE(rec.records.empty());
    EXPECT_EQ(rec.stream_name, kStream);
    epoch = wal.value()->epoch();
    EXPECT_NE(epoch, 0u);
    for (int64_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    EXPECT_EQ(wal.value()->next_seq(), 20);
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  WalRecovery rec;
  auto wal = OpenWal(Dir(), opts, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal.value()->epoch(), epoch);  // epoch survives reopen
  EXPECT_EQ(rec.epoch, epoch);
  EXPECT_EQ(rec.records.size(), 20u);
  ExpectPrefix(rec, 20);
  EXPECT_EQ(rec.report.checkpoint_records, 0);
  EXPECT_EQ(rec.report.tail_records, 20);
  EXPECT_FALSE(rec.report.torn_tail);
  EXPECT_EQ(wal.value()->next_seq(), 20);
  // Appending resumes at the recovered seq.
  ASSERT_TRUE(wal.value()->Append(20, RecordFor(20)).ok());
}

TEST_F(WalTest, AppendIsIdempotentBelowNextSeqAndRejectsGaps) {
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
  ASSERT_TRUE(wal.value()->Append(1, RecordFor(1)).ok());
  // Re-seeding seqs the log already holds is a no-op, not a duplicate.
  EXPECT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
  EXPECT_EQ(wal.value()->stats().appends, 2);
  // A gap would lose a record silently on replay: hard error.
  EXPECT_FALSE(wal.value()->Append(5, RecordFor(5)).ok());
  // Not an encoded frame: hard error.
  EXPECT_FALSE(wal.value()->Append(2, "tiny").ok());
  ASSERT_TRUE(wal.value()->Close().ok());
  // Closed: appends fail.
  EXPECT_FALSE(wal.value()->Append(2, RecordFor(2)).ok());
}

TEST_F(WalTest, TornTailIsTruncatedAtEveryByteBoundary) {
  const std::string torn_record = RecordFor(3);
  for (size_t cut = 1; cut < torn_record.size(); ++cut) {
    std::string dir = Dir("cut" + std::to_string(cut));
    {
      WalRecovery rec;
      auto wal = OpenWal(dir, WalOptions{}, &rec);
      ASSERT_TRUE(wal.ok());
      for (int64_t i = 0; i < 3; ++i) {
        ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
      }
      ASSERT_TRUE(wal.value()->Close().ok());
    }
    // Crash mid-append: a prefix of record 3 lands in the active segment.
    AppendRaw(dir + "/" + "wal-00000000000000000000.log",
              std::string_view(torn_record).substr(0, cut));
    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << "cut=" << cut << ": "
                          << wal.status().ToString();
    EXPECT_EQ(rec.records.size(), 3u) << "cut=" << cut;
    ExpectPrefix(rec, 3);
    EXPECT_TRUE(rec.report.torn_tail) << "cut=" << cut;
    EXPECT_EQ(rec.report.torn_bytes, cut);
    EXPECT_FALSE(rec.report.warning.empty());
    // Exactly the partial record was truncated: the next append goes
    // through and a further reopen is clean.
    ASSERT_TRUE(wal.value()->Append(3, RecordFor(3)).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
    WalRecovery rec2;
    auto wal2 = OpenWal(dir, WalOptions{}, &rec2);
    ASSERT_TRUE(wal2.ok());
    EXPECT_EQ(rec2.records.size(), 4u);
    EXPECT_FALSE(rec2.report.torn_tail);
  }
}

TEST_F(WalTest, CorruptRecordMidLogIsPoisonNotTornTail) {
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  // Flip one payload bit inside record 1. The framing still holds, so the
  // CRC catches it — and with complete records *after* it the failure
  // cannot be a torn tail: the bytes were fully written, then damaged.
  std::string path = Dir() + "/wal-00000000000000000000.log";
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = bytes.value();
  damaged[64 + 24 + 5] ^= 0x20;  // record 1's payload
  ASSERT_TRUE(WriteStringToFile(path, damaged).ok());
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("poison"), std::string::npos)
      << wal.status().ToString();
  EXPECT_NE(wal.status().message().find("CRC32C"), std::string::npos);
}

TEST_F(WalTest, CrcFailedFinalRecordInNewestSegmentIsTornTail) {
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  // Damage the *final* record's payload. The framing still completes, so
  // under fsync=interval/never this is indistinguishable from a crash
  // that grew the file before the payload blocks flushed: recovery must
  // truncate it as a torn tail, not refuse to start.
  std::string path = Dir() + "/wal-00000000000000000000.log";
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = bytes.value();
  damaged[3 * 64 + 24 + 5] ^= 0x20;  // record 3's payload
  ASSERT_TRUE(WriteStringToFile(path, damaged).ok());
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(rec.records.size(), 3u);
  ExpectPrefix(rec, 3);
  EXPECT_TRUE(rec.report.torn_tail);
  EXPECT_EQ(rec.report.torn_bytes, 64u);  // exactly the damaged record
  // The truncated log accepts a re-append of seq 3 and reopens clean.
  ASSERT_TRUE(wal.value()->Append(3, RecordFor(3)).ok());
  ASSERT_TRUE(wal.value()->Close().ok());
  WalRecovery rec2;
  auto wal2 = OpenWal(Dir(), WalOptions{}, &rec2);
  ASSERT_TRUE(wal2.ok());
  EXPECT_EQ(rec2.records.size(), 4u);
  ExpectPrefix(rec2, 4);
  EXPECT_FALSE(rec2.report.torn_tail);
}

TEST_F(WalTest, CrcFailedRecordInSealedSegmentIsPoisonEvenAtItsEnd) {
  WalOptions opts;
  opts.segment_bytes = 160;  // 64-byte records: rotate every 2-3
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), opts, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_GT(wal.value()->stats().rotations, 0);
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  // The torn-tail reading exists only for the newest segment: sealed
  // files are never appended to, so even their final record failing its
  // checksum is bit rot, never a crash artifact.
  std::string path = Dir() + "/wal-00000000000000000000.log";
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = bytes.value();
  damaged[damaged.size() - 10] ^= 0x20;  // the sealed segment's last record
  ASSERT_TRUE(WriteStringToFile(path, damaged).ok());
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("poison"), std::string::npos)
      << wal.status().ToString();
  EXPECT_NE(wal.status().message().find("CRC32C"), std::string::npos);
}

TEST_F(WalTest, PartialRecordInSealedSegmentIsPoison) {
  {
    WalRecovery rec;
    WalOptions opts;
    opts.segment_bytes = 160;  // 64-byte records: rotate every 2-3
    auto wal = OpenWal(Dir(), opts, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_GT(wal.value()->stats().rotations, 0);
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  // A partial record at the end of a *sealed* segment cannot be a torn
  // append (appends only ever go to the newest segment): corruption.
  AppendRaw(Dir() + "/wal-00000000000000000000.log",
            std::string_view(RecordFor(99)).substr(0, 30));
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("poison"), std::string::npos)
      << wal.status().ToString();
}

TEST_F(WalTest, CheckpointCompactsSegmentsAndGcs) {
  WalOptions opts;
  opts.segment_bytes = 160;
  uint64_t epoch = 0;
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), opts, &rec);
    ASSERT_TRUE(wal.ok());
    epoch = wal.value()->epoch();
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_TRUE(wal.value()->Checkpoint().ok());
    EXPECT_EQ(wal.value()->stats().checkpoints, 1);
    // Steady state after a checkpoint: manifest, one checkpoint covering
    // everything, one fresh (empty) active segment. Old segments GC'd.
    EXPECT_EQ(DirEntries(Dir()),
              (std::vector<std::string>{
                  "MANIFEST", "checkpoint-00000000000000000010.ckpt",
                  "wal-00000000000000000010.log"}));
    // More records land in the post-checkpoint tail.
    for (int64_t i = 10; i < 13; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  WalRecovery rec;
  auto wal = OpenWal(Dir(), opts, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ(wal.value()->epoch(), epoch);
  EXPECT_EQ(rec.report.checkpoint_records, 10);
  EXPECT_EQ(rec.report.tail_records, 3);
  EXPECT_EQ(rec.records.size(), 13u);
  ExpectPrefix(rec, 13);
}

TEST_F(WalTest, AutoCheckpointEveryNRecords) {
  WalOptions opts;
  opts.checkpoint_every = 4;
  WalRecovery rec;
  auto wal = OpenWal(Dir(), opts, &rec);
  ASSERT_TRUE(wal.ok());
  for (int64_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
  }
  EXPECT_EQ(wal.value()->stats().checkpoints, 2);  // at 4 and at 8
  ASSERT_TRUE(wal.value()->Close().ok());
  WalRecovery rec2;
  auto wal2 = OpenWal(Dir(), opts, &rec2);
  ASSERT_TRUE(wal2.ok());
  EXPECT_EQ(rec2.report.checkpoint_records, 8);
  EXPECT_EQ(rec2.report.tail_records, 1);
  ExpectPrefix(rec2, 9);
}

TEST_F(WalTest, CorruptCheckpointIsPoison) {
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
    }
    ASSERT_TRUE(wal.value()->Checkpoint().ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  std::string path = Dir() + "/checkpoint-00000000000000000005.ckpt";
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string damaged = bytes.value();
  damaged[2 * 64 + 30] ^= 0x08;
  ASSERT_TRUE(WriteStringToFile(path, damaged).ok());
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_FALSE(wal.ok());
  EXPECT_NE(wal.status().message().find("poison"), std::string::npos)
      << wal.status().ToString();
}

TEST_F(WalTest, MismatchedStreamOrSchemaIsRejected) {
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  WalRecovery rec;
  auto other_stream = Wal::Open(Dir(), "audit", kTs, WalOptions{}, &rec);
  EXPECT_FALSE(other_stream.ok());
  EXPECT_NE(other_stream.status().message().find("reset the data dir"),
            std::string::npos);
  const char* other_ts = R"(<tag type="snapshot" id="1" name="other"/>)";
  auto other_schema = Wal::Open(Dir(), kStream, other_ts, WalOptions{}, &rec);
  EXPECT_FALSE(other_schema.ok());
  // Same schema, re-serialized differently (whitespace), still matches:
  // the comparison is canonical, not textual.
  auto reserialized = frag::TagStructure::Parse(kTs);
  ASSERT_TRUE(reserialized.ok());
  auto same = Wal::Open(Dir(), kStream, reserialized.value().ToXml(),
                        WalOptions{}, &rec);
  EXPECT_TRUE(same.ok()) << same.status().ToString();
}

TEST_F(WalTest, ResetDirectoryMintsAFreshEpoch) {
  uint64_t first = 0;
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    first = wal.value()->epoch();
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  std::error_code ec;
  fs::remove_all(Dir(), ec);
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  EXPECT_NE(wal.value()->epoch(), 0u);
  EXPECT_NE(wal.value()->epoch(), first);
}

TEST_F(WalTest, FsyncPoliciesAllPersist) {
  for (FsyncPolicy policy : {FsyncPolicy::kAlways, FsyncPolicy::kInterval,
                             FsyncPolicy::kNever}) {
    std::string dir = Dir(FsyncPolicyName(policy));
    WalOptions opts;
    opts.fsync = policy;
    opts.fsync_interval = std::chrono::milliseconds(1);
    {
      WalRecovery rec;
      auto wal = OpenWal(dir, opts, &rec);
      ASSERT_TRUE(wal.ok());
      for (int64_t i = 0; i < 5; ++i) {
        ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
      }
      if (policy == FsyncPolicy::kAlways) {
        EXPECT_EQ(wal.value()->stats().syncs, 5);
      }
      ASSERT_TRUE(wal.value()->Close().ok());
    }
    WalRecovery rec;
    auto wal = OpenWal(dir, opts, &rec);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(rec.records.size(), 5u);
    ExpectPrefix(rec, 5);
  }
  EXPECT_FALSE(ParseFsyncPolicy("sometimes").ok());
  EXPECT_EQ(ParseFsyncPolicy("interval").value(), FsyncPolicy::kInterval);
}

TEST_F(WalTest, RestoreStreamRebuildsPublishedHistory) {
  auto ts = frag::TagStructure::Parse(kTs);
  ASSERT_TRUE(ts.ok());
  // Publish through a real StreamServer so records carry genuine wire
  // payloads (not the synthetic fixed-size ones).
  stream::StreamServer original(kStream, std::move(ts).MoveValue());
  std::vector<std::string> frames;
  for (int i = 0; i < 6; ++i) {
    frag::Fragment f;
    f.id = 100 + i % 2;  // two fillers, three versions each
    f.tsid = 2;
    f.valid_time = DateTime(1000 + i * 60);
    f.content = Node::Element("packet");
    NodePtr pid = Node::Element("id");
    pid->AddChild(Node::Text(std::to_string(i)));
    f.content->AddChild(std::move(pid));
    ASSERT_TRUE(original.Publish(std::move(f)).ok());
  }
  {
    WalRecovery rec;
    auto wal = OpenWal(Dir(), WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok());
    for (int64_t i = 0; i < original.history_size(); ++i) {
      auto payload = frag::EncodeWirePayload(original.history_at(i),
                                             original.tag_structure(),
                                             frag::WireCodec::kPlainXml);
      ASSERT_TRUE(payload.ok());
      Frame frame;
      frame.type = FrameType::kFragment;
      frame.seq = static_cast<uint64_t>(i);
      frame.payload = std::move(payload).MoveValue();
      auto bytes = EncodeFrame(frame, kFrameVersionCrc);
      ASSERT_TRUE(bytes.ok());
      ASSERT_TRUE(wal.value()->Append(i, bytes.value()).ok());
    }
    ASSERT_TRUE(wal.value()->Close().ok());
  }
  WalRecovery rec;
  auto wal = OpenWal(Dir(), WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  auto ts2 = frag::TagStructure::Parse(kTs);
  ASSERT_TRUE(ts2.ok());
  stream::StreamServer restored(kStream, std::move(ts2).MoveValue());
  ASSERT_TRUE(RestoreStream(rec, &restored).ok());
  ASSERT_EQ(restored.history_size(), original.history_size());
  for (int64_t i = 0; i < original.history_size(); ++i) {
    const auto& a = original.history_at(i);
    const auto& b = restored.history_at(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.tsid, b.tsid);
    EXPECT_EQ(a.valid_time, b.valid_time);
    EXPECT_TRUE(Node::DeepEqual(*a.content, *b.content));
  }
  // Fresh filler ids continue above everything restored — a re-fragmented
  // document after recovery can never collide with recovered fillers.
  EXPECT_GT(restored.NextFillerId(), 101);
}

// ---- Kill-point matrix ------------------------------------------------------
//
// The workload below hits every crash point: appends fire the append:*
// points each record, the 160-byte segment cap forces rotations, and
// checkpoint_every=5 forces checkpoints. The child installs a hook that
// _exit(42)s the process the first time the target point fires; the parent
// proves recovery at that exact state.

constexpr int kWorkloadRecords = 12;

[[noreturn]] void RunKillWorkload(const std::string& dir,
                                  const std::string& kill_point) {
  WalHooks::Install([kill_point](const char* point) {
    if (kill_point == point) ::_exit(42);
  });
  WalOptions opts;
  opts.fsync = FsyncPolicy::kAlways;
  opts.segment_bytes = 160;
  opts.checkpoint_every = 5;
  WalRecovery rec;
  auto wal = Wal::Open(dir, kStream, kTs, opts, &rec);
  if (!wal.ok()) ::_exit(99);
  for (int64_t i = 0; i < kWorkloadRecords; ++i) {
    if (!wal.value()->Append(i, RecordFor(i)).ok()) ::_exit(98);
  }
  ::_exit(0);  // the hook never fired: the matrix missed its point
}

TEST_F(WalTest, KillPointMatrixRecoversAContiguousAppendablePrefix) {
  ASSERT_EQ(WalHooks::Points().size(), 12u);
  for (const char* point : WalHooks::Points()) {
    // The retain:* points fire from the server's retention driver, not
    // from WAL appends; retention_test's kill matrix covers them.
    if (std::string(point).rfind("retain:", 0) == 0) continue;
    std::string dir = Dir(std::string("kill_") + point);
    std::replace(dir.begin(), dir.end(), ':', '_');
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunKillWorkload(dir, point);  // never returns
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << point;
    ASSERT_EQ(WEXITSTATUS(status), 42)
        << point << ": the workload never reached this crash point";

    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << point << ": " << wal.status().ToString();
    // Whatever survived is a contiguous prefix of what was appended — no
    // gap, no reordering, no damaged record.
    ExpectPrefix(rec);
    int64_t n = static_cast<int64_t>(rec.records.size());
    ASSERT_LE(n, kWorkloadRecords) << point;
    // With fsync=always every acked append is durable; the only record
    // that may be missing is the one in flight when the process died.
    if (std::string(point) != "append:before_write" &&
        std::string(point) != "append:mid_write" &&
        std::string(point) != "append:after_write") {
      EXPECT_GT(n, 0) << point;
    }
    // A torn tail can only come from dying between the two halves of a
    // split write.
    if (std::string(point) != "append:mid_write") {
      EXPECT_FALSE(rec.report.torn_tail) << point;
    } else {
      EXPECT_TRUE(rec.report.torn_tail) << point;
      EXPECT_GT(rec.report.torn_bytes, 0u) << point;
    }
    EXPECT_EQ(wal.value()->next_seq(), n) << point;
    // The recovered log accepts the rest of the workload and survives a
    // clean reopen: recovery restored a fully consistent steady state.
    for (int64_t i = n; i < kWorkloadRecords; ++i) {
      ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok()) << point;
    }
    ASSERT_TRUE(wal.value()->Close().ok()) << point;
    WalRecovery rec2;
    auto wal2 = OpenWal(dir, WalOptions{}, &rec2);
    ASSERT_TRUE(wal2.ok()) << point << ": " << wal2.status().ToString();
    EXPECT_EQ(rec2.records.size(),
              static_cast<size_t>(kWorkloadRecords)) << point;
    ExpectPrefix(rec2, kWorkloadRecords);
    EXPECT_FALSE(rec2.report.torn_tail) << point;
  }
}

// Crashing inside a checkpoint must never lose the pre-checkpoint records:
// the tmp file only replaces the old files after its rename, and an
// interrupted GC is finished at the next open.
TEST_F(WalTest, KillDuringCheckpointPreservesEveryRecord) {
  for (const char* point :
       {"checkpoint:begin", "checkpoint:tmp_written",
        "checkpoint:after_rename", "checkpoint:after_gc"}) {
    std::string dir = Dir(std::string("ckpt_") + point);
    std::replace(dir.begin(), dir.end(), ':', '_');
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunKillWorkload(dir, point);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_EQ(WEXITSTATUS(status), 42) << point;
    WalRecovery rec;
    auto wal = OpenWal(dir, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << point << ": " << wal.status().ToString();
    // The workload checkpoints after the 5th append (every point in this
    // list is at-or-after that checkpoint began), and every appended
    // record was fsync'd, so all 5 must be there.
    EXPECT_GE(rec.records.size(), 5u) << point;
    ExpectPrefix(rec);
  }
}

// Regression: a crash at checkpoint:after_rename (rename done, GC not)
// leaves the pre-checkpoint active segment on disk with a base *below*
// the checkpoint count but an end exactly at it. Open must GC that
// segment, not adopt it as active — adopting it made the *next*
// checkpoint byte-copy checkpoint + segment into a file whose record
// count no longer matched its name, poisoning the directory.
TEST_F(WalTest, CheckpointAfterMidGcRecoveryDoesNotDuplicateRecords) {
  std::string dir = Dir("ckpt_dup");
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) RunKillWorkload(dir, "checkpoint:after_rename");
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_EQ(WEXITSTATUS(status), 42);

  WalRecovery rec;
  auto wal = OpenWal(dir, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  int64_t n = static_cast<int64_t>(rec.records.size());
  // The checkpoint fires inside Append(4): exactly records 0..4 are both
  // durable and checkpointed when the child dies.
  ASSERT_EQ(n, 5);
  EXPECT_EQ(rec.report.checkpoint_records, 5);
  ExpectPrefix(rec, 5);
  // Recovery finished the interrupted GC: nothing below the checkpoint
  // survives as a log segment.
  std::vector<std::string> entries = DirEntries(dir);
  for (const std::string& e : entries) {
    if (e.rfind("wal-", 0) != 0) continue;
    EXPECT_GE(e, std::string("wal-00000000000000000005.log")) << e;
  }
  for (int64_t i = n; i < kWorkloadRecords; ++i) {
    ASSERT_TRUE(wal.value()->Append(i, RecordFor(i)).ok());
  }
  // The second checkpoint is the regression proper: pre-fix it copied
  // records 0..4 twice (once from the checkpoint, once from the adopted
  // stale segment) and the reopen below failed with a count mismatch.
  ASSERT_TRUE(wal.value()->Checkpoint().ok());
  ASSERT_TRUE(wal.value()->Close().ok());

  WalRecovery rec2;
  auto wal2 = OpenWal(dir, WalOptions{}, &rec2);
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  EXPECT_EQ(rec2.records.size(), static_cast<size_t>(kWorkloadRecords));
  EXPECT_EQ(rec2.report.checkpoint_records, kWorkloadRecords);
  ExpectPrefix(rec2, kWorkloadRecords);
}

// FsyncPolicy::kInterval bounds the loss window by wall clock, not by
// "until someone happens to append again": the background flusher must
// sync an idle dirty tail on its own.
TEST_F(WalTest, IntervalPolicySyncsAnIdleTailWithinTheInterval) {
  WalOptions opts;
  opts.fsync = FsyncPolicy::kInterval;
  opts.fsync_interval = std::chrono::milliseconds(20);
  WalRecovery rec;
  auto wal = OpenWal(Dir(), opts, &rec);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal.value()->Append(0, RecordFor(0)).ok());
  // No further appends: only the flusher thread can sync this record.
  // Generous poll bound; normally one 20ms interval suffices.
  for (int i = 0; i < 400 && wal.value()->stats().syncs == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(wal.value()->stats().syncs, 1)
      << "idle dirty tail was never synced by the interval flusher";
  ASSERT_TRUE(wal.value()->Close().ok());
}

}  // namespace
}  // namespace xcql::net
