// Tests for the remote continuous-query subsystem (protocol v3): the
// QUERY/UNQUERY/RESULT/QUERY_STATUS codec, the server-side QueryChannel
// (canonical-key sharing, admission limits, deterministic result logs,
// durable registry recovery incl. fork-based kill points at the registry
// write boundary), and the full networked path — remote result streams
// must be byte-identical to a local ContinuousQueryEngine fed the same
// fragment schedule, across ExecMethods, under ChaosLink faults,
// subscriber kills, and server restart from WAL + registry.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "frag/fragment.h"
#include "net/chaos.h"
#include "net/frame.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "net/wal.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xcql/translator.h"
#include "xq/context.h"

namespace xcql::net {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

frag::TagStructure MustParseTs(const std::string& xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
  </tag>
</tag>)";

// The workhorse query: one result item per distinct packet id value, so
// every fresh packet publish produces exactly one delta under dedup.
constexpr const char* kIdQuery =
    "for $p in stream(\"pkts\")//packet return string($p/id)";

frag::Fragment MakePacket(int64_t id, int64_t t, int pkt) {
  frag::Fragment f;
  f.id = id;
  f.tsid = 2;
  f.valid_time = DateTime(t);
  f.content = Node::Element("packet");
  NodePtr pid = Node::Element("id");
  pid->AddChild(Node::Text(std::to_string(pkt)));
  f.content->AddChild(std::move(pid));
  return f;
}

frag::Fragment MakeRoot(const std::vector<int64_t>& hole_ids) {
  frag::Fragment f;
  f.id = 0;
  f.tsid = 1;
  f.valid_time = DateTime(999);
  f.content = Node::Element("packets");
  for (int64_t id : hole_ids) f.content->AddChild(frag::MakeHole(id, 2));
  return f;
}

template <typename Pred>
bool PollFor(Pred pred, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

RemoteQuerySpec Spec(const std::string& text,
                     uint8_t method = 2 /* kQaCPlus */, uint8_t hole = 0,
                     uint8_t tick = 0, uint8_t flags = 0) {
  RemoteQuerySpec spec;
  spec.text = text;
  spec.method = method;
  spec.hole_policy = hole;
  spec.tick_policy = tick;
  spec.flags = flags;
  return spec;
}

// One delta as observed by any consumer — the common currency every
// equivalence check below compares in. Result frames from different
// query ids differ in their payload bytes (the id rides in the RESULT
// payload), so cross-query comparisons happen at this level; same-query
// cross-incarnation comparisons additionally compare raw frame bytes.
struct DeltaRec {
  int64_t at = 0;
  std::vector<std::string> added;
  std::vector<std::string> removed;
  bool operator==(const DeltaRec& o) const {
    return at == o.at && added == o.added && removed == o.removed;
  }
};

void ExpectRecsEqual(const std::vector<DeltaRec>& got,
                     const std::vector<DeltaRec>& want,
                     const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].at, want[i].at) << label << " delta " << i;
    EXPECT_EQ(got[i].added, want[i].added) << label << " delta " << i;
    EXPECT_EQ(got[i].removed, want[i].removed) << label << " delta " << i;
  }
}

// The engine-options mirror of QueryChannel's spec conversion; a remote
// stream matching LocalReference under these options pins the whole
// spec → engine plumbing (method byte, hole policy, filler-lookup flags).
stream::ContinuousQueryOptions RefOptions(const RemoteQuerySpec& spec) {
  stream::ContinuousQueryOptions o;
  o.method = static_cast<lang::ExecMethod>(spec.method);
  o.hole_policy = static_cast<xq::HolePolicy>(spec.hole_policy);
  o.tick_policy = static_cast<stream::TickPolicy>(spec.tick_policy);
  o.dedup = (spec.flags & kQueryFlagNoDedup) == 0;
  o.track_removals = (spec.flags & kQueryFlagTrackRemovals) != 0;
  if ((spec.flags & kQueryFlagPaperFaithful) != 0) o.linear_get_fillers = true;
  if ((spec.flags & kQueryFlagIndexedFillers) != 0) {
    o.linear_get_fillers = false;
  }
  return o;
}

// Replays `frags` through a local ContinuousQueryEngine exactly the way
// the channel does — register after `register_at` fragments, then one
// clock-advance + tick per fragment — and records the delta stream.
std::vector<DeltaRec> LocalReference(const std::string& query,
                                     const stream::ContinuousQueryOptions& opts,
                                     const std::vector<frag::Fragment>& frags,
                                     size_t register_at = 0) {
  stream::StreamHub hub;
  stream::SimClock clock;
  auto store_r = hub.AddLocalStream("pkts", MustParseTs(kPacketTs));
  EXPECT_TRUE(store_r.ok());
  if (!store_r.ok()) return {};
  frag::FragmentStore* store = store_r.value();
  stream::ContinuousQueryEngine engine(&hub, &clock);
  std::vector<DeltaRec> out;
  bool registered = false;
  auto do_register = [&] {
    auto id = engine.RegisterDelta(
        query,
        [&](const xq::Sequence& added, const std::vector<std::string>& removed,
            DateTime at) {
          DeltaRec d;
          d.at = at.seconds();
          for (const auto& item : added) {
            d.added.push_back(stream::SerializeResultItem(item));
          }
          d.removed = removed;
          out.push_back(std::move(d));
        },
        opts);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    registered = true;
  };
  for (size_t i = 0; i < frags.size(); ++i) {
    if (!registered && i >= register_at) do_register();
    hub.OnFragment("pkts", frags[i]);
    clock.AdvanceTo(store->max_valid_time());
    EXPECT_TRUE(engine.Tick().ok());
  }
  if (!registered) do_register();
  return out;
}

// Decodes one encoded v2 RESULT frame into (frame seq, DeltaRec).
std::optional<std::pair<int64_t, DeltaRec>> DecodeResultFrame(
    const std::string& bytes) {
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  auto next = reader.Next();
  EXPECT_TRUE(next.ok()) << next.status().ToString();
  if (!next.ok() || !next.value().has_value()) return std::nullopt;
  const Frame& frame = *next.value();
  EXPECT_EQ(frame.type, FrameType::kResult);
  auto delta = DecodeResultDelta(frame.payload);
  EXPECT_TRUE(delta.ok()) << delta.status().ToString();
  if (!delta.ok()) return std::nullopt;
  DeltaRec rec;
  rec.at = delta.value().eval_time_s;
  rec.added = delta.value().added;
  rec.removed = delta.value().removed;
  return std::make_pair(static_cast<int64_t>(frame.seq), rec);
}

std::vector<DeltaRec> RecsOfFrames(const std::vector<std::string>& frames) {
  std::vector<DeltaRec> out;
  for (size_t i = 0; i < frames.size(); ++i) {
    auto decoded = DecodeResultFrame(frames[i]);
    EXPECT_TRUE(decoded.has_value());
    if (!decoded.has_value()) continue;
    EXPECT_EQ(decoded->first, static_cast<int64_t>(out.size()))
        << "result seq not contiguous from 0";
    out.push_back(std::move(decoded->second));
  }
  return out;
}

// Filters one token's results out of a DrainResults() accumulation and
// checks the per-query seq numbering is gapless from `first_seq`.
std::vector<DeltaRec> RecsOfToken(const std::vector<RemoteQueryResult>& all,
                                  uint32_t token, int64_t first_seq = 0) {
  std::vector<DeltaRec> out;
  int64_t expect_seq = first_seq;
  for (const auto& r : all) {
    if (r.token != token) continue;
    EXPECT_EQ(r.seq, expect_seq) << "result seq gap for token " << token;
    ++expect_seq;
    DeltaRec rec;
    rec.at = r.delta.eval_time_s;
    rec.added = r.delta.added;
    rec.removed = r.delta.removed;
    out.push_back(std::move(rec));
  }
  return out;
}

// ---- Protocol v3 codec ------------------------------------------------------

TEST(QueryCodecTest, QueryRoundTrips) {
  RemoteQuerySpec spec;
  spec.token = 0xfeedu;
  spec.method = 1;
  spec.hole_policy = 2;
  spec.tick_policy = 1;
  spec.flags = kQueryFlagPaperFaithful | kQueryFlagTrackRemovals;
  spec.last_result_seq = 123456789;
  spec.text = kIdQuery;
  auto back = DecodeQuery(EncodeQuery(spec));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().token, spec.token);
  EXPECT_EQ(back.value().method, spec.method);
  EXPECT_EQ(back.value().hole_policy, spec.hole_policy);
  EXPECT_EQ(back.value().tick_policy, spec.tick_policy);
  EXPECT_EQ(back.value().flags, spec.flags);
  EXPECT_EQ(back.value().last_result_seq, spec.last_result_seq);
  EXPECT_EQ(back.value().text, spec.text);

  // Fresh registration default and empty text both survive the wire; the
  // spec-level validation (empty text is invalid) is the channel's job.
  RemoteQuerySpec bare;
  auto bare_back = DecodeQuery(EncodeQuery(bare));
  ASSERT_TRUE(bare_back.ok());
  EXPECT_EQ(bare_back.value().last_result_seq, -1);
  EXPECT_TRUE(bare_back.value().text.empty());

  EXPECT_FALSE(DecodeQuery("short").ok());
}

TEST(QueryCodecTest, UnqueryAndStatusRoundTrip) {
  auto id = DecodeUnquery(EncodeUnquery(0x1122334455667788ull));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 0x1122334455667788ull);
  EXPECT_FALSE(DecodeUnquery("xx").ok());

  QueryStatus st;
  st.token = 7;
  st.query_id = 42;
  st.code = kQueryStatusRejected;
  st.message = "query limit reached (64 registered)";
  auto back = DecodeQueryStatus(EncodeQueryStatus(st));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().token, st.token);
  EXPECT_EQ(back.value().query_id, st.query_id);
  EXPECT_EQ(back.value().code, st.code);
  EXPECT_EQ(back.value().message, st.message);

  QueryStatus bare;
  auto bare_back = DecodeQueryStatus(EncodeQueryStatus(bare));
  ASSERT_TRUE(bare_back.ok());
  EXPECT_TRUE(bare_back.value().message.empty());
  EXPECT_FALSE(DecodeQueryStatus("nope").ok());
}

TEST(QueryCodecTest, ResultDeltaRoundTrips) {
  ResultDelta d;
  d.query_id = 9;
  d.eval_time_s = 1234567;
  d.added = {"<packet><id>1</id></packet>", "", std::string(4096, 'z')};
  d.removed = {"gone", ""};
  auto wire = EncodeResultDelta(d);
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  auto back = DecodeResultDelta(wire.value());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().query_id, d.query_id);
  EXPECT_EQ(back.value().eval_time_s, d.eval_time_s);
  EXPECT_EQ(back.value().added, d.added);
  EXPECT_EQ(back.value().removed, d.removed);

  ResultDelta empty;
  empty.query_id = 1;
  auto empty_wire = EncodeResultDelta(empty);
  ASSERT_TRUE(empty_wire.ok());
  auto empty_back = DecodeResultDelta(empty_wire.value());
  ASSERT_TRUE(empty_back.ok());
  EXPECT_TRUE(empty_back.value().added.empty());
  EXPECT_TRUE(empty_back.value().removed.empty());
}

TEST(QueryCodecTest, ResultDeltaRejectsForgedCountsAndTruncation) {
  ResultDelta d;
  d.query_id = 1;
  d.added = {"aaaa", "bbbb"};
  auto wire = EncodeResultDelta(d);
  ASSERT_TRUE(wire.ok());
  std::string bytes = wire.value();

  // Truncation anywhere in the item region must fail cleanly.
  for (size_t cut = 1; cut < 12; ++cut) {
    EXPECT_FALSE(
        DecodeResultDelta(std::string_view(bytes).substr(0, bytes.size() - cut))
            .ok())
        << "cut " << cut;
  }

  // A forged added-count (the classic length-field attack) must be
  // detected by the items-vs-bytes fast check, not allocate-and-crash.
  std::string forged = bytes;
  uint32_t huge = 0x7fffffff;
  std::memcpy(&forged[16], &huge, sizeof(huge));  // added_count slot
  EXPECT_FALSE(DecodeResultDelta(forged).ok());
}

// ---- QueryChannel: validation, sharing, capacity ----------------------------

TEST(QueryChannelTest, ValidatesSpecs) {
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());

  auto reject = [&](const RemoteQuerySpec& spec) {
    bool by_limit = true;
    auto r = channel.Register(spec, &by_limit);
    EXPECT_FALSE(r.ok());
    // Invalid specs must NOT read as capacity refusals: the server
    // answers kQueryStatusInvalid for these, kQueryStatusRejected only
    // for admission limits.
    EXPECT_FALSE(by_limit);
  };
  reject(Spec(""));                      // empty XCQL
  reject(Spec(kIdQuery, 3));             // method byte out of range
  reject(Spec(kIdQuery, 2, 3));          // hole policy out of range
  reject(Spec(kIdQuery, 2, 0, 3));       // tick policy out of range
  reject(Spec(kIdQuery, 2, 0, 0, 0x40));  // unknown flag bit
  reject(Spec(kIdQuery, 2, 0, 0,
              kQueryFlagPaperFaithful | kQueryFlagIndexedFillers));
  EXPECT_EQ(channel.stats().active_queries, 0);
}

TEST(QueryChannelTest, CanonicalKeySharingEvaluatesOnce) {
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());

  // Same text + options from two "connections" (different tokens and
  // resume positions): one engine query, one result log.
  RemoteQuerySpec a = Spec(kIdQuery);
  a.token = 1;
  RemoteQuerySpec b = Spec(kIdQuery);
  b.token = 2;
  b.last_result_seq = 5;  // resume position is not part of the identity
  auto id_a = channel.Register(a);
  auto id_b = channel.Register(b);
  ASSERT_TRUE(id_a.ok()) << id_a.status().ToString();
  ASSERT_TRUE(id_b.ok()) << id_b.status().ToString();
  EXPECT_EQ(id_a.value(), id_b.value());
  EXPECT_EQ(channel.stats().active_queries, 1);

  // Any option change is a different query.
  auto id_c = channel.Register(Spec(kIdQuery, 0));  // method kCaQ
  ASSERT_TRUE(id_c.ok());
  EXPECT_NE(id_c.value(), id_a.value());
  auto id_d = channel.Register(Spec(kIdQuery, 2, 0, 0, kQueryFlagNoDedup));
  ASSERT_TRUE(id_d.ok());
  EXPECT_NE(id_d.value(), id_a.value());
  EXPECT_NE(id_d.value(), id_c.value());
  EXPECT_EQ(channel.stats().active_queries, 3);

  channel.OnFragment(MakeRoot({1, 2}));
  channel.OnFragment(MakePacket(1, 1000, 1));
  channel.OnFragment(MakePacket(2, 1010, 2));
  // The shared query evaluated once per tick: exactly one result log of
  // two deltas ("1" then "2"), not one per registration.
  EXPECT_EQ(channel.result_log_size(id_a.value()), 2);
  EXPECT_EQ(channel.stats().fragments_fed, 3);
}

TEST(QueryChannelTest, CapacityRejectsWithLimitFlagAndUnqueryFrees) {
  QueryChannelOptions opts;
  opts.max_queries = 1;
  QueryChannel channel("pkts", MustParseTs(kPacketTs), opts);
  ASSERT_TRUE(channel.Open().ok());

  auto id = channel.Register(Spec(kIdQuery));
  ASSERT_TRUE(id.ok());

  // A duplicate of the registered query shares the slot (no capacity
  // consumed), but a distinct query must be refused with the limit flag.
  ASSERT_TRUE(channel.Register(Spec(kIdQuery)).ok());
  bool by_limit = false;
  auto refused = channel.Register(Spec(kIdQuery, 0), &by_limit);
  EXPECT_FALSE(refused.ok());
  EXPECT_TRUE(by_limit);

  ASSERT_TRUE(channel.Unregister(id.value()).ok());
  EXPECT_EQ(channel.stats().active_queries, 0);
  auto now_fits = channel.Register(Spec(kIdQuery, 0), &by_limit);
  EXPECT_TRUE(now_fits.ok()) << now_fits.status().ToString();
}

TEST(QueryChannelTest, SubscribeReplaysAtomicallyAndDeliversLive) {
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  auto id = channel.Register(Spec(kIdQuery));
  ASSERT_TRUE(id.ok());

  channel.OnFragment(MakeRoot({1, 2}));
  channel.OnFragment(MakePacket(1, 1000, 1));
  channel.OnFragment(MakePacket(2, 1010, 2));
  ASSERT_EQ(channel.result_log_size(id.value()), 2);

  // Late joiner from scratch: full replay, then live frames.
  int sink_a = 0, sink_b = 0;
  std::vector<std::string> got_a, got_b;
  ASSERT_TRUE(channel
                  .Subscribe(id.value(), -1, &sink_a,
                             [&](const std::shared_ptr<const std::string>& b) { got_a.push_back(*b); })
                  .ok());
  ASSERT_EQ(got_a.size(), 2u);
  // Resuming joiner: only what it does not already hold.
  ASSERT_TRUE(channel
                  .Subscribe(id.value(), 0, &sink_b,
                             [&](const std::shared_ptr<const std::string>& b) { got_b.push_back(*b); })
                  .ok());
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[1], got_b[0]);

  channel.OnFragment(MakePacket(1, 1020, 3));
  EXPECT_EQ(got_a.size(), 3u);
  EXPECT_EQ(got_b.size(), 2u);
  EXPECT_EQ(got_a[2], got_b[1]);
  EXPECT_EQ(channel.stats().active_sinks, 2);

  // Replay + live concatenation is exactly the log, in order.
  auto recs = RecsOfFrames(got_a);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].added, std::vector<std::string>{"1"});
  EXPECT_EQ(recs[1].added, std::vector<std::string>{"2"});
  EXPECT_EQ(recs[2].added, std::vector<std::string>{"3"});

  // Detached sinks stop receiving; unknown ids are clean errors.
  channel.Unsubscribe(id.value(), &sink_a);
  channel.DropSink(&sink_b);
  channel.OnFragment(MakePacket(2, 1030, 4));
  EXPECT_EQ(got_a.size(), 3u);
  EXPECT_EQ(got_b.size(), 2u);
  EXPECT_EQ(channel.stats().active_sinks, 0);
  EXPECT_FALSE(
      channel
          .Subscribe(999, -1, &sink_a,
                     [](const std::shared_ptr<const std::string>&) {})
          .ok());
}

TEST(QueryChannelTest, UnregisterKeepsQueryWhileSinksRemain) {
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  auto id = channel.Register(Spec(kIdQuery));
  ASSERT_TRUE(id.ok());
  int sink = 0;
  std::vector<std::string> got;
  ASSERT_TRUE(channel
                  .Subscribe(id.value(), -1, &sink,
                             [&](const std::shared_ptr<const std::string>& b) { got.push_back(*b); })
                  .ok());

  // UNQUERY with a sink still attached: the registration survives (the
  // other subscriber keeps its stream).
  ASSERT_TRUE(channel.Unregister(id.value()).ok());
  EXPECT_EQ(channel.stats().active_queries, 1);
  channel.OnFragment(MakeRoot({1}));
  channel.OnFragment(MakePacket(1, 1000, 1));
  EXPECT_EQ(got.size(), 1u);

  channel.DropSink(&sink);
  ASSERT_TRUE(channel.Unregister(id.value()).ok());
  EXPECT_EQ(channel.stats().active_queries, 0);
  EXPECT_FALSE(channel.Unregister(id.value()).ok());
}

// ---- Spec plumbing: hole policy, filler-lookup flags, methods ---------------

TEST(QueryChannelTest, HolePolicyPlumbsThroughTheSpec) {
  // The interval projection resolves holes inside each packet subtree,
  // so a packet whose <id> child is a dangling hole surfaces to the
  // policy: an omit query answers with what it has, a fail twin stays
  // silent until the missing filler arrives.
  const std::string query =
      "for $p in stream(\"pkts\")//packet?[start,now] return string($p/id)";
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  RemoteQuerySpec omit_spec =
      Spec(query, 2, static_cast<uint8_t>(xq::HolePolicy::kOmit));
  RemoteQuerySpec fail_spec =
      Spec(query, 2, static_cast<uint8_t>(xq::HolePolicy::kFail));
  auto omit_id = channel.Register(omit_spec);
  auto fail_id = channel.Register(fail_spec);
  ASSERT_TRUE(omit_id.ok()) << omit_id.status().ToString();
  ASSERT_TRUE(fail_id.ok()) << fail_id.status().ToString();
  ASSERT_NE(omit_id.value(), fail_id.value());

  std::vector<std::string> omit_frames, fail_frames;
  int h1 = 0, h2 = 0;
  ASSERT_TRUE(
      channel
          .Subscribe(omit_id.value(), -1, &h1,
                     [&](const std::shared_ptr<const std::string>& b) { omit_frames.push_back(*b); })
          .ok());
  ASSERT_TRUE(
      channel
          .Subscribe(fail_id.value(), -1, &h2,
                     [&](const std::shared_ptr<const std::string>& b) { fail_frames.push_back(*b); })
          .ok());

  // Packet 2's <id> is a hole to filler 99, which is withheld.
  frag::Fragment torn;
  torn.id = 2;
  torn.tsid = 2;
  torn.valid_time = DateTime(1010);
  torn.content = Node::Element("packet");
  torn.content->AddChild(frag::MakeHole(99, 3));
  std::vector<frag::Fragment> frags = {MakeRoot({1, 2}),
                                       MakePacket(1, 1000, 1), torn};
  for (const auto& f : frags) channel.OnFragment(f);
  // While the filler is missing: omit keeps answering (packet 2's id
  // projects to nothing), fail recorded an error for the torn tick.
  auto omit_recs = RecsOfFrames(omit_frames);
  auto fail_recs = RecsOfFrames(fail_frames);
  ASSERT_GE(omit_recs.size(), 1u);
  EXPECT_EQ(omit_recs[0].added, std::vector<std::string>{"1"});
  ASSERT_EQ(fail_recs.size(), 1u);
  EXPECT_EQ(fail_recs[0].added, std::vector<std::string>{"1"});
  const size_t fail_before = fail_recs.size();

  // The missing filler arrives; both policies converge on the full id.
  frag::Fragment late;
  late.id = 99;
  late.tsid = 3;
  late.valid_time = DateTime(1020);
  late.content = Node::Element("id");
  late.content->AddChild(Node::Text("2"));
  frags.push_back(late);
  channel.OnFragment(frags.back());
  omit_recs = RecsOfFrames(omit_frames);
  fail_recs = RecsOfFrames(fail_frames);
  ASSERT_GT(fail_recs.size(), fail_before);
  EXPECT_EQ(fail_recs.back().added, std::vector<std::string>{"2"});
  EXPECT_EQ(omit_recs.back().added, std::vector<std::string>{"2"});
  // The two policies observably diverged on the torn stretch.
  EXPECT_NE(omit_recs.size(), fail_recs.size());

  // Both remote streams are byte-for-byte what a local engine under the
  // same options produces — the spec → engine mapping, pinned.
  ExpectRecsEqual(omit_recs, LocalReference(query, RefOptions(omit_spec), frags),
                  "omit vs local");
  ExpectRecsEqual(fail_recs, LocalReference(query, RefOptions(fail_spec), frags),
                  "fail vs local");
}

TEST(QueryChannelTest, FillerLookupFlagsAndMethodsAgreeOnResults) {
  // --paper-faithful / --holes plumbing: each filler-lookup pin and each
  // ExecMethod is a distinct registration (distinct cost model), but all
  // of them must emit the identical delta stream.
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  std::vector<RemoteQuerySpec> variants = {
      Spec(kIdQuery, 2),                                    // baseline
      Spec(kIdQuery, 2, 0, 0, kQueryFlagPaperFaithful),     // linear scans
      Spec(kIdQuery, 2, 0, 0, kQueryFlagIndexedFillers),    // indexed
      Spec(kIdQuery, 0),                                    // kCaQ
      Spec(kIdQuery, 1),                                    // kQaC
  };
  std::vector<uint64_t> ids;
  std::vector<std::vector<std::string>> frames(variants.size());
  std::vector<int> handles(variants.size());
  for (size_t i = 0; i < variants.size(); ++i) {
    auto id = channel.Register(variants[i]);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    for (uint64_t seen : ids) EXPECT_NE(id.value(), seen);
    ids.push_back(id.value());
    auto* sink = &frames[i];
    ASSERT_TRUE(channel
                    .Subscribe(id.value(), -1, &handles[i],
                               [sink](const std::shared_ptr<const std::string>&
                                          b) { sink->push_back(*b); })
                    .ok());
  }
  EXPECT_EQ(channel.stats().active_queries,
            static_cast<int>(variants.size()));

  std::vector<frag::Fragment> frags = {MakeRoot({1, 2}),
                                       MakePacket(1, 1000, 1),
                                       MakePacket(2, 1010, 2),
                                       MakePacket(1, 1020, 3)};
  for (const auto& f : frags) channel.OnFragment(f);

  auto baseline = RecsOfFrames(frames[0]);
  ASSERT_EQ(baseline.size(), 3u);
  for (size_t i = 1; i < variants.size(); ++i) {
    ExpectRecsEqual(RecsOfFrames(frames[i]), baseline,
                    "variant " + std::to_string(i));
  }
  ExpectRecsEqual(baseline,
                  LocalReference(kIdQuery, RefOptions(variants[0]), frags),
                  "baseline vs local");
}

// ---- Durable registry -------------------------------------------------------

class QueryRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xcql_query_reg_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    WalHooks::Install(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  QueryChannelOptions DurableOpts() const {
    QueryChannelOptions opts;
    opts.registry_path = dir_ + "/queries.reg";
    return opts;
  }
  std::string dir_;
};

TEST_F(QueryRegistryTest, RecoveryRebuildsResultLogsByteIdentical) {
  const std::string late_query =
      "for $p in stream(\"pkts\")//packet where $p/id > 2 "
      "return string($p/id)";
  std::vector<frag::Fragment> frags = {
      MakeRoot({1, 2}),        MakePacket(1, 1000, 1), MakePacket(2, 1010, 2),
      MakePacket(1, 1020, 3),  MakePacket(2, 1030, 4), MakePacket(1, 1040, 5),
  };
  uint64_t id_a = 0, id_b = 0;
  std::vector<std::string> first_a, first_b;

  // First life: one query from the very start, one registered mid-stream
  // (after three fragments) — its registration position must ride in the
  // registry record.
  {
    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok());
    auto a = channel.Register(Spec(kIdQuery));
    ASSERT_TRUE(a.ok());
    id_a = a.value();
    for (size_t i = 0; i < 3; ++i) channel.OnFragment(frags[i]);
    auto b = channel.Register(Spec(late_query));
    ASSERT_TRUE(b.ok());
    id_b = b.value();
    for (size_t i = 3; i < frags.size(); ++i) channel.OnFragment(frags[i]);

    int ha = 0, hb = 0;
    ASSERT_TRUE(channel
                    .Subscribe(id_a, -1, &ha,
                               [&](const std::shared_ptr<const std::string>& f) {
                                 first_a.push_back(*f);
                               })
                    .ok());
    ASSERT_TRUE(channel
                    .Subscribe(id_b, -1, &hb,
                               [&](const std::shared_ptr<const std::string>& f) {
                                 first_b.push_back(*f);
                               })
                    .ok());
    ASSERT_EQ(first_a.size(), 5u);  // "1".."5", one delta each
    ASSERT_EQ(first_b.size(), 3u);  // "3","4","5" seen after registration
  }

  // Second life: Open() replays the registry; the queries wait as
  // pending until the feed reaches their positions, and the regenerated
  // result logs — frame bytes, seqs included — match the first life.
  {
    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok());
    auto stats = channel.stats();
    EXPECT_EQ(stats.recovered_queries, 2);
    // The position-0 query activates right at Open(); the mid-stream one
    // waits as pending until the feed reaches its position.
    EXPECT_EQ(stats.active_queries, 1);
    EXPECT_EQ(stats.pending_queries, 1);
    for (const auto& f : frags) channel.OnFragment(f);
    EXPECT_EQ(channel.stats().active_queries, 2);
    EXPECT_EQ(channel.stats().pending_queries, 0);

    std::vector<std::string> second_a, second_b;
    int ha = 0, hb = 0;
    ASSERT_TRUE(channel
                    .Subscribe(id_a, -1, &ha,
                               [&](const std::shared_ptr<const std::string>& f) {
                                 second_a.push_back(*f);
                               })
                    .ok());
    ASSERT_TRUE(channel
                    .Subscribe(id_b, -1, &hb,
                               [&](const std::shared_ptr<const std::string>& f) {
                                 second_b.push_back(*f);
                               })
                    .ok());
    EXPECT_EQ(second_a, first_a);
    EXPECT_EQ(second_b, first_b);

    // Re-registering the same query while it is still pending re-admits
    // it under its stable id rather than minting a fresh one.
    QueryChannel shorter("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(shorter.Open().ok());
    auto re = shorter.Register(Spec(late_query));
    ASSERT_TRUE(re.ok());
    EXPECT_EQ(re.value(), id_b);
  }
}

TEST_F(QueryRegistryTest, UnqueryTombstoneSurvivesRestart) {
  uint64_t id = 0;
  {
    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok());
    auto a = channel.Register(Spec(kIdQuery));
    ASSERT_TRUE(a.ok());
    id = a.value();
    auto b = channel.Register(Spec(kIdQuery, 0));
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(channel.Unregister(id).ok());
  }
  QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
  ASSERT_TRUE(channel.Open().ok());
  // Only the un-tombstoned registration comes back (active immediately:
  // it registered at position 0).
  EXPECT_EQ(channel.stats().active_queries, 1);
  EXPECT_EQ(channel.stats().pending_queries, 0);
  channel.OnFragment(MakeRoot({1}));
  EXPECT_EQ(channel.stats().active_queries, 1);
  EXPECT_EQ(channel.result_log_size(id), 0);
}

TEST_F(QueryRegistryTest, TornTailIsTruncatedNotFatal) {
  {
    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok());
    ASSERT_TRUE(channel.Register(Spec(kIdQuery)).ok());
  }
  // A crash mid-append leaves a partial frame at the tail; recovery must
  // keep the intact prefix and truncate the garbage.
  {
    std::ofstream f(dir_ + "/queries.reg",
                    std::ios::binary | std::ios::app);
    f.write("XFRM\x02garbage", 11);
  }
  const auto torn_size = fs::file_size(dir_ + "/queries.reg");
  {
    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok());
    EXPECT_EQ(channel.stats().recovered_queries, 1);
    EXPECT_LT(fs::file_size(dir_ + "/queries.reg"), torn_size);
    // And the file is appendable again: a new registration persists.
    ASSERT_TRUE(channel.Register(Spec(kIdQuery, 0)).ok());
  }
  QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
  ASSERT_TRUE(channel.Open().ok());
  EXPECT_EQ(channel.stats().recovered_queries, 2);
}

// Kill-point crash test at the registry write boundary: a child process
// registers a query and dies exactly before/after the record write. The
// invariant is atomicity — before the write the registration must be
// wholly absent after recovery, after it wholly present.
TEST_F(QueryRegistryTest, CrashAtRegistryWriteBoundaryIsAtomic) {
  for (const char* point : {"queryreg:before_write", "queryreg:after_write"}) {
    const bool expect_recovered =
        std::strcmp(point, "queryreg:after_write") == 0;
    fs::remove(dir_ + "/queries.reg");

    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      WalHooks::Install([point](const char* at) {
        if (std::strcmp(at, point) == 0) ::_exit(43);
      });
      QueryChannelOptions opts;
      opts.registry_path = dir_ + "/queries.reg";
      QueryChannel channel("pkts", MustParseTs(kPacketTs), opts);
      if (!channel.Open().ok()) ::_exit(90);
      channel.Register(Spec(kIdQuery));
      ::_exit(91);  // the kill point never fired
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << point;
    ASSERT_EQ(WEXITSTATUS(status), 43) << point;

    QueryChannel channel("pkts", MustParseTs(kPacketTs), DurableOpts());
    ASSERT_TRUE(channel.Open().ok()) << point;
    EXPECT_EQ(channel.stats().recovered_queries, expect_recovered ? 1 : 0)
        << point;
    // Either way the registry is healthy: a fresh registration lands and
    // survives the next restart.
    ASSERT_TRUE(channel.Register(Spec(kIdQuery, 0)).ok()) << point;
  }
}

// ---- Networked end-to-end ---------------------------------------------------

TEST(RemoteQueryTest, EndToEndMatchesLocalReference) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  RemoteQuerySpec spec = Spec(kIdQuery);
  auto token = sub.AddRemoteQuery(spec);
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(5s));
  EXPECT_TRUE(sub.server_queries());
  ASSERT_TRUE(sub.WaitQueryActive(token.value(), 5s));

  std::vector<frag::Fragment> frags = {MakeRoot({1, 2}),
                                       MakePacket(1, 1000, 1),
                                       MakePacket(2, 1010, 2),
                                       MakePacket(1, 1020, 3)};
  for (const auto& f : frags) ASSERT_TRUE(source.Publish(f).ok());
  ASSERT_TRUE(sub.WaitForResultSeq(token.value(), 2, 10s));

  std::vector<RemoteQueryResult> results;
  sub.DrainResults(&results);
  ExpectRecsEqual(RecsOfToken(results, token.value()),
                  LocalReference(kIdQuery, RefOptions(spec), frags),
                  "remote vs local");

  auto state = sub.query_state(token.value());
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state.value().active);
  EXPECT_EQ(state.value().last_result_seq, 2);
  EXPECT_EQ(channel.stats().fragments_fed, 4);
  EXPECT_GE(server.metrics().queries_registered, 1);
  EXPECT_GE(server.metrics().result_frames_out, 3);

  // Fragments and results share the session: the data plane flowed too.
  ASSERT_TRUE(sub.WaitForSeq(3, 5s));

  // UNQUERY: the last sink detaching deregisters server-side.
  ASSERT_TRUE(sub.RemoveRemoteQuery(token.value()).ok());
  EXPECT_TRUE(
      PollFor([&] { return channel.stats().active_queries == 0; }, 5s));

  sub.Stop();
  server.Stop();
}

TEST(RemoteQueryTest, UnnegotiatedChannelNeverActivatesQueries) {
  // A server without a channel never echoes kHelloFlagQueryChannel; the
  // client holds its QUERY (no v3 frames flow unnegotiated) and the data
  // plane is unaffected.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  auto token = sub.AddRemoteQuery(Spec(kIdQuery));
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(5s));
  EXPECT_FALSE(sub.server_queries());

  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 1)).ok());
  ASSERT_TRUE(sub.WaitForSeq(0, 5s));
  EXPECT_FALSE(sub.WaitQueryActive(token.value(), 100ms));
  auto state = sub.query_state(token.value());
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state.value().active);
  EXPECT_EQ(state.value().last_code, 0u);  // never answered, never sent
  EXPECT_EQ(server.metrics().bad_control_frames, 0);
  sub.Stop();
  server.Stop();
}

// Waits here are generous (20s): the test chains three subscribers'
// handshake + query round-trips, and on an oversubscribed CI box a lost
// scheduling race recovers via the liveness-watchdog reconnect, which
// alone can take several seconds.
TEST(RemoteQueryTest, AdmissionLimitsAnswerWithCleanRejections) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  QueryChannelOptions copts;
  copts.max_queries = 2;
  QueryChannel channel("pkts", MustParseTs(kPacketTs), copts);
  ASSERT_TRUE(channel.Open().ok());
  FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  sopts.max_queries_per_conn = 1;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(20s));

  // First query is admitted; the second trips the per-connection cap.
  auto tok1 = sub.AddRemoteQuery(Spec(kIdQuery));
  ASSERT_TRUE(tok1.ok());
  const bool tok1_active = sub.WaitQueryActive(tok1.value(), 20s);
  if (!tok1_active) {
    auto st = sub.query_state(tok1.value());
    auto sm = server.metrics();
    ASSERT_TRUE(tok1_active)
        << "tok1 state: ok=" << st.ok()
        << " last_code=" << (st.ok() ? st.value().last_code : -1)
        << " msg=" << (st.ok() ? st.value().last_message : "")
        << " channel active=" << channel.stats().active_queries
        << " srv registered=" << sm.queries_registered
        << " rejected=" << sm.queries_rejected
        << " bad_ctrl=" << sm.bad_control_frames
        << " sub reconnects=" << sub.metrics().reconnects
        << " frames_out=" << sub.metrics().frames_out;
  }
  auto tok2 = sub.AddRemoteQuery(Spec(kIdQuery, 0));
  ASSERT_TRUE(tok2.ok());
  ASSERT_TRUE(PollFor(
      [&] {
        auto s = sub.query_state(tok2.value());
        return s.ok() && s.value().last_code != 0;
      },
      20s));
  auto rejected = sub.query_state(tok2.value());
  ASSERT_TRUE(rejected.ok());
  EXPECT_FALSE(rejected.value().active);
  EXPECT_EQ(rejected.value().last_code, kQueryStatusRejected);
  EXPECT_NE(rejected.value().last_message.find("connection query limit"),
            std::string::npos)
      << rejected.value().last_message;

  // A second connection still has per-conn room, but its second distinct
  // query trips the channel-wide cap — with the capacity code, not the
  // invalid-spec one.
  FragmentSubscriber sub2(opts);
  ASSERT_TRUE(sub2.Start().ok());
  ASSERT_TRUE(sub2.WaitConnected(20s));
  auto tok3 = sub2.AddRemoteQuery(Spec(kIdQuery, 0));
  ASSERT_TRUE(tok3.ok());
  const bool tok3_active = sub2.WaitQueryActive(tok3.value(), 20s);
  if (!tok3_active) {
    auto st = sub2.query_state(tok3.value());
    ASSERT_TRUE(tok3_active)
        << "tok3 state: ok=" << st.ok()
        << " last_code=" << (st.ok() ? st.value().last_code : -1)
        << " msg=" << (st.ok() ? st.value().last_message : "")
        << " channel active_queries=" << channel.stats().active_queries;
  }
  EXPECT_EQ(channel.stats().active_queries, 2);

  FragmentSubscriber sub3(opts);
  ASSERT_TRUE(sub3.Start().ok());
  ASSERT_TRUE(sub3.WaitConnected(20s));
  auto tok4 = sub3.AddRemoteQuery(Spec(kIdQuery, 1));
  ASSERT_TRUE(tok4.ok());
  ASSERT_TRUE(PollFor(
      [&] {
        auto s = sub3.query_state(tok4.value());
        return s.ok() && s.value().last_code != 0;
      },
      20s));
  auto full = sub3.query_state(tok4.value());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().last_code, kQueryStatusRejected);
  EXPECT_NE(full.value().last_message.find("query limit reached"),
            std::string::npos)
      << full.value().last_message;

  // An invalid spec is the other error class.
  auto tok5 = sub3.AddRemoteQuery(
      Spec(kIdQuery, 2, 0, 0,
           kQueryFlagPaperFaithful | kQueryFlagIndexedFillers));
  ASSERT_TRUE(tok5.ok());
  ASSERT_TRUE(PollFor(
      [&] {
        auto s = sub3.query_state(tok5.value());
        return s.ok() && s.value().last_code != 0;
      },
      20s));
  EXPECT_EQ(sub3.query_state(tok5.value()).value().last_code,
            kQueryStatusInvalid);

  // Rejections are control-plane answers, not cut connections: all three
  // sessions still deliver fragments.
  EXPECT_GE(server.metrics().queries_rejected, 3);
  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 1)).ok());
  EXPECT_TRUE(sub.WaitForSeq(0, 20s));
  EXPECT_TRUE(sub2.WaitForSeq(0, 20s));
  EXPECT_TRUE(sub3.WaitForSeq(0, 20s));

  sub3.Stop();
  sub2.Stop();
  sub.Stop();
  server.Stop();
}

TEST(RemoteQueryTest, FanOutEvaluatesOnceAndAllSubscribersAgree) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kSubs = 4;
  RemoteQuerySpec spec = Spec(kIdQuery);
  std::vector<std::unique_ptr<FragmentSubscriber>> subs;
  std::vector<uint32_t> tokens;
  for (int i = 0; i < kSubs; ++i) {
    FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    subs.push_back(std::make_unique<FragmentSubscriber>(opts));
    auto token = subs.back()->AddRemoteQuery(spec);
    ASSERT_TRUE(token.ok());
    tokens.push_back(token.value());
    ASSERT_TRUE(subs.back()->Start().ok());
  }
  for (int i = 0; i < kSubs; ++i) {
    ASSERT_TRUE(subs[i]->WaitConnected(5s));
    ASSERT_TRUE(subs[i]->WaitQueryActive(tokens[i], 5s));
  }
  // N registrations of the same query share one engine entry. (The ack
  // travels before the sink attaches, so poll for the last attachment.)
  EXPECT_EQ(channel.stats().active_queries, 1);
  EXPECT_TRUE(
      PollFor([&] { return channel.stats().active_sinks == kSubs; }, 5s));

  std::vector<frag::Fragment> frags = {MakeRoot({1, 2, 3})};
  int64_t t = 1000;
  for (int u = 1; u <= 20; ++u) {
    frags.push_back(MakePacket(1 + u % 3, t += 7, u));
  }
  for (const auto& f : frags) ASSERT_TRUE(source.Publish(f).ok());

  const auto want =
      LocalReference(kIdQuery, RefOptions(spec), frags);
  const int64_t last = static_cast<int64_t>(want.size()) - 1;
  ASSERT_GE(last, 0);
  for (int i = 0; i < kSubs; ++i) {
    ASSERT_TRUE(subs[i]->WaitForResultSeq(tokens[i], last, 10s))
        << "subscriber " << i;
    std::vector<RemoteQueryResult> results;
    subs[i]->DrainResults(&results);
    ExpectRecsEqual(RecsOfToken(results, tokens[i]), want,
                    "subscriber " + std::to_string(i));
  }
  // Evaluate once, fan out N: the channel logged |want| frames total and
  // the server sent one copy per subscriber.
  EXPECT_EQ(channel.stats().result_frames, static_cast<int64_t>(want.size()));
  EXPECT_GE(server.metrics().result_frames_out,
            static_cast<int64_t>(want.size()) * kSubs);

  for (auto& s : subs) s->Stop();
  server.Stop();
}

TEST(RemoteQueryTest, KilledSubscriberResumesResultStreamExactly) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  opts.backoff_initial = 10ms;
  opts.backoff_max = 100ms;
  FragmentSubscriber sub(opts);
  RemoteQuerySpec spec = Spec(kIdQuery);
  auto token = sub.AddRemoteQuery(spec);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(5s));
  ASSERT_TRUE(sub.WaitQueryActive(token.value(), 5s));

  std::vector<frag::Fragment> frags = {MakeRoot({1, 2})};
  int64_t t = 1000;
  for (int u = 1; u <= 10; ++u) {
    frags.push_back(MakePacket(1 + u % 2, t += 7, u));
  }
  for (const auto& f : frags) ASSERT_TRUE(source.Publish(f).ok());
  ASSERT_TRUE(sub.WaitForResultSeq(token.value(), 9, 10s));
  std::vector<RemoteQueryResult> accumulated;
  sub.DrainResults(&accumulated);

  // Sever the connection mid-stream; publishes continue while it is
  // down. The reconnect resends QUERY with the last contiguous result
  // seq, so the resumed stream continues without a gap or a repeat.
  sub.KillConnection();
  for (int u = 11; u <= 20; ++u) {
    frags.push_back(MakePacket(1 + u % 2, t += 7, u));
    ASSERT_TRUE(source.Publish(frags.back()).ok());
  }
  ASSERT_TRUE(sub.WaitForResultSeq(token.value(), 19, 20s));
  sub.DrainResults(&accumulated);

  ExpectRecsEqual(RecsOfToken(accumulated, token.value()),
                  LocalReference(kIdQuery, RefOptions(spec), frags),
                  "resumed stream vs local");
  sub.Stop();
  server.Stop();
}

// ---- Server restart from WAL + registry -------------------------------------

TEST(RemoteQueryTest, ServerRestartRegeneratesAndResumesResultStreams) {
  char tmpl[] = "/tmp/xcql_query_restart_XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string dir = tmpl;

  // Pin a port up front so the one subscriber can ride across both
  // server lives (the listener sets SO_REUSEADDR).
  uint16_t port = 0;
  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    socklen_t len = sizeof(addr);
    ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
    port = ntohs(addr.sin_port);
    ::close(fd);
  }

  QueryChannelOptions copts;
  copts.registry_path = dir + "/queries.reg";

  FragmentSubscriberOptions opts;
  opts.port = port;
  opts.stream = "pkts";
  opts.backoff_initial = 10ms;
  opts.backoff_max = 100ms;
  FragmentSubscriber sub(opts);
  RemoteQuerySpec spec = Spec(kIdQuery);
  auto token = sub.AddRemoteQuery(spec);
  ASSERT_TRUE(token.ok());
  ASSERT_TRUE(sub.Start().ok());

  std::vector<frag::Fragment> frags = {MakeRoot({1, 2})};
  int64_t t = 1000;
  std::vector<RemoteQueryResult> accumulated;
  uint64_t epoch = 0;

  // First life: durable fragment log + durable query registry.
  {
    WalRecovery rec;
    auto wal = Wal::Open(dir + "/wal", "pkts", kPacketTs, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    QueryChannel channel("pkts", MustParseTs(kPacketTs), copts);
    ASSERT_TRUE(channel.Open().ok());
    FragmentServerOptions sopts;
    sopts.port = port;
    sopts.wal = wal.value().get();
    sopts.query_channel = &channel;
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(sub.WaitConnected(10s));
    ASSERT_TRUE(sub.WaitQueryActive(token.value(), 5s));

    for (int u = 1; u <= 6; ++u) {
      frags.push_back(MakePacket(1 + u % 2, t += 7, u));
    }
    for (const auto& f : frags) ASSERT_TRUE(source.Publish(f).ok());
    ASSERT_TRUE(sub.WaitForResultSeq(token.value(), 5, 10s));
    sub.DrainResults(&accumulated);
    epoch = sub.server_epoch();
    ASSERT_NE(epoch, 0u);
    server.Stop();
    ASSERT_TRUE(wal.value()->Close().ok());
  }

  // Second life: the WAL restores the fragment log, the registry
  // restores the query, and the seed replay regenerates its result log
  // before the subscriber reconnects. The in-flight subscriber resumes
  // mid-result-stream: no epoch reset, no repeats, no gaps.
  {
    WalRecovery rec;
    auto wal = Wal::Open(dir + "/wal", "pkts", kPacketTs, WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_EQ(rec.records.size(), 7u);
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    ASSERT_TRUE(RestoreStream(rec, &source).ok());
    QueryChannel channel("pkts", MustParseTs(kPacketTs), copts);
    ASSERT_TRUE(channel.Open().ok());
    EXPECT_EQ(channel.stats().recovered_queries, 1);
    FragmentServerOptions sopts;
    sopts.port = port;
    sopts.wal = wal.value().get();
    sopts.query_channel = &channel;
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());
    // Start() seeded the channel from recovered history: the result log
    // is regenerated before any publish.
    EXPECT_EQ(channel.stats().fragments_fed, 7);
    EXPECT_EQ(channel.stats().active_queries, 1);

    for (int u = 7; u <= 12; ++u) {
      frags.push_back(MakePacket(1 + u % 2, t += 7, u));
      ASSERT_TRUE(source.Publish(frags.back()).ok());
    }
    ASSERT_TRUE(sub.WaitForResultSeq(token.value(), 11, 20s));
    EXPECT_EQ(sub.server_epoch(), epoch);
    EXPECT_EQ(sub.metrics().epoch_resets, 0);
    sub.DrainResults(&accumulated);
    sub.Stop();
    server.Stop();
  }

  ExpectRecsEqual(RecsOfToken(accumulated, token.value()),
                  LocalReference(kIdQuery, RefOptions(spec), frags),
                  "across-restart stream vs local");
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// ---- Randomized chaos equivalence (the acceptance scenario) -----------------

// For each ExecMethod: a subscriber behind a ChaosLink (drops, dups,
// reorders, corruption) registers the query, a randomized fragment
// schedule flows, and the connection is hard-killed mid-stream. The
// accumulated remote result stream must equal the local engine's delta
// stream over the same schedule — exactly, in content and order.
TEST(RemoteQueryTest, ChaosEquivalenceAcrossExecMethods) {
  for (uint8_t method : {uint8_t{0}, uint8_t{1}, uint8_t{2}}) {
    SCOPED_TRACE("method " + std::to_string(int{method}));
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    QueryChannel channel("pkts", MustParseTs(kPacketTs));
    ASSERT_TRUE(channel.Open().ok());
    FragmentServerOptions sopts;
    sopts.query_channel = &channel;
    sopts.heartbeat_interval = 50ms;
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());

    ChaosLinkOptions chaos_opts;
    chaos_opts.upstream_port = server.port();
    chaos_opts.seed = 1000 + method;
    chaos_opts.faults.drop = 0.01;
    chaos_opts.faults.duplicate = 0.01;
    chaos_opts.faults.reorder = 0.01;
    chaos_opts.faults.corrupt = 0.01;
    ChaosLink chaos(chaos_opts);
    ASSERT_TRUE(chaos.Start().ok());

    FragmentSubscriberOptions opts;
    opts.port = chaos.port();
    opts.stream = "pkts";
    opts.backoff_initial = 10ms;
    opts.backoff_max = 100ms;
    FragmentSubscriber sub(opts);
    RemoteQuerySpec spec = Spec(kIdQuery, method);
    auto token = sub.AddRemoteQuery(spec);
    ASSERT_TRUE(token.ok());
    ASSERT_TRUE(sub.Start().ok());
    ASSERT_TRUE(sub.WaitConnected(30s));
    ASSERT_TRUE(sub.WaitQueryActive(token.value(), 30s));
    auto qid = sub.query_state(token.value()).value().query_id;

    std::vector<frag::Fragment> frags = {MakeRoot({1, 2, 3})};
    ASSERT_TRUE(source.Publish(frags.back()).ok());
    Random rng(20260809 + method);
    int64_t t = 1000;
    int next_val = 0;
    auto publish_one = [&] {
      frags.push_back(MakePacket(1 + static_cast<int64_t>(rng.Uniform(3)),
                                 t += 1 + static_cast<int64_t>(rng.Uniform(9)),
                                 ++next_val));
      ASSERT_TRUE(source.Publish(frags.back()).ok());
    };
    for (int u = 0; u < 20; ++u) publish_one();
    sub.KillConnection();  // hard mid-stream cut on top of the chaos
    for (int u = 0; u < 20; ++u) publish_one();

    // Converge: a dropped tail RESULT frame is only detectable through
    // later traffic, so nudge with fresh publishes until the subscriber
    // holds the full log (which the nudges themselves extend).
    const auto deadline = std::chrono::steady_clock::now() + 90s;
    for (;;) {
      const int64_t want = channel.result_log_size(qid) - 1;
      if (sub.WaitForResultSeq(token.value(), want, 2s) &&
          channel.result_log_size(qid) - 1 == want) {
        break;
      }
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "stuck at result seq "
          << sub.query_state(token.value()).value().last_result_seq << " of "
          << channel.result_log_size(qid) - 1;
      publish_one();
    }

    std::vector<RemoteQueryResult> accumulated;
    sub.DrainResults(&accumulated);
    ExpectRecsEqual(RecsOfToken(accumulated, token.value()),
                    LocalReference(kIdQuery, RefOptions(spec), frags),
                    "chaos stream vs local");

    sub.Stop();
    chaos.Stop();
    server.Stop();
  }
}

}  // namespace
}  // namespace xcql::net
