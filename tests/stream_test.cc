// Tests for the continuous runtime: clock, push transport, hub, event
// appending, and the continuous query engine on the paper's scenarios
// (credit updates, SYN/ACK timeout detection).
#include <gtest/gtest.h>

#include <vector>

#include "common/string_util.h"
#include "frag/assembler.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xcql::stream {
namespace {

DateTime T(const char* s) { return DateTime::Parse(s).value(); }

frag::TagStructure ParseTs(const char* xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

// ---- SimClock ---------------------------------------------------------------

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock(T("2004-01-01T00:00:00"));
  clock.AdvanceTo(T("2004-01-01T01:00:00"));
  EXPECT_EQ(clock.Now(), T("2004-01-01T01:00:00"));
  clock.AdvanceTo(T("2003-01-01T00:00:00"));  // backwards: ignored
  EXPECT_EQ(clock.Now(), T("2004-01-01T01:00:00"));
  clock.Advance(Duration::Parse("PT30M").value());
  EXPECT_EQ(clock.Now(), T("2004-01-01T01:30:00"));
}

// ---- Transport ----------------------------------------------------------------

constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
  </tag>
</tag>)";

class CountingClient : public StreamClient {
 public:
  void OnFragment(const std::string& stream, frag::Fragment f) override {
    ++count;
    last_stream = stream;
    last_id = f.id;
  }
  int count = 0;
  std::string last_stream;
  int64_t last_id = -1;
};

frag::Fragment MakePacket(int64_t id, const char* time, int pkt) {
  frag::Fragment f;
  f.id = id;
  f.tsid = 2;
  f.valid_time = T(time);
  f.content = Node::Element("packet");
  NodePtr pid = Node::Element("id");
  pid->AddChild(Node::Text(std::to_string(pkt)));
  f.content->AddChild(std::move(pid));
  return f;
}

TEST(StreamServerTest, MulticastsToAllClients) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  CountingClient a, b;
  server.RegisterClient(&a);
  server.RegisterClient(&b);
  server.RegisterClient(&a);  // idempotent
  ASSERT_TRUE(server.Publish(MakePacket(1, "2004-01-01T00:00:00", 7)).ok());
  EXPECT_EQ(a.count, 1);
  EXPECT_EQ(b.count, 1);
  EXPECT_EQ(a.last_stream, "pkts");
  server.UnregisterClient(&b);
  ASSERT_TRUE(server.Publish(MakePacket(2, "2004-01-01T00:00:01", 8)).ok());
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(b.count, 1);
}

TEST(StreamServerTest, TracksWireStatistics) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  ASSERT_TRUE(server.Publish(MakePacket(1, "2004-01-01T00:00:00", 7)).ok());
  EXPECT_EQ(server.fragments_sent(), 1);
  EXPECT_GT(server.bytes_sent(), 50);
}

TEST(StreamServerTest, RejectsInvalidFragments) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  frag::Fragment bad;
  bad.id = 1;
  bad.tsid = 99;
  bad.valid_time = T("2004-01-01T00:00:00");
  bad.content = Node::Element("x");
  EXPECT_FALSE(server.Publish(std::move(bad)).ok());
}

TEST(StreamServerTest, RepeatFillerRetransmits) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  CountingClient a;
  server.RegisterClient(&a);
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:00:00", 7)).ok());
  auto repeated = server.RepeatFiller(5);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated.value(), 1);
  EXPECT_EQ(a.count, 2);
  EXPECT_EQ(server.RepeatFiller(99).value(), 0);
}

// ---- Hub ------------------------------------------------------------------------

TEST(StreamHubTest, SubscribeReceivesAndStores) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EXPECT_FALSE(hub.Subscribe(&server).ok());  // duplicate
  ASSERT_TRUE(server.Publish(MakePacket(1, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_NE(hub.store("pkts"), nullptr);
  EXPECT_EQ(hub.store("pkts")->size(), 1u);
  EXPECT_EQ(hub.fragments_received(), 1);
  EXPECT_EQ(hub.store("missing"), nullptr);
}

TEST(StreamHubTest, RepeatedFragmentIsDeduplicated) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_TRUE(server.RepeatFiller(5).ok());
  // Received twice, stored once.
  EXPECT_EQ(hub.fragments_received(), 2);
  EXPECT_EQ(hub.store("pkts")->size(), 1u);
}

// ---- EventAppender -----------------------------------------------------------------

TEST(EventAppenderTest, AppendsEventsUnderContext) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:00")).ok());

  NodePtr pkt = Node::Element("packet");
  NodePtr id = Node::Element("id");
  id->AddChild(Node::Text("7"));
  pkt->AddChild(std::move(id));
  auto fid = app.Append(std::move(pkt), T("2004-01-01T00:00:05"));
  ASSERT_TRUE(fid.ok()) << fid.status().ToString();
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:05")).ok());

  // Reconstruction sees the appended packet under the replaced root.
  auto view = frag::Temporalize(*hub.store("pkts"), false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value()->ChildElements("packet").size(), 1u);
}

TEST(EventAppenderTest, RejectsUndeclaredChild) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  EXPECT_FALSE(app.Append(Node::Element("bogus"),
                          T("2004-01-01T00:00:00")).ok());
  // `id` exists in the schema but is snapshot, not fragmented.
  EXPECT_FALSE(app.Append(Node::Element("id"),
                          T("2004-01-01T00:00:00")).ok());
}

TEST(EventAppenderTest, RemoveDeletesChildFromTheCurrentVersion) {
  // The paper's deletion rule: removing the hole from a new version of the
  // context makes the child inaccessible going forward, while earlier
  // versions keep it (history is never erased). The root context here is a
  // snapshot, so reconstruction shows only the latest version.
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  NodePtr p1 = Node::Element("packet");
  p1->AddChild(Node::Text("one"));
  NodePtr p2 = Node::Element("packet");
  p2->AddChild(Node::Text("two"));
  auto id1 = app.Append(std::move(p1), T("2004-01-01T00:00:01"));
  auto id2 = app.Append(std::move(p2), T("2004-01-01T00:00:02"));
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:02")).ok());
  {
    auto view = frag::Temporalize(*hub.store("pkts"), false);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.value()->ChildElements("packet").size(), 2u);
  }
  ASSERT_TRUE(app.Remove(id1.value()).ok());
  EXPECT_FALSE(app.Remove(id1.value()).ok());  // already removed
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:10")).ok());
  {
    auto view = frag::Temporalize(*hub.store("pkts"), false);
    ASSERT_TRUE(view.ok());
    auto packets = view.value()->ChildElements("packet");
    ASSERT_EQ(packets.size(), 1u);
    EXPECT_EQ(packets[0]->StringValue(), "two");
  }
}

TEST(EventAppenderTest, FlushIsIdempotent) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:00")).ok());
  int64_t sent = server.fragments_sent();
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:01")).ok());
  EXPECT_EQ(server.fragments_sent(), sent);  // nothing new to flush
}

// ---- Continuous queries ---------------------------------------------------------------

class ContinuousTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<StreamServer>(
        "credit", ParseTs(testutil::kCreditTagStructure));
    ASSERT_TRUE(hub_.Subscribe(server_.get()).ok());
    auto doc = ParseXml(testutil::kCreditView);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(server_->PublishDocument(*doc.value()).ok());
    clock_.AdvanceTo(hub_.store("credit")->max_valid_time());
    engine_ = std::make_unique<ContinuousQueryEngine>(&hub_, &clock_);
  }

  std::unique_ptr<StreamServer> server_;
  StreamHub hub_;
  SimClock clock_;
  std::unique_ptr<ContinuousQueryEngine> engine_;
};

TEST_F(ContinuousTest, EmitsInitialResultsOnFirstTick) {
  std::vector<std::string> emitted;
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction where $t/amount > 1000 "
      "return string($t/@id)",
      [&](const xq::Sequence& delta, DateTime) {
        for (const auto& item : delta) {
          emitted.push_back(xq::AsAtomic(item).ToStringValue());
        }
      });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine_->Tick().ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], "23456");
  // A second tick with no new data emits nothing — and the relevance check
  // skips the evaluation outright: the plan is deduped, not time-sensitive,
  // and no fragment with a relevant tsid arrived.
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(emitted.size(), 1u);
  EXPECT_EQ(engine_->evaluations(), 1);
  EXPECT_EQ(engine_->skips(), 1);
  EXPECT_EQ(engine_->results_emitted(), 1);
}

TEST_F(ContinuousTest, RegistrationValidatesQueries) {
  EXPECT_FALSE(engine_->Register("for $x in", nullptr).ok());
  EXPECT_FALSE(engine_->Register("stream(\"nope\")//x", nullptr).ok());
}

TEST_F(ContinuousTest, NewFragmentsProduceDeltas) {
  // Evaluate strictly after the suspension instant (at the exact boundary
  // the previous "charged" version is still valid under closed intervals).
  clock_.AdvanceTo(T("2003-11-02T00:00:00"));
  std::vector<std::string> emitted;
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction "
      "where $t/amount > 1000 and $t/status?[now] = \"charged\" "
      "return string($t/@id)",
      [&](const xq::Sequence& delta, DateTime) {
        for (const auto& item : delta) {
          emitted.push_back(xq::AsAtomic(item).ToStringValue());
        }
      });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->Tick().ok());
  // At the initial time, transaction 23456 is suspended (its last status
  // version is "suspended"), so nothing is emitted.
  EXPECT_TRUE(emitted.empty());

  // An update stream fragment reinstates the charge: a new status version
  // for the suspended transaction's status filler. Find that filler id by
  // asking the store which status fillers exist — transaction 23456's
  // status group is the one with two versions.
  const frag::FragmentStore* store = hub_.store("credit");
  int64_t status_id = -1;
  for (int64_t cand = 0; cand < 32; ++cand) {
    auto versions = store->GetFillerVersions(cand, false);
    if (versions.ok() && versions.value().size() == 2 &&
        versions.value()[1]->StringValue() == "suspended") {
      status_id = cand;
      break;
    }
  }
  ASSERT_GE(status_id, 0);
  frag::Fragment f;
  f.id = status_id;
  f.tsid = 7;
  f.valid_time = T("2003-11-20T09:00:00");
  f.content = Node::Element("status");
  f.content->AddChild(Node::Text("charged"));
  ASSERT_TRUE(server_->Publish(std::move(f)).ok());
  clock_.AdvanceTo(T("2003-11-21T00:00:00"));
  ASSERT_TRUE(engine_->Tick().ok());
  ASSERT_EQ(emitted.size(), 1u);
  EXPECT_EQ(emitted[0], "23456");
}

TEST_F(ContinuousTest, UnregisterStopsEvaluation) {
  int calls = 0;
  auto id = engine_->Register(
      "count(stream(\"credit\")//account)",
      [&](const xq::Sequence&, DateTime) { ++calls; },
      {.method = lang::ExecMethod::kQaCPlus, .dedup = false});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(calls, 1);
  ASSERT_TRUE(engine_->Unregister(id.value()).ok());
  EXPECT_FALSE(engine_->Unregister(id.value()).ok());
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(calls, 1);
}

TEST_F(ContinuousTest, NoDedupReportsFullResultEachTick) {
  int total = 0;
  auto id = engine_->Register(
      "for $a in stream(\"credit\")//account return string($a/@id)",
      [&](const xq::Sequence& r, DateTime) {
        total += static_cast<int>(r.size());
      },
      {.method = lang::ExecMethod::kQaCPlus, .dedup = false});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->Tick().ok());
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(total, 4);  // two accounts, twice
}

TEST(StreamServerTest, WireCompressionShrinksByteAccounting) {
  StreamServer plain("pkts", ParseTs(kPacketTs));
  StreamServer compressed("pkts", ParseTs(kPacketTs));
  compressed.EnableWireCompression();
  for (int i = 0; i < 10; ++i) {
    std::string t = xcql::StringPrintf("2004-01-01T00:00:%02d", i);
    ASSERT_TRUE(plain.Publish(MakePacket(i, t.c_str(), i)).ok());
    ASSERT_TRUE(compressed.Publish(MakePacket(i, t.c_str(), i)).ok());
  }
  EXPECT_LT(compressed.bytes_sent(), plain.bytes_sent());
}

TEST(StreamServerTest, PublishSurfacesCodecErrorsWithoutSideEffects) {
  // With wire compression on, a payload carrying a tag the schema does not
  // declare cannot be sized; the error must surface as a Status before any
  // counter, history or client delivery mutation happens.
  StreamServer server("pkts", ParseTs(kPacketTs));
  server.EnableWireCompression();
  CountingClient a;
  server.RegisterClient(&a);
  frag::Fragment bad = MakePacket(1, "2004-01-01T00:00:00", 7);
  bad.content->AddChild(Node::Element("bogus"));
  Status st = server.Publish(std::move(bad));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(server.fragments_sent(), 0);
  EXPECT_EQ(server.bytes_sent(), 0);
  EXPECT_EQ(server.history_size(), 0);
  EXPECT_EQ(a.count, 0);
}

TEST(StreamServerTest, ExposesHistoryForReplay) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  ASSERT_TRUE(server.Publish(MakePacket(3, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_TRUE(server.Publish(MakePacket(4, "2004-01-01T00:00:05", 8)).ok());
  ASSERT_EQ(server.history_size(), 2);
  EXPECT_EQ(server.history_at(0).id, 3);
  EXPECT_EQ(server.history_at(1).id, 4);
  EXPECT_EQ(server.wire_codec(), frag::WireCodec::kPlainXml);
  server.EnableWireCompression();
  EXPECT_EQ(server.wire_codec(), frag::WireCodec::kTagCompressed);
}

// Regression (satellite of the net transport PR): repeating a filler used
// to re-enter the repeated versions into the replayable history, so a
// late subscriber replaying after a repeat received superseded versions
// again — and a second repeat doubled them. A repeat is a wire-level
// retransmission: stores must converge to the same state whether a
// subscriber replayed before or after any number of repeats.
TEST(StreamServerTest, RepeatThenReplayMatchesOriginalStore) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub early;
  ASSERT_TRUE(early.Subscribe(&server).ok());
  // Two versions of filler 5, one other filler.
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:01:00", 9)).ok());
  ASSERT_TRUE(server.Publish(MakePacket(6, "2004-01-01T00:02:00", 8)).ok());
  ASSERT_EQ(server.history_size(), 3);

  auto repeated = server.RepeatFiller(5);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated.value(), 2);
  ASSERT_TRUE(server.RepeatFiller(5).ok());  // repeat twice for good measure
  // Retransmissions do not grow the replayable history.
  EXPECT_EQ(server.history_size(), 3);

  StreamHub late;
  ASSERT_TRUE(late.Subscribe(&server).ok());
  auto replayed = server.ReplayTo(&late);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value(), 3);

  const frag::FragmentStore* a = early.store("pkts");
  const frag::FragmentStore* b = late.store("pkts");
  ASSERT_EQ(a->size(), 3u);
  ASSERT_EQ(b->size(), 3u);
  for (int64_t id : {int64_t{5}, int64_t{6}}) {
    auto va = a->GetFillerVersions(id, false);
    auto vb = b->GetFillerVersions(id, false);
    ASSERT_TRUE(va.ok());
    ASSERT_TRUE(vb.ok());
    ASSERT_EQ(va.value().size(), vb.value().size());
    for (size_t i = 0; i < va.value().size(); ++i) {
      EXPECT_TRUE(Node::DeepEqual(*va.value()[i], *vb.value()[i]));
    }
  }
}

TEST(StreamServerTest, RepeatFillerSkipsDuplicateHistoryEntries) {
  // The same version published twice sits in history twice; a repeat must
  // retransmit the distinct versions only.
  StreamServer server("pkts", ParseTs(kPacketTs));
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_TRUE(server.Publish(MakePacket(5, "2004-01-01T00:00:00", 7)).ok());
  auto repeated = server.RepeatFiller(5);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated.value(), 1);
}

TEST(EventAppenderTest, RemoveBeforeFirstFlushIsClean) {
  // A hole that was never part of the context must fail cleanly without
  // touching the maintained payload, before the first Flush ever runs.
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  EXPECT_FALSE(app.Remove(42).ok());
  EXPECT_EQ(server.fragments_sent(), 0);  // nothing published by the probe
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:00")).ok());
  // The published context is exactly the payload the appender was given.
  ASSERT_EQ(server.history_size(), 1);
  EXPECT_TRUE(
      Node::DeepEqual(*server.history_at(0).content, *Node::Element("packets")));
}

TEST(EventAppenderTest, RemoveOfChildAppendedBeforeFirstFlush) {
  // Append then Remove before the context was ever published: the first
  // Flush must carry a context without the hole (the child's filler stays
  // in history but is unreachable — the paper's deletion rule).
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  NodePtr pkt = Node::Element("packet");
  pkt->AddChild(Node::Text("gone"));
  auto id = app.Append(std::move(pkt), T("2004-01-01T00:00:01"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(app.Remove(id.value()).ok());
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:02")).ok());
  auto view = frag::Temporalize(*hub.store("pkts"), false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(view.value()->ChildElements("packet").empty());
}

TEST(EventAppenderTest, RejectedAppendLeavesContextIntact) {
  // An Append of a tag that is not a fragmented child must not publish a
  // filler nor leave a dangling hole in the maintained context.
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub hub;
  ASSERT_TRUE(hub.Subscribe(&server).ok());
  EventAppender app(&server, 0, 1, Node::Element("packets"));
  EXPECT_FALSE(app.Append(Node::Element("bogus"),
                          T("2004-01-01T00:00:00")).ok());
  // `id` is declared but snapshot-typed: also rejected, also side-effect
  // free.
  EXPECT_FALSE(app.Append(Node::Element("id"),
                          T("2004-01-01T00:00:00")).ok());
  EXPECT_EQ(server.fragments_sent(), 0);
  ASSERT_TRUE(app.Flush(T("2004-01-01T00:00:01")).ok());
  auto view = frag::Temporalize(*hub.store("pkts"), false);
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(view.value()->children().empty());
}

TEST(StreamServerTest, LateSubscriberCatchesUpViaReplay) {
  StreamServer server("pkts", ParseTs(kPacketTs));
  StreamHub early;
  ASSERT_TRUE(early.Subscribe(&server).ok());
  ASSERT_TRUE(server.Publish(MakePacket(1, "2004-01-01T00:00:00", 7)).ok());
  ASSERT_TRUE(server.Publish(MakePacket(2, "2004-01-01T00:00:05", 8)).ok());

  StreamHub late;
  ASSERT_TRUE(late.Subscribe(&server).ok());
  EXPECT_EQ(late.store("pkts")->size(), 0u);  // missed the history
  auto replayed = server.ReplayTo(&late);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed.value(), 2);
  EXPECT_EQ(late.store("pkts")->size(), 2u);
  // The early subscriber saw nothing extra, and a second replay is
  // idempotent at the store (exact duplicates are dropped).
  EXPECT_EQ(early.store("pkts")->size(), 2u);
  ASSERT_TRUE(server.ReplayTo(&late).ok());
  EXPECT_EQ(late.store("pkts")->size(), 2u);
}

TEST_F(ContinuousTest, IncrementalModeExposesWatermark) {
  clock_.AdvanceTo(T("2003-11-02T00:00:00"));
  // The query restricts its scan to transactions that arrived since the
  // previous tick; $since is `start` on the first evaluation.
  std::vector<std::string> emitted;
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction?[$since, now] "
      "return string($t/@id)",
      [&](const xq::Sequence& delta, DateTime) {
        for (const auto& item : delta) {
          emitted.push_back(xq::AsAtomic(item).ToStringValue());
        }
      },
      {.method = lang::ExecMethod::kQaCPlus,
       .dedup = true,
       .incremental = true});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(emitted.size(), 2u);  // both historical transactions

  // A new transaction fragment arrives under account 1234 (a fresh filler
  // plus the updated account context is unnecessary for the tsid scan, but
  // publish the context anyway to keep every method consistent).
  frag::Fragment f;
  f.id = 100;
  f.tsid = 5;
  f.valid_time = T("2003-11-03T10:00:00");
  f.content = Node::Element("transaction");
  f.content->SetAttr("id", "77777");
  ASSERT_TRUE(server_->Publish(std::move(f)).ok());
  clock_.AdvanceTo(T("2003-11-04T00:00:00"));
  ASSERT_TRUE(engine_->Tick().ok());
  ASSERT_EQ(emitted.size(), 3u);
  EXPECT_EQ(emitted.back(), "77777");
  // Nothing new on the next tick: the watermark advanced past the event.
  clock_.AdvanceTo(T("2003-11-05T00:00:00"));
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(emitted.size(), 3u);
}

// The paper's §2 example 1: SYN packets that receive no ACK within one
// minute, evaluated continuously.
class SynAckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    syn_server_ = std::make_unique<StreamServer>("gsyn", ParseTs(kPacketTs));
    ack_server_ = std::make_unique<StreamServer>("ack", ParseTs(kPacketTs));
    ASSERT_TRUE(hub_.Subscribe(syn_server_.get()).ok());
    ASSERT_TRUE(hub_.Subscribe(ack_server_.get()).ok());
    syn_app_ = std::make_unique<EventAppender>(syn_server_.get(), 0, 1,
                                               Node::Element("packets"));
    ack_app_ = std::make_unique<EventAppender>(ack_server_.get(), 0, 1,
                                               Node::Element("packets"));
    DateTime t0 = T("2004-01-01T10:00:00");
    ASSERT_TRUE(syn_app_->Flush(t0).ok());
    ASSERT_TRUE(ack_app_->Flush(t0).ok());
    clock_.AdvanceTo(t0);
    engine_ = std::make_unique<ContinuousQueryEngine>(&hub_, &clock_);
  }

  void Packet(EventAppender* app, int pkt, const char* time) {
    NodePtr p = Node::Element("packet");
    NodePtr id = Node::Element("id");
    id->AddChild(Node::Text(std::to_string(pkt)));
    p->AddChild(std::move(id));
    ASSERT_TRUE(app->Append(std::move(p), T(time)).ok());
    ASSERT_TRUE(app->Flush(T(time)).ok());
    clock_.AdvanceTo(T(time));
  }

  std::unique_ptr<StreamServer> syn_server_;
  std::unique_ptr<StreamServer> ack_server_;
  StreamHub hub_;
  SimClock clock_;
  std::unique_ptr<EventAppender> syn_app_;
  std::unique_ptr<EventAppender> ack_app_;
  std::unique_ptr<ContinuousQueryEngine> engine_;
};

TEST_F(SynAckTest, WarnsOnlyForUnacknowledgedPackets) {
  // A SYN is misbehaving when no ACK with its id arrives within a minute;
  // the deadline must have passed before we can tell.
  const char* q = R"(
    for $s in stream("gsyn")//packet
    where vtFrom($s) + PT1M <= now
      and not(some $a in stream("ack")//packet
                   ?[vtFrom($s), vtFrom($s) + PT1M]
              satisfies $s/id = $a/id)
    return <warning>{ $s/id/text() }</warning>)";
  std::vector<std::string> warnings;
  auto id = engine_->Register(q, [&](const xq::Sequence& delta, DateTime) {
    for (const auto& item : delta) {
      warnings.push_back(xq::AsNode(item)->StringValue());
    }
  });
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  Packet(syn_app_.get(), 1, "2004-01-01T10:00:00");
  Packet(syn_app_.get(), 2, "2004-01-01T10:00:10");
  Packet(ack_app_.get(), 1, "2004-01-01T10:00:30");  // packet 1 acked in time

  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_TRUE(warnings.empty());  // deadlines not reached yet

  clock_.AdvanceTo(T("2004-01-01T10:00:59"));
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_TRUE(warnings.empty());

  clock_.AdvanceTo(T("2004-01-01T10:02:00"));
  ASSERT_TRUE(engine_->Tick().ok());
  ASSERT_EQ(warnings.size(), 1u);
  EXPECT_EQ(warnings[0], "2");  // only the unacknowledged packet

  // A late ACK for packet 2 does not retract the warning, and nothing new
  // is emitted.
  Packet(ack_app_.get(), 2, "2004-01-01T10:03:00");
  ASSERT_TRUE(engine_->Tick().ok());
  EXPECT_EQ(warnings.size(), 1u);
}

}  // namespace
}  // namespace xcql::stream
