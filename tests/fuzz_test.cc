// Deterministic fuzz-style robustness tests: randomly mutated documents,
// fragment streams and queries must never crash the parsers or the
// evaluator — every input yields either a value or a clean error Status.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "net/subscriber.h"
#include "stream/transport.h"
#include "test_util.h"
#include "xml/parser.h"
#include "xq/eval.h"
#include "xq/parser.h"

namespace xcql {
namespace {

// Applies `n` random byte-level mutations (replace/insert/delete).
std::string Mutate(std::string input, Random* rng, int n) {
  static const char kBytes[] =
      "<>/=\"'&;{}[]()$#?@!abcXYZ019 \t\n-_.:*+|,";
  for (int i = 0; i < n && !input.empty(); ++i) {
    size_t pos = rng->Uniform(input.size());
    switch (rng->Uniform(3)) {
      case 0:
        input[pos] = kBytes[rng->Uniform(sizeof(kBytes) - 1)];
        break;
      case 1:
        input.insert(pos, 1, kBytes[rng->Uniform(sizeof(kBytes) - 1)]);
        break;
      default:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  Random rng(GetParam());
  std::string doc = testutil::kCreditView;
  for (int round = 0; round < 20; ++round) {
    std::string mutated = Mutate(doc, &rng, 1 + static_cast<int>(
                                                   rng.Uniform(8)));
    auto r = ParseXml(mutated);
    if (r.ok()) {
      // Whatever parsed must serialize and reparse.
      std::string again = SerializeXml(*r.value());
      EXPECT_TRUE(ParseXml(again).ok()) << again;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, MutatedQueriesNeverCrashParserOrEvaluator) {
  Random rng(GetParam() + 1000);
  const char* corpus[] = {
      "for $a in doc(\"credit\")//account "
      "where sum($a/transaction?[2003-11-01,2003-12-01]"
      "[status = \"charged\"]/amount) >= $a/creditLimit?[now] "
      "return <account>{attribute id {$a/@id}, $a/customer}</account>",
      "declare function f($x) { $x * 2 }; f(3) + count((1 to 10)[. mod 2])",
      "some $x in (1, 2, 3) satisfies $x > 2 and \"a\" < \"b\"",
      "stream(\"credit\")//transaction#[1,last]?[start,now]",
  };
  xq::FunctionRegistry registry = xq::FunctionRegistry::Builtins();
  auto doc = ParseXml(testutil::kCreditView);
  ASSERT_TRUE(doc.ok());
  for (const char* base : corpus) {
    for (int round = 0; round < 12; ++round) {
      std::string mutated =
          Mutate(base, &rng, 1 + static_cast<int>(rng.Uniform(6)));
      auto prog = xq::ParseQuery(mutated);
      if (!prog.ok()) continue;  // clean parse error
      // Evaluate whatever still parses; errors must come back as Status.
      xq::EvalContext ctx;
      ctx.functions = &registry;
      ctx.now = DateTime::Parse("2003-12-01T00:00:00").value();
      ctx.documents["credit"] = doc.value();
      xq::Evaluator ev(&ctx);
      auto result = ev.EvalProgram(prog.value());
      (void)result;  // ok or clean error — reaching here is the assertion
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class FragmentFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentFuzzTest, MutatedWireFormsNeverCrash) {
  Random rng(GetParam() + 2000);
  const char* wire =
      "<filler id=\"100\" tsid=\"5\" validTime=\"2003-10-23T12:23:34\">"
      "<transaction id=\"12345\"><vendor>Pizza</vendor>"
      "<hole id=\"200\" tsid=\"7\"/></transaction></filler>";
  for (int round = 0; round < 30; ++round) {
    std::string mutated =
        Mutate(wire, &rng, 1 + static_cast<int>(rng.Uniform(6)));
    auto f = frag::Fragment::Parse(mutated);
    (void)f;
  }
  // Tag structures too.
  for (int round = 0; round < 30; ++round) {
    std::string mutated = Mutate(testutil::kCreditTagStructure, &rng,
                                 1 + static_cast<int>(rng.Uniform(6)));
    auto ts = frag::TagStructure::Parse(mutated);
    (void)ts;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class FrameFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameFuzzTest, MutatedFramesNeverCrashOrForgeAChecksum) {
  // Truncated and bit-flipped frame streams, fed in random-sized chunks,
  // must never crash the reader, over-read, or — the integrity property —
  // produce a checksum-verified v2 frame that differs from a frame
  // actually encoded. 1-3 bit flips are always within CRC32C's detection
  // distance at these frame sizes, so any frame that verifies can only be
  // one the mutations never touched.
  Random rng(GetParam() + 3000);
  // Valid v2 frames of every type; no payload embeds the frame magic.
  std::vector<net::Frame> corpus;
  net::Hello hello;
  hello.stream_name = "credit";
  corpus.push_back(
      {net::FrameType::kHello, 0, 0, net::EncodeHello(hello)});
  corpus.push_back({net::FrameType::kFragment,
                    net::kFlagCompressedPayload, 41,
                    std::string(300, 'z')});
  corpus.push_back({net::FrameType::kHeartbeat, 0, 42, ""});
  corpus.push_back(
      {net::FrameType::kReplayFrom, 0, 0, net::EncodeReplayFrom(-1)});
  corpus.push_back({net::FrameType::kRepeatRequest, 0, 7,
                    net::EncodeRepeatRequest(1234)});
  std::vector<std::string> encoded;
  for (const auto& f : corpus) {
    auto e = net::EncodeFrame(f);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    encoded.push_back(std::move(e).MoveValue());
  }
  auto matches_corpus = [&](const net::Frame& got) {
    for (const auto& f : corpus) {
      if (got.type == f.type && got.flags == f.flags &&
          got.seq == f.seq && got.payload == f.payload) {
        return true;
      }
    }
    return false;
  };

  for (int round = 0; round < 200; ++round) {
    std::string wire = encoded[rng.Uniform(encoded.size())] +
                       encoded[rng.Uniform(encoded.size())];
    if (rng.Bernoulli(0.3)) {
      wire.resize(1 + rng.Uniform(wire.size()));
    }
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < flips; ++i) {
      wire[rng.Uniform(wire.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }

    net::FrameReader reader;
    size_t off = 0;
    bool dead = false;
    while (off < wire.size() && !dead) {
      const size_t n =
          std::min<size_t>(1 + rng.Uniform(64), wire.size() - off);
      reader.Feed(wire.data() + off, n);
      off += n;
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) {
          dead = true;  // clean decode error: the stream is abandoned
          break;
        }
        if (!next.value().has_value()) break;
        const net::Frame& got = *next.value();
        if (got.wire_version == net::kFrameVersionCrc && got.crc_ok) {
          EXPECT_TRUE(matches_corpus(got))
              << "forged frame in round " << round << ": type "
              << static_cast<int>(got.type) << " seq " << got.seq;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class ControlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControlFuzzTest, MutatedControlFramesNeverKillTheServer) {
  // A live FragmentServer fed mutated control frames — garbage HELLOs at
  // handshake, well-framed-but-undecodable REPLAY_FROM / REPEAT_REQUEST
  // payloads, bit-flipped v2 frames, unknown frame types — must count
  // each rejection (handshake_failures / bad_control_frames /
  // frames_corrupt) and keep serving: a clean subscriber connected after
  // the barrage still converges on the full stream.
  using namespace std::chrono_literals;
  Random rng(GetParam() + 4000);

  const char* ts_xml = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
  </tag>
</tag>)";
  auto ts = frag::TagStructure::Parse(ts_xml);
  ASSERT_TRUE(ts.ok());
  stream::StreamServer source("pkts", std::move(ts).MoveValue());
  for (int i = 0; i < 8; ++i) {
    frag::Fragment f;
    f.id = 10 + i;
    f.tsid = 2;
    f.valid_time = DateTime(1000 + i);
    f.content = Node::Element("packet");
    NodePtr pid = Node::Element("id");
    pid->AddChild(Node::Text(std::to_string(i)));
    f.content->AddChild(std::move(pid));
    ASSERT_TRUE(source.Publish(std::move(f)).ok());
  }
  net::FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  auto encode = [](const net::Frame& f, uint8_t version) {
    auto e = net::EncodeFrame(f, version);
    EXPECT_TRUE(e.ok()) << e.status().ToString();
    return e.ok() ? std::move(e).MoveValue() : std::string();
  };
  net::Hello hello;
  hello.stream_name = "pkts";
  const std::string good_hello = net::EncodeHello(hello);

  // Reads frames off `sock` until one of type `want` arrives. False on
  // timeout/close — the server hung up, which callers treat as "this
  // round's session is over".
  auto read_until = [&](net::Socket& sock, net::FrameType want) {
    net::FrameReader reader;
    char buf[4096];
    auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      bool timed_out = false;
      auto n = sock.RecvTimeout(buf, sizeof(buf), 200ms, &timed_out);
      if (!n.ok()) return false;
      if (timed_out) continue;
      if (n.value() == 0) return false;
      reader.Feed(buf, n.value());
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) return false;
        if (!next.value().has_value()) break;
        if (next.value()->type == want) return true;
      }
    }
    return false;
  };

  for (int round = 0; round < 12; ++round) {
    auto conn = net::ConnectTo("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok()) << conn.status().ToString();
    net::Socket sock = std::move(conn).MoveValue();
    if (rng.Bernoulli(0.4)) {
      // Mangled handshake: a well-framed HELLO whose payload is mutated
      // garbage. The server must count it and cut the connection — no
      // crash, no BYE-as-semantic-rejection.
      std::string payload =
          Mutate(good_hello, &rng, 2 + static_cast<int>(rng.Uniform(8)));
      std::string wire =
          encode({net::FrameType::kHello, net::kHelloFlagCrcFrames, 0,
                  std::move(payload)},
                 net::kFrameVersion);
      (void)sock.SendAll(wire.data(), wire.size());
      char buf[1024];
      bool timed_out = false;
      (void)sock.RecvTimeout(buf, sizeof(buf), 500ms, &timed_out);
      continue;
    }
    // Clean handshake, then a burst of hostile post-handshake frames.
    std::string wire = encode(
        {net::FrameType::kHello, net::kHelloFlagCrcFrames, 0, good_hello},
        net::kFrameVersion);
    ASSERT_TRUE(sock.SendAll(wire.data(), wire.size()).ok());
    if (!read_until(sock, net::FrameType::kHello)) continue;
    for (int k = 0; k < 6; ++k) {
      net::Frame f;
      f.seq = static_cast<int64_t>(rng.Uniform(100));
      switch (rng.Uniform(4)) {
        case 0:  // wrong-length REPLAY_FROM payload: decode must fail
          f.type = net::FrameType::kReplayFrom;
          f.payload = std::string(1 + rng.Uniform(6), 'x');
          break;
        case 1:  // mutated REPEAT_REQUEST
          f.type = net::FrameType::kRepeatRequest;
          f.payload = Mutate(net::EncodeRepeatRequest(1234), &rng,
                             1 + static_cast<int>(rng.Uniform(6)));
          break;
        case 2:  // unknown frame type with random bytes
          f.type = static_cast<net::FrameType>(200 + rng.Uniform(50));
          f.payload = std::string(rng.Uniform(32), '?');
          break;
        default:  // valid REPLAY_FROM, bit-flipped after encoding: the
                  // checksum is the detector
          f.type = net::FrameType::kReplayFrom;
          f.payload = net::EncodeReplayFrom(-1);
          break;
      }
      const bool flip = rng.Uniform(4) == 3;
      std::string bytes = encode(f, net::kFrameVersionCrc);
      if (flip && bytes.size() > net::kFrameHeaderSizeCrc) {
        size_t off =
            net::kFrameHeaderSizeCrc +
            rng.Uniform(bytes.size() - net::kFrameHeaderSizeCrc);
        bytes[off] ^= static_cast<char>(1 << rng.Uniform(8));
      }
      if (!sock.SendAll(bytes.data(), bytes.size()).ok()) break;
    }
    std::this_thread::sleep_for(20ms);
  }

  // Deterministic floor: at least one garbage HELLO and one undecodable
  // control frame, so the counters below are guaranteed to move even if
  // every random roll above happened to produce decodable bytes.
  {
    auto conn = net::ConnectTo("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    net::Socket sock = std::move(conn).MoveValue();
    std::string wire = encode(
        {net::FrameType::kHello, 0, 0, "not-a-hello-payload"},
        net::kFrameVersion);
    ASSERT_TRUE(sock.SendAll(wire.data(), wire.size()).ok());
  }
  {
    auto conn = net::ConnectTo("127.0.0.1", server.port());
    ASSERT_TRUE(conn.ok());
    net::Socket sock = std::move(conn).MoveValue();
    std::string wire = encode(
        {net::FrameType::kHello, net::kHelloFlagCrcFrames, 0, good_hello},
        net::kFrameVersion);
    ASSERT_TRUE(sock.SendAll(wire.data(), wire.size()).ok());
    ASSERT_TRUE(read_until(sock, net::FrameType::kHello));
    std::string bad = encode(
        {net::FrameType::kReplayFrom, 0, 0, std::string("zz")},
        net::kFrameVersionCrc);
    ASSERT_TRUE(sock.SendAll(bad.data(), bad.size()).ok());
    std::this_thread::sleep_for(50ms);
  }

  auto sm = server.metrics();
  EXPECT_GE(sm.handshake_failures, 1) << "garbage HELLO went uncounted";
  EXPECT_GE(sm.bad_control_frames, 1)
      << "undecodable control frame went uncounted";

  // The server survived the barrage: a clean subscriber converges.
  net::FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  net::FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  EXPECT_TRUE(sub.WaitForSeq(7, 10s))
      << "server stopped serving after control-frame fuzzing: last_seq="
      << sub.last_seq();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  EXPECT_EQ(got.size(), 8u);
  sub.Stop();
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControlFuzzTest,
                         ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace xcql
