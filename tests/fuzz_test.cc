// Deterministic fuzz-style robustness tests: randomly mutated documents,
// fragment streams and queries must never crash the parsers or the
// evaluator — every input yields either a value or a clean error Status.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "frag/fragment.h"
#include "frag/tag_structure.h"
#include "net/frame.h"
#include "test_util.h"
#include "xml/parser.h"
#include "xq/eval.h"
#include "xq/parser.h"

namespace xcql {
namespace {

// Applies `n` random byte-level mutations (replace/insert/delete).
std::string Mutate(std::string input, Random* rng, int n) {
  static const char kBytes[] =
      "<>/=\"'&;{}[]()$#?@!abcXYZ019 \t\n-_.:*+|,";
  for (int i = 0; i < n && !input.empty(); ++i) {
    size_t pos = rng->Uniform(input.size());
    switch (rng->Uniform(3)) {
      case 0:
        input[pos] = kBytes[rng->Uniform(sizeof(kBytes) - 1)];
        break;
      case 1:
        input.insert(pos, 1, kBytes[rng->Uniform(sizeof(kBytes) - 1)]);
        break;
      default:
        input.erase(pos, 1);
        break;
    }
  }
  return input;
}

class XmlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlFuzzTest, MutatedDocumentsNeverCrashTheParser) {
  Random rng(GetParam());
  std::string doc = testutil::kCreditView;
  for (int round = 0; round < 20; ++round) {
    std::string mutated = Mutate(doc, &rng, 1 + static_cast<int>(
                                                   rng.Uniform(8)));
    auto r = ParseXml(mutated);
    if (r.ok()) {
      // Whatever parsed must serialize and reparse.
      std::string again = SerializeXml(*r.value());
      EXPECT_TRUE(ParseXml(again).ok()) << again;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class QueryFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryFuzzTest, MutatedQueriesNeverCrashParserOrEvaluator) {
  Random rng(GetParam() + 1000);
  const char* corpus[] = {
      "for $a in doc(\"credit\")//account "
      "where sum($a/transaction?[2003-11-01,2003-12-01]"
      "[status = \"charged\"]/amount) >= $a/creditLimit?[now] "
      "return <account>{attribute id {$a/@id}, $a/customer}</account>",
      "declare function f($x) { $x * 2 }; f(3) + count((1 to 10)[. mod 2])",
      "some $x in (1, 2, 3) satisfies $x > 2 and \"a\" < \"b\"",
      "stream(\"credit\")//transaction#[1,last]?[start,now]",
  };
  xq::FunctionRegistry registry = xq::FunctionRegistry::Builtins();
  auto doc = ParseXml(testutil::kCreditView);
  ASSERT_TRUE(doc.ok());
  for (const char* base : corpus) {
    for (int round = 0; round < 12; ++round) {
      std::string mutated =
          Mutate(base, &rng, 1 + static_cast<int>(rng.Uniform(6)));
      auto prog = xq::ParseQuery(mutated);
      if (!prog.ok()) continue;  // clean parse error
      // Evaluate whatever still parses; errors must come back as Status.
      xq::EvalContext ctx;
      ctx.functions = &registry;
      ctx.now = DateTime::Parse("2003-12-01T00:00:00").value();
      ctx.documents["credit"] = doc.value();
      xq::Evaluator ev(&ctx);
      auto result = ev.EvalProgram(prog.value());
      (void)result;  // ok or clean error — reaching here is the assertion
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class FragmentFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentFuzzTest, MutatedWireFormsNeverCrash) {
  Random rng(GetParam() + 2000);
  const char* wire =
      "<filler id=\"100\" tsid=\"5\" validTime=\"2003-10-23T12:23:34\">"
      "<transaction id=\"12345\"><vendor>Pizza</vendor>"
      "<hole id=\"200\" tsid=\"7\"/></transaction></filler>";
  for (int round = 0; round < 30; ++round) {
    std::string mutated =
        Mutate(wire, &rng, 1 + static_cast<int>(rng.Uniform(6)));
    auto f = frag::Fragment::Parse(mutated);
    (void)f;
  }
  // Tag structures too.
  for (int round = 0; round < 30; ++round) {
    std::string mutated = Mutate(testutil::kCreditTagStructure, &rng,
                                 1 + static_cast<int>(rng.Uniform(6)));
    auto ts = frag::TagStructure::Parse(mutated);
    (void)ts;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

class FrameFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FrameFuzzTest, MutatedFramesNeverCrashOrForgeAChecksum) {
  // Truncated and bit-flipped frame streams, fed in random-sized chunks,
  // must never crash the reader, over-read, or — the integrity property —
  // produce a checksum-verified v2 frame that differs from a frame
  // actually encoded. 1-3 bit flips are always within CRC32C's detection
  // distance at these frame sizes, so any frame that verifies can only be
  // one the mutations never touched.
  Random rng(GetParam() + 3000);
  // Valid v2 frames of every type; no payload embeds the frame magic.
  std::vector<net::Frame> corpus;
  net::Hello hello;
  hello.stream_name = "credit";
  corpus.push_back(
      {net::FrameType::kHello, 0, 0, net::EncodeHello(hello)});
  corpus.push_back({net::FrameType::kFragment,
                    net::kFlagCompressedPayload, 41,
                    std::string(300, 'z')});
  corpus.push_back({net::FrameType::kHeartbeat, 0, 42, ""});
  corpus.push_back(
      {net::FrameType::kReplayFrom, 0, 0, net::EncodeReplayFrom(-1)});
  corpus.push_back({net::FrameType::kRepeatRequest, 0, 7,
                    net::EncodeRepeatRequest(1234)});
  std::vector<std::string> encoded;
  for (const auto& f : corpus) {
    auto e = net::EncodeFrame(f);
    ASSERT_TRUE(e.ok()) << e.status().ToString();
    encoded.push_back(std::move(e).MoveValue());
  }
  auto matches_corpus = [&](const net::Frame& got) {
    for (const auto& f : corpus) {
      if (got.type == f.type && got.flags == f.flags &&
          got.seq == f.seq && got.payload == f.payload) {
        return true;
      }
    }
    return false;
  };

  for (int round = 0; round < 200; ++round) {
    std::string wire = encoded[rng.Uniform(encoded.size())] +
                       encoded[rng.Uniform(encoded.size())];
    if (rng.Bernoulli(0.3)) {
      wire.resize(1 + rng.Uniform(wire.size()));
    }
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int i = 0; i < flips; ++i) {
      wire[rng.Uniform(wire.size())] ^=
          static_cast<char>(1 << rng.Uniform(8));
    }

    net::FrameReader reader;
    size_t off = 0;
    bool dead = false;
    while (off < wire.size() && !dead) {
      const size_t n =
          std::min<size_t>(1 + rng.Uniform(64), wire.size() - off);
      reader.Feed(wire.data() + off, n);
      off += n;
      for (;;) {
        auto next = reader.Next();
        if (!next.ok()) {
          dead = true;  // clean decode error: the stream is abandoned
          break;
        }
        if (!next.value().has_value()) break;
        const net::Frame& got = *next.value();
        if (got.wire_version == net::kFrameVersionCrc && got.crc_ok) {
          EXPECT_TRUE(matches_corpus(got))
              << "forged frame in round " << round << ": type "
              << static_cast<int>(got.type) << " seq " << got.seq;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrameFuzzTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace xcql
