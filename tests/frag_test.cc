// Tests for the Hole-Filler fragment layer: Tag Structure parsing,
// fragment wire format, document fragmentation, the fragment store's three
// access paths, lifespan derivation, and temporal-view reconstruction
// (including the fragment→reassemble round-trip property).
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "frag/assembler.h"
#include "frag/fragment.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "frag/tag_structure.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql::frag {
namespace {

// The paper's §4.1 tag structure for the credit card system.
constexpr const char* kCreditTagStructure = R"(
<stream:structure>
  <tag type="snapshot" id="1" name="creditAccounts">
    <tag type="temporal" id="2" name="account">
      <tag type="snapshot" id="3" name="customer"/>
      <tag type="temporal" id="4" name="creditLimit"/>
      <tag type="event" id="5" name="transaction">
        <tag type="snapshot" id="6" name="vendor"/>
        <tag type="temporal" id="7" name="status"/>
        <tag type="snapshot" id="8" name="amount"/>
      </tag>
    </tag>
  </tag>
</stream:structure>)";

// A temporal view consistent with the fragment model: chained creditLimit /
// status versions whose last vtTo is "now", events with vtFrom == vtTo.
constexpr const char* kCreditView = R"(
<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22"
                 vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34"
                 vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
      <amount>38.20</amount>
    </transaction>
    <transaction id="23456" vtFrom="2003-09-10T14:30:12"
                 vtTo="2003-09-10T14:30:12">
      <vendor>ResAris Contaceu</vendor>
      <status vtFrom="2003-09-10T14:30:13"
              vtTo="2003-11-01T10:12:56">charged</status>
      <status vtFrom="2003-11-01T10:12:56" vtTo="now">suspended</status>
      <amount>1200</amount>
    </transaction>
  </account>
  <account id="5678" vtFrom="2000-01-01T00:00:00" vtTo="now">
    <customer>Jane Doe</customer>
    <creditLimit vtFrom="2000-01-01T00:00:00" vtTo="now">3000</creditLimit>
  </account>
</creditAccounts>)";

TagStructure CreditTs() {
  auto r = TagStructure::Parse(kCreditTagStructure);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

// ---- TagStructure -------------------------------------------------------------

TEST(TagStructureTest, ParsesPaperStructure) {
  TagStructure ts = CreditTs();
  ASSERT_NE(ts.root(), nullptr);
  EXPECT_EQ(ts.root()->name, "creditAccounts");
  EXPECT_EQ(ts.root()->type, TagType::kSnapshot);
  EXPECT_EQ(ts.size(), 8u);
  const TagNode* account = ts.root()->Child("account");
  ASSERT_NE(account, nullptr);
  EXPECT_EQ(account->type, TagType::kTemporal);
  EXPECT_TRUE(account->fragmented());
  const TagNode* txn = account->Child("transaction");
  ASSERT_NE(txn, nullptr);
  EXPECT_EQ(txn->type, TagType::kEvent);
  EXPECT_EQ(ts.FindById(7)->name, "status");
  EXPECT_EQ(ts.FindById(99), nullptr);
}

TEST(TagStructureTest, ParsesBareRootTag) {
  auto r = TagStructure::Parse("<tag type=\"snapshot\" id=\"1\" name=\"r\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().root()->name, "r");
}

TEST(TagStructureTest, ToXmlRoundTrips) {
  TagStructure ts = CreditTs();
  auto again = TagStructure::Parse(ts.ToXml());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().ToXml(), ts.ToXml());
}

TEST(TagStructureTest, RejectsBadInput) {
  EXPECT_FALSE(TagStructure::Parse("<tag id=\"1\" name=\"x\"/>").ok());
  EXPECT_FALSE(
      TagStructure::Parse("<tag type=\"bogus\" id=\"1\" name=\"x\"/>").ok());
  EXPECT_FALSE(TagStructure::Parse(
                   "<tag type=\"snapshot\" id=\"1\" name=\"a\">"
                   "<tag type=\"event\" id=\"1\" name=\"b\"/></tag>")
                   .ok());  // duplicate id
  EXPECT_FALSE(TagStructure::Parse("<notatag/>").ok());
}

TEST(TagStructureTest, ProgrammaticConstruction) {
  TagStructure ts = TagStructure::Make("root", TagType::kSnapshot, 1);
  auto child = ts.AddChild(ts.mutable_root(), "ev", TagType::kEvent, 2);
  ASSERT_TRUE(child.ok());
  EXPECT_EQ(ts.root()->Child("ev"), child.value());
  EXPECT_FALSE(
      ts.AddChild(ts.mutable_root(), "dup", TagType::kEvent, 2).ok());
}

// ---- Fragment wire format --------------------------------------------------------

TEST(FragmentTest, ParsesPaperFiller) {
  auto r = Fragment::Parse(R"(
      <filler id="100" tsid="5" validTime="2003-10-23T12:23:34">
        <transaction id="12345">
          <vendor>Southlake Pizza</vendor>
          <amount>38.20</amount>
          <hole id="200" tsid="7"/>
        </transaction>
      </filler>)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Fragment& f = r.value();
  EXPECT_EQ(f.id, 100);
  EXPECT_EQ(f.tsid, 5);
  EXPECT_EQ(f.valid_time.ToString(), "2003-10-23T12:23:34");
  EXPECT_EQ(f.content->name(), "transaction");
  NodePtr hole = f.content->FirstChildElement("hole");
  ASSERT_NE(hole, nullptr);
  EXPECT_EQ(HoleId(*hole).value(), 200);
  EXPECT_EQ(HoleTsid(*hole).value(), 7);
}

TEST(FragmentTest, SerializeParseRoundTrip) {
  Fragment f;
  f.id = 7;
  f.tsid = 3;
  f.valid_time = DateTime::Parse("2003-01-02T03:04:05").value();
  f.content = Node::Element("ev");
  f.content->SetAttr("x", "1");
  auto again = Fragment::Parse(f.ToXml());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again.value().id, 7);
  EXPECT_EQ(again.value().tsid, 3);
  EXPECT_TRUE(Node::DeepEqual(*again.value().content, *f.content));
}

TEST(FragmentTest, ParseStreamOfFillers) {
  auto r = Fragment::ParseStream(
      "<filler id=\"1\" tsid=\"2\" validTime=\"2003-01-01\"><a/></filler>"
      "<filler id=\"2\" tsid=\"2\" validTime=\"2003-01-02\"><a/></filler>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(FragmentTest, RejectsMalformed) {
  EXPECT_FALSE(Fragment::Parse("<filler id=\"1\"><a/></filler>").ok());
  EXPECT_FALSE(Fragment::Parse(
                   "<filler id=\"1\" tsid=\"2\" validTime=\"2003-01-01\"/>")
                   .ok());  // no payload
  EXPECT_FALSE(Fragment::Parse("<filler id=\"x\" tsid=\"2\" "
                               "validTime=\"2003-01-01\"><a/></filler>")
                   .ok());
  EXPECT_FALSE(Fragment::Parse("<notfiller/>").ok());
}

// ---- Fragmenter ------------------------------------------------------------------

class FragmenterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ts_ = CreditTs();
    auto doc = ParseXml(kCreditView);
    ASSERT_TRUE(doc.ok()) << doc.status().ToString();
    doc_ = doc.value();
    Fragmenter fr(&ts_);
    auto frags = fr.Split(*doc_);
    ASSERT_TRUE(frags.ok()) << frags.status().ToString();
    frags_ = std::move(frags).MoveValue();
  }

  std::vector<const Fragment*> WithTsid(int tsid) {
    std::vector<const Fragment*> out;
    for (const Fragment& f : frags_) {
      if (f.tsid == tsid) out.push_back(&f);
    }
    return out;
  }

  TagStructure ts_;
  NodePtr doc_;
  std::vector<Fragment> frags_;
};

TEST_F(FragmenterTest, RootIsFillerZero) {
  ASSERT_FALSE(frags_.empty());
  EXPECT_EQ(frags_[0].id, 0);
  EXPECT_EQ(frags_[0].tsid, 1);
  EXPECT_EQ(frags_[0].content->name(), "creditAccounts");
  // Root content holds only holes for the two accounts.
  EXPECT_EQ(frags_[0].content->children().size(), 2u);
  EXPECT_TRUE(IsHoleElement(*frags_[0].content->children()[0]));
}

TEST_F(FragmenterTest, FragmentCounts) {
  // 1 root + 2 accounts + 3 creditLimit versions + 2 transactions +
  // 3 status versions = 11 fragments.
  EXPECT_EQ(frags_.size(), 11u);
  EXPECT_EQ(WithTsid(2).size(), 2u);  // accounts
  EXPECT_EQ(WithTsid(4).size(), 3u);  // creditLimit versions
  EXPECT_EQ(WithTsid(5).size(), 2u);  // transactions
  EXPECT_EQ(WithTsid(7).size(), 3u);  // status versions
}

TEST_F(FragmenterTest, TemporalSiblingsShareFillerId) {
  auto limits = WithTsid(4);
  // Account 1234's two creditLimit versions share one filler id; account
  // 5678's limit has another.
  EXPECT_EQ(limits[0]->id, limits[1]->id);
  EXPECT_NE(limits[0]->id, limits[2]->id);
  // Versions take their validTime from vtFrom.
  EXPECT_EQ(limits[0]->valid_time.ToString(), "1998-10-10T12:20:22");
  EXPECT_EQ(limits[1]->valid_time.ToString(), "2001-04-23T23:11:08");
}

TEST_F(FragmenterTest, EventsGetDistinctFillerIds) {
  auto txns = WithTsid(5);
  EXPECT_NE(txns[0]->id, txns[1]->id);
}

TEST_F(FragmenterTest, StatusVersionsGroupPerTransaction) {
  auto statuses = WithTsid(7);
  // Transaction 23456 has two status versions sharing an id; 12345 has one.
  EXPECT_NE(statuses[0]->id, statuses[1]->id);
  EXPECT_EQ(statuses[1]->id, statuses[2]->id);
}

TEST_F(FragmenterTest, PayloadsCarryNoLifespanAttrs) {
  for (const Fragment& f : frags_) {
    EXPECT_FALSE(f.content->HasAttr("vtFrom")) << f.ToXml();
    EXPECT_FALSE(f.content->HasAttr("vtTo")) << f.ToXml();
  }
}

TEST_F(FragmenterTest, HolesMatchEmittedFillers) {
  std::set<int64_t> filler_ids;
  for (const Fragment& f : frags_) filler_ids.insert(f.id);
  for (const Fragment& f : frags_) {
    std::vector<const Node*> stack = {f.content.get()};
    while (!stack.empty()) {
      const Node* n = stack.back();
      stack.pop_back();
      if (IsHoleElement(*n)) {
        EXPECT_TRUE(filler_ids.count(HoleId(*n).value()))
            << "dangling hole in " << f.ToXml();
      }
      for (const NodePtr& c : n->children()) {
        if (c->is_element()) stack.push_back(c.get());
      }
    }
  }
}

TEST_F(FragmenterTest, RejectsUndeclaredElements) {
  auto doc = ParseXml("<creditAccounts><bogus/></creditAccounts>");
  ASSERT_TRUE(doc.ok());
  Fragmenter fr(&ts_);
  EXPECT_FALSE(fr.Split(*doc.value()).ok());
}

TEST_F(FragmenterTest, RejectsWrongRoot) {
  auto doc = ParseXml("<other/>");
  ASSERT_TRUE(doc.ok());
  Fragmenter fr(&ts_);
  EXPECT_FALSE(fr.Split(*doc.value()).ok());
}

TEST(FragmenterSyntheticTimeTest, AssignsArrivalTimes) {
  TagStructure ts = TagStructure::Make("root", TagType::kSnapshot, 1);
  ASSERT_TRUE(ts.AddChild(ts.mutable_root(), "ev", TagType::kEvent, 2).ok());
  auto doc = ParseXml("<root><ev/><ev/><ev/></root>");
  ASSERT_TRUE(doc.ok());
  FragmenterOptions opts;
  opts.base_time = DateTime::Parse("2004-01-01T00:00:00").value();
  opts.step_seconds = 10;
  Fragmenter fr(&ts, opts);
  auto frags = fr.Split(*doc.value());
  ASSERT_TRUE(frags.ok());
  ASSERT_EQ(frags.value().size(), 4u);
  // Root consumes the first synthetic tick, events the following ones.
  EXPECT_EQ(frags.value()[1].valid_time.ToString(), "2004-01-01T00:00:10");
  EXPECT_EQ(frags.value()[2].valid_time.ToString(), "2004-01-01T00:00:20");
  EXPECT_EQ(frags.value()[3].valid_time.ToString(), "2004-01-01T00:00:30");
}

// ---- FragmentStore ----------------------------------------------------------------

class StoreTest : public FragmenterTest {
 protected:
  void SetUp() override {
    FragmenterTest::SetUp();
    store_ = std::make_unique<FragmentStore>(CreditTs(), "credit");
    std::vector<Fragment> copy;
    for (const Fragment& f : frags_) {
      Fragment c;
      c.id = f.id;
      c.tsid = f.tsid;
      c.valid_time = f.valid_time;
      c.content = f.content->Clone();
      copy.push_back(std::move(c));
    }
    ASSERT_TRUE(store_->InsertAll(std::move(copy)).ok());
  }

  // A store rebuilt from frags_ with every fragment of filler `id` dropped
  // — what a subscriber holds when that filler was lost in transit.
  std::unique_ptr<FragmentStore> StoreWithout(int64_t id) {
    auto partial = std::make_unique<FragmentStore>(CreditTs(), "credit");
    for (const Fragment& f : frags_) {
      if (f.id == id) continue;
      Fragment c;
      c.id = f.id;
      c.tsid = f.tsid;
      c.valid_time = f.valid_time;
      c.content = f.content->Clone();
      EXPECT_TRUE(partial->Insert(std::move(c)).ok());
    }
    return partial;
  }

  std::unique_ptr<FragmentStore> store_;
};

TEST_F(StoreTest, LinearAndIndexedLookupsAgree) {
  for (const Fragment& f : frags_) {
    auto lin = store_->GetFillerVersions(f.id, /*linear=*/true);
    auto idx = store_->GetFillerVersions(f.id, /*linear=*/false);
    ASSERT_TRUE(lin.ok());
    ASSERT_TRUE(idx.ok());
    ASSERT_EQ(lin.value().size(), idx.value().size());
    for (size_t i = 0; i < lin.value().size(); ++i) {
      EXPECT_TRUE(Node::DeepEqual(*lin.value()[i], *idx.value()[i]));
    }
  }
}

TEST_F(StoreTest, TemporalVersionLifespansChain) {
  // Account 1234's creditLimit versions: find their shared filler id.
  auto limits = WithTsid(4);
  int64_t id = limits[0]->id;
  auto versions = store_->GetFillerVersions(id, false);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 2u);
  EXPECT_EQ(*versions.value()[0]->FindAttr("vtFrom"), "1998-10-10T12:20:22");
  EXPECT_EQ(*versions.value()[0]->FindAttr("vtTo"), "2001-04-23T23:11:08");
  EXPECT_EQ(*versions.value()[1]->FindAttr("vtFrom"), "2001-04-23T23:11:08");
  EXPECT_EQ(*versions.value()[1]->FindAttr("vtTo"), "now");
}

TEST_F(StoreTest, EventVersionsArePoints) {
  auto txns = WithTsid(5);
  auto versions = store_->GetFillerVersions(txns[0]->id, false);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_EQ(*versions.value()[0]->FindAttr("vtFrom"),
            *versions.value()[0]->FindAttr("vtTo"));
}

TEST_F(StoreTest, RootSnapshotHasNoLifespan) {
  auto versions = store_->GetFillerVersions(0, false);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 1u);
  EXPECT_FALSE(versions.value()[0]->HasAttr("vtFrom"));
}

TEST_F(StoreTest, UnknownIdYieldsEmpty) {
  auto versions = store_->GetFillerVersions(999, false);
  ASSERT_TRUE(versions.ok());
  EXPECT_TRUE(versions.value().empty());
}

TEST_F(StoreTest, WrapperShape) {
  auto wrapper = store_->GetFillerWrapper(0, false);
  ASSERT_TRUE(wrapper.ok());
  EXPECT_EQ(wrapper.value()->name(), "filler");
  EXPECT_EQ(*wrapper.value()->FindAttr("id"), "0");
  EXPECT_EQ(wrapper.value()->children().size(), 1u);
}

TEST_F(StoreTest, TsidScanGroupsByFillerId) {
  auto wrappers = store_->GetFillersByTsid(5);
  ASSERT_TRUE(wrappers.ok());
  EXPECT_EQ(wrappers.value().size(), 2u);  // two transactions
  EXPECT_EQ(store_->CountIdsWithTsid(4), 2u);
  EXPECT_EQ(store_->CountIdsWithTsid(99), 0u);
}

TEST_F(StoreTest, HolesAreStampedWithStreamName) {
  auto versions = store_->GetFillerVersions(0, false);
  ASSERT_TRUE(versions.ok());
  NodePtr hole = versions.value()[0]->FirstChildElement("hole");
  ASSERT_NE(hole, nullptr);
  EXPECT_EQ(*hole->FindAttr("stream"), "credit");
}

TEST_F(StoreTest, OutOfOrderInsertionSortsVersions) {
  FragmentStore store(CreditTs(), "s");
  auto mk = [](int64_t id, const char* t, const char* text) {
    Fragment f;
    f.id = id;
    f.tsid = 4;
    f.valid_time = DateTime::Parse(t).value();
    f.content = Node::Element("creditLimit");
    f.content->AddChild(Node::Text(text));
    return f;
  };
  ASSERT_TRUE(store.Insert(mk(10, "2003-06-01", "late")).ok());
  ASSERT_TRUE(store.Insert(mk(10, "2003-01-01", "early")).ok());
  auto versions = store.GetFillerVersions(10, false);
  ASSERT_TRUE(versions.ok());
  ASSERT_EQ(versions.value().size(), 2u);
  EXPECT_EQ(versions.value()[0]->StringValue(), "early");
  EXPECT_EQ(*versions.value()[0]->FindAttr("vtTo"), "2003-06-01T00:00:00");
  EXPECT_EQ(versions.value()[1]->StringValue(), "late");
}

TEST_F(StoreTest, RejectsBadFragments) {
  FragmentStore store(CreditTs(), "s");
  Fragment f;
  f.id = 1;
  f.tsid = 99;  // unknown tsid
  f.valid_time = DateTime(0);
  f.content = Node::Element("x");
  EXPECT_FALSE(store.Insert(std::move(f)).ok());
  Fragment g;
  g.id = 1;
  g.tsid = 4;
  EXPECT_FALSE(store.Insert(std::move(g)).ok());  // no payload
}

// ---- Reconstruction ---------------------------------------------------------------

TEST_F(StoreTest, TemporalizeRoundTripsTheView) {
  auto view = Temporalize(*store_, /*linear_scan=*/false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(Node::DeepEqual(*doc_, *view.value()))
      << "expected:\n"
      << SerializeXml(*doc_, {.pretty = true}) << "\ngot:\n"
      << SerializeXml(*view.value(), {.pretty = true});
}

TEST_F(StoreTest, LinearTemporalizeAgrees) {
  auto lin = Temporalize(*store_, true);
  auto idx = Temporalize(*store_, false);
  ASSERT_TRUE(lin.ok());
  ASSERT_TRUE(idx.ok());
  EXPECT_TRUE(Node::DeepEqual(*lin.value(), *idx.value()));
}

TEST_F(StoreTest, SchemaDrivenTemporalizeAgrees) {
  auto generic = Temporalize(*store_, false);
  auto schema = TemporalizeSchemaDriven(*store_);
  ASSERT_TRUE(generic.ok());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_TRUE(Node::DeepEqual(*generic.value(), *schema.value()))
      << "generic:\n"
      << SerializeXml(*generic.value(), {.pretty = true}) << "\nschema:\n"
      << SerializeXml(*schema.value(), {.pretty = true});
}

TEST_F(StoreTest, MissingFillersTracksDanglingHoles) {
  // The fully-populated store has nothing dangling.
  EXPECT_TRUE(store_->MissingFillers().empty());

  // Without account 5678's fragment, the root's second hole dangles. The
  // account's own children stay merely unreferenced — present fillers
  // whose referencing hole never arrived are not "missing".
  auto accounts = WithTsid(2);
  const int64_t victim = accounts[1]->id;
  auto partial = StoreWithout(victim);
  auto missing = partial->MissingFillers();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], victim);

  // A late (repaired) insert clears the report.
  Fragment repair;
  repair.id = accounts[1]->id;
  repair.tsid = accounts[1]->tsid;
  repair.valid_time = accounts[1]->valid_time;
  repair.content = accounts[1]->content->Clone();
  ASSERT_TRUE(partial->Insert(std::move(repair)).ok());
  EXPECT_TRUE(partial->MissingFillers().empty());
}

TEST_F(StoreTest, HolePoliciesGovernDegradedTemporalization) {
  auto accounts = WithTsid(2);
  const int64_t victim = accounts[1]->id;  // account 5678
  auto partial = StoreWithout(victim);

  // kOmit: the view materializes without the lost subtree, and the stats
  // out-param reports how much is missing.
  TemporalizeStats stats;
  auto omitted =
      Temporalize(*partial, false, xq::HolePolicy::kOmit, &stats);
  ASSERT_TRUE(omitted.ok()) << omitted.status().ToString();
  EXPECT_EQ(stats.unresolved_holes, 1);
  ASSERT_EQ(omitted.value()->children().size(), 1u);
  EXPECT_EQ(omitted.value()->children()[0]->name(), "account");

  // kKeepHole: the dangling hole survives in the view as an explicit
  // placeholder carrying the lost filler's id.
  stats = {};
  auto kept =
      Temporalize(*partial, false, xq::HolePolicy::kKeepHole, &stats);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(stats.unresolved_holes, 1);
  ASSERT_EQ(kept.value()->children().size(), 2u);
  const Node& hole = *kept.value()->children()[1];
  ASSERT_TRUE(IsHoleElement(hole));
  EXPECT_EQ(HoleId(hole).value(), victim);

  // kFail: reconstruction refuses to present an incomplete view.
  EXPECT_FALSE(Temporalize(*partial, false, xq::HolePolicy::kFail).ok());
  EXPECT_FALSE(Temporalize(*partial, true, xq::HolePolicy::kFail).ok());
  EXPECT_FALSE(
      TemporalizeSchemaDriven(*partial, xq::HolePolicy::kFail).ok());

  // All three reconstruction paths agree under each lenient policy.
  for (auto policy : {xq::HolePolicy::kOmit, xq::HolePolicy::kKeepHole}) {
    auto generic = Temporalize(*partial, false, policy);
    auto linear = Temporalize(*partial, true, policy);
    auto schema = TemporalizeSchemaDriven(*partial, policy);
    ASSERT_TRUE(generic.ok());
    ASSERT_TRUE(linear.ok());
    ASSERT_TRUE(schema.ok()) << schema.status().ToString();
    EXPECT_TRUE(Node::DeepEqual(*generic.value(), *linear.value()));
    EXPECT_TRUE(Node::DeepEqual(*generic.value(), *schema.value()))
        << "generic:\n"
        << SerializeXml(*generic.value(), {.pretty = true})
        << "\nschema:\n"
        << SerializeXml(*schema.value(), {.pretty = true});
  }
}

TEST(TemporalizeTest, EmptyStoreIsError) {
  FragmentStore store(CreditTs(), "s");
  EXPECT_FALSE(Temporalize(store, false).ok());
}

// Property: for random model-consistent temporal documents over random tag
// structures, fragment → store → temporalize reproduces the document, and
// both reconstruction variants agree.
class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  struct Gen {
    Random rng;
    TagStructure ts;
    int next_tag_id = 2;
    int64_t clock = 0;

    explicit Gen(uint64_t seed)
        : rng(seed), ts(TagStructure::Make("root", TagType::kSnapshot, 1)) {}

    void GrowTags(TagNode* parent, int depth) {
      if (depth == 0) return;
      int n = 1 + static_cast<int>(rng.Uniform(3));
      for (int i = 0; i < n; ++i) {
        TagType type = static_cast<TagType>(rng.Uniform(3));
        auto child = ts.AddChild(parent,
                                 "t" + std::to_string(next_tag_id), type,
                                 next_tag_id);
        ++next_tag_id;
        if (child.ok() && rng.Bernoulli(0.5)) {
          GrowTags(child.value(), depth - 1);
        }
      }
    }

    std::string NextTime() {
      clock += 1 + static_cast<int64_t>(rng.Uniform(1000));
      return DateTime(clock).ToString();
    }

    NodePtr BuildElement(const TagNode* tag) {
      NodePtr e = Node::Element(tag->name);
      if (rng.Bernoulli(0.4)) {
        e->AddChild(Node::Text(rng.Word(5)));
      }
      for (const auto& c : tag->children) {
        BuildChildren(c.get(), e.get());
      }
      return e;
    }

    void BuildChildren(const TagNode* tag, Node* parent) {
      switch (tag->type) {
        case TagType::kSnapshot: {
          if (rng.Bernoulli(0.8)) {
            parent->AddChild(BuildElement(tag));
          }
          break;
        }
        case TagType::kTemporal: {
          // One logical element (no id attr): chained versions, last open.
          int versions = 1 + static_cast<int>(rng.Uniform(3));
          std::vector<std::string> times;
          for (int i = 0; i <= versions; ++i) times.push_back(NextTime());
          for (int i = 0; i < versions; ++i) {
            NodePtr v = BuildElement(tag);
            v->SetAttr("vtFrom", times[static_cast<size_t>(i)]);
            v->SetAttr("vtTo", i + 1 == versions
                                   ? "now"
                                   : times[static_cast<size_t>(i + 1)]);
            parent->AddChild(std::move(v));
          }
          break;
        }
        case TagType::kEvent: {
          int events = static_cast<int>(rng.Uniform(3));
          for (int i = 0; i < events; ++i) {
            NodePtr v = BuildElement(tag);
            std::string t = NextTime();
            v->SetAttr("vtFrom", t);
            v->SetAttr("vtTo", t);
            parent->AddChild(std::move(v));
          }
          break;
        }
      }
    }
  };
};

TEST_P(RoundTripPropertyTest, FragmentThenTemporalizeIsIdentity) {
  Gen gen(GetParam());
  gen.GrowTags(gen.ts.mutable_root(), 3);
  NodePtr doc = gen.BuildElement(gen.ts.root());

  Fragmenter fr(&gen.ts);
  auto frags = fr.Split(*doc);
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();

  // Reconstruction must be identical with and without the stream stamp, so
  // use an unnamed store (no hole stamping) for the equality check.
  auto ts2 = TagStructure::Parse(gen.ts.ToXml());
  ASSERT_TRUE(ts2.ok());
  FragmentStore store(std::move(ts2).MoveValue(), "");
  ASSERT_TRUE(store.InsertAll(std::move(frags).MoveValue()).ok());

  auto view = Temporalize(store, /*linear_scan=*/false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_TRUE(Node::DeepEqual(*doc, *view.value()))
      << "seed " << GetParam() << "\nexpected:\n"
      << SerializeXml(*doc, {.pretty = true}) << "\ngot:\n"
      << SerializeXml(*view.value(), {.pretty = true});

  auto schema_view = TemporalizeSchemaDriven(store);
  ASSERT_TRUE(schema_view.ok());
  EXPECT_TRUE(Node::DeepEqual(*view.value(), *schema_view.value()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range<uint64_t>(0, 32));

}  // namespace
}  // namespace xcql::frag
