// The paper's central correctness claim (Fig. 2): querying the fragments
// directly — with (QaC) or without (QaC+) full hole resolution along the
// path — returns the same results as materializing the temporal view and
// querying it (CaQ). This suite runs a corpus of XCQL queries under all
// three methods and demands identical results, plus scenario tests for the
// paper's worked examples (the filler-5 suspension, Queries 1 and 2, the
// radar coincidence join).
#include <gtest/gtest.h>

#include "test_util.h"
#include "xcql/executor.h"

namespace xcql::lang {
namespace {

class EquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = testutil::MakeCreditStream();
    ASSERT_NE(store_, nullptr);
    ASSERT_TRUE(exec_.RegisterStream(store_.get()).ok());
  }

  std::string Run(const std::string& q, ExecMethod m) {
    ExecOptions opts;
    opts.method = m;
    // Evaluate strictly after the last event; at the exact boundary instant
    // both versions of an update are valid (closed intervals).
    opts.now = DateTime::Parse("2003-12-01T00:00:00").value();
    auto r = exec_.Execute(q, opts);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    return testutil::Render(r.value());
  }

  // Runs under all three methods; returns the common result, failing the
  // test if any two differ.
  std::string RunAll(const std::string& q) {
    std::string caq = Run(q, ExecMethod::kCaQ);
    std::string qac = Run(q, ExecMethod::kQaC);
    std::string qacp = Run(q, ExecMethod::kQaCPlus);
    EXPECT_EQ(caq, qac) << q;
    EXPECT_EQ(qac, qacp) << q;
    return caq;
  }

  std::unique_ptr<frag::FragmentStore> store_;
  QueryExecutor exec_;
};

TEST_F(EquivalenceTest, AccountIds) {
  EXPECT_EQ(RunAll("for $a in stream(\"credit\")/creditAccounts/account "
                   "return string($a/@id)"),
            "1234 5678");
}

TEST_F(EquivalenceTest, DescendantCounts) {
  EXPECT_EQ(RunAll("count(stream(\"credit\")//account)"), "2");
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction)"), "2");
  EXPECT_EQ(RunAll("count(stream(\"credit\")//status)"), "3");
  EXPECT_EQ(RunAll("count(stream(\"credit\")//creditLimit)"), "3");
  EXPECT_EQ(RunAll("count(stream(\"credit\")//customer)"), "2");
}

TEST_F(EquivalenceTest, SnapshotNavigation) {
  EXPECT_EQ(
      RunAll("stream(\"credit\")/creditAccounts/account/customer/text()"),
      "John Smith Jane Doe");
}

TEST_F(EquivalenceTest, ValuePredicateOnAmount) {
  EXPECT_EQ(
      RunAll("stream(\"credit\")//transaction[amount > 1000]/vendor/text()"),
      "ResAris Contaceu");
}

TEST_F(EquivalenceTest, ExistentialStatusPredicate) {
  // Without temporal qualification, the suspended transaction still has a
  // past "charged" status version (existential semantics).
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction"
                   "[amount > 1000][status = \"charged\"])"),
            "1");
}

TEST_F(EquivalenceTest, PaperSuspensionScenario) {
  // Paper §6.1: with ?[now], the transaction suspended by filler 5 must not
  // be reported as charged.
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction"
                   "[amount > 1000][status?[now] = \"charged\"])"),
            "0");
  // #[last] gives the same answer (the paper's remark).
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction"
                   "[amount > 1000][status#[last] = \"charged\"])"),
            "0");
}

TEST_F(EquivalenceTest, CurrentCreditLimits) {
  EXPECT_EQ(RunAll("for $a in stream(\"credit\")//account "
                   "return $a/creditLimit?[now]/text()"),
            "5000 3000");
}

TEST_F(EquivalenceTest, VersionProjections) {
  EXPECT_EQ(RunAll("stream(\"credit\")//account[@id = \"1234\"]"
                   "/creditLimit#[1]/text()"),
            "2000");
  EXPECT_EQ(RunAll("stream(\"credit\")//account[@id = \"1234\"]"
                   "/creditLimit#[last]/text()"),
            "5000");
  // The projection applies to the whole selected sequence (3 creditLimit
  // versions across both accounts), not per account.
  EXPECT_EQ(RunAll("count(stream(\"credit\")//account/creditLimit#[1,10])"),
            "3");
}

TEST_F(EquivalenceTest, IntervalProjectionWindow) {
  EXPECT_EQ(RunAll("stream(\"credit\")//transaction"
                   "?[2003-09-01,2003-10-01]/vendor/text()"),
            "ResAris Contaceu");
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction"
                   "?[2003-01-01,2003-12-31])"),
            "2");
}

TEST_F(EquivalenceTest, WildcardStep) {
  EXPECT_EQ(RunAll("count(stream(\"credit\")//account/*)"), "7");
}

TEST_F(EquivalenceTest, Aggregation) {
  EXPECT_EQ(RunAll("sum(stream(\"credit\")//transaction/amount)"), "1238.2");
  EXPECT_EQ(RunAll("max(stream(\"credit\")//creditLimit/text())"), "5000");
}

TEST_F(EquivalenceTest, Quantifiers) {
  EXPECT_EQ(RunAll("some $t in stream(\"credit\")//transaction "
                   "satisfies $t/amount > 1000"),
            "true");
  EXPECT_EQ(RunAll("every $t in stream(\"credit\")//transaction "
                   "satisfies $t/amount > 1000"),
            "false");
}

TEST_F(EquivalenceTest, FlworWithOrderBy) {
  EXPECT_EQ(RunAll("for $a in stream(\"credit\")//account "
                   "order by $a/customer return string($a/@id)"),
            "5678 1234");
}

TEST_F(EquivalenceTest, ConstructedResults) {
  EXPECT_EQ(RunAll("for $a in stream(\"credit\")//account "
                   "where $a/customer = \"Jane Doe\" "
                   "return <hit id={$a/@id}>{$a/customer/text()}</hit>"),
            "<hit id=\"5678\">Jane Doe</hit>");
}

TEST_F(EquivalenceTest, ResultsWithNestedFragmentsMaterialize) {
  // Returning whole transactions: QaC/QaC+ results contain status holes
  // that the final materialization must resolve identically to CaQ.
  EXPECT_EQ(RunAll("stream(\"credit\")//transaction[amount > 1000]"),
            Run("stream(\"credit\")//transaction[amount > 1000]",
                ExecMethod::kCaQ));
  std::string r = Run("stream(\"credit\")//transaction[amount > 1000]",
                      ExecMethod::kQaC);
  EXPECT_EQ(r.find("hole"), std::string::npos) << r;
  EXPECT_NE(r.find("suspended"), std::string::npos) << r;
}

TEST_F(EquivalenceTest, PaperQuery1MaxedOutAccounts) {
  const char* q = R"(
    for $a in stream("credit")/creditAccounts/account
    where sum($a/transaction?[2003-11-01,2003-12-01]
              [status = "charged"]/amount) >= $a/creditLimit?[now]
    return <account>{attribute id {$a/@id}, $a/customer}</account>)";
  EXPECT_EQ(RunAll(q), "");
}

TEST_F(EquivalenceTest, PaperQuery2Fraud) {
  const char* q = R"(
    for $a in stream("credit")/creditAccounts/account
    where sum($a/transaction?[now - PT1H, now]
              [status = "charged"]/amount) >=
          max($a/creditLimit?[now] * 0.9, 5000)
    return <alert><account id={$a/@id}>{$a/customer/text()}</account></alert>)";
  EXPECT_EQ(RunAll(q), "");
}

TEST_F(EquivalenceTest, FilterChainsKeepSchemaPositions) {
  // Predicates on a parenthesized fragmented expression: the filter's
  // result keeps its schema position, so the next step still resolves
  // holes correctly.
  EXPECT_EQ(RunAll("(stream(\"credit\")//account)[@id = \"1234\"]"
                   "/creditLimit#[last]/text()"),
            "5000");
  EXPECT_EQ(RunAll("count((stream(\"credit\")//transaction)[2]/status)"),
            "2");
}

TEST_F(EquivalenceTest, QuantifierBindingsKeepSchemaPositions) {
  EXPECT_EQ(RunAll("some $t in stream(\"credit\")//transaction "
                   "satisfies $t/status = \"suspended\""),
            "true");
  EXPECT_EQ(RunAll("every $a in stream(\"credit\")//account "
                   "satisfies count($a/creditLimit) > 0"),
            "true");
}

TEST_F(EquivalenceTest, LetBindingsKeepSchemaPositions) {
  EXPECT_EQ(RunAll("let $ts := stream(\"credit\")//transaction "
                   "return count($ts/status)"),
            "3");
}

TEST_F(EquivalenceTest, SetOperatorsOverFragmentedData) {
  EXPECT_EQ(RunAll("count(stream(\"credit\")//transaction | "
                   "stream(\"credit\")//creditLimit)"),
            "5");
  // Account 1234 has customer + 2 creditLimit versions + 2 transactions.
  EXPECT_EQ(RunAll("for $a in stream(\"credit\")//account "
                   "return count($a/* except $a/customer)"),
            "4 1");
}

TEST_F(EquivalenceTest, VtAccessors) {
  EXPECT_EQ(RunAll("for $t in stream(\"credit\")//transaction "
                   "return vtFrom($t)"),
            "2003-10-23T12:23:34 2003-09-10T14:30:12");
}

TEST_F(EquivalenceTest, ExplicitNowOption) {
  // Pin `now` before the suspension: the $1200 transaction is then still
  // "charged" under ?[now].
  ExecOptions opts;
  opts.method = ExecMethod::kQaCPlus;
  opts.now = DateTime::Parse("2003-10-30T00:00:00").value();
  auto r = exec_.Execute(
      "count(stream(\"credit\")//transaction"
      "[amount > 1000][status?[now] = \"charged\"])",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(testutil::Render(r.value()), "1");
}

TEST_F(EquivalenceTest, CachedCaQViewsStayFreshAcrossUpdates) {
  ExecOptions opts;
  opts.method = ExecMethod::kCaQ;
  opts.cache_materialized_views = true;
  opts.now = DateTime::Parse("2003-12-01T00:00:00").value();
  const char* q = "count(stream(\"credit\")//status)";
  auto first = exec_.Execute(q, opts);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(testutil::Render(first.value()), "3");
  // A cached re-run returns the same result…
  auto again = exec_.Execute(q, opts);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(testutil::Render(again.value()), "3");
  // …and a new status version invalidates the cache (revision bump).
  int64_t status_id = -1;
  for (int64_t cand = 0; cand < 32 && status_id < 0; ++cand) {
    auto versions = store_->GetFillerVersions(cand, false);
    if (versions.ok() && !versions.value().empty() &&
        versions.value().back()->name() == "status") {
      status_id = cand;
    }
  }
  ASSERT_GE(status_id, 0);
  frag::Fragment f;
  f.id = status_id;
  f.tsid = 7;
  f.valid_time = DateTime::Parse("2003-11-25T00:00:00").value();
  f.content = Node::Element("status");
  f.content->AddChild(Node::Text("reviewed"));
  ASSERT_TRUE(store_->Insert(std::move(f)).ok());
  auto after = exec_.Execute(q, opts);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(testutil::Render(after.value()), "4");
}

TEST_F(EquivalenceTest, LinearOverrideDoesNotChangeResults) {
  ExecOptions a;
  a.method = ExecMethod::kQaC;
  a.linear_get_fillers = true;
  ExecOptions b = a;
  b.linear_get_fillers = false;
  const char* q = "stream(\"credit\")//transaction[amount > 1000]";
  auto ra = exec_.Execute(q, a);
  auto rb = exec_.Execute(q, b);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  EXPECT_EQ(testutil::Render(ra.value()), testutil::Render(rb.value()));
}

// ---- Multi-stream coincidence (paper §2, radar example) ----------------------------

constexpr const char* kRadarTs = R"(
<tag type="snapshot" id="1" name="radar">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="frequency"/>
    <tag type="snapshot" id="4" name="angle"/>
  </tag>
</tag>)";

class RadarTest : public ::testing::Test {
 protected:
  void SetUp() override {
    radar1_ = testutil::MakeStream("radar1", kRadarTs, R"(
      <radar>
        <event vtFrom="2004-05-01T10:00:00" vtTo="2004-05-01T10:00:00">
          <frequency>101</frequency><angle>45</angle>
        </event>
        <event vtFrom="2004-05-01T10:00:07" vtTo="2004-05-01T10:00:07">
          <frequency>99</frequency><angle>30</angle>
        </event>
      </radar>)");
    radar2_ = testutil::MakeStream("radar2", kRadarTs, R"(
      <radar>
        <event vtFrom="2004-05-01T10:00:01" vtTo="2004-05-01T10:00:01">
          <frequency>101</frequency><angle>45</angle>
        </event>
        <event vtFrom="2004-05-01T10:00:30" vtTo="2004-05-01T10:00:30">
          <frequency>99</frequency><angle>60</angle>
        </event>
      </radar>)");
    ASSERT_NE(radar1_, nullptr);
    ASSERT_NE(radar2_, nullptr);
    ASSERT_TRUE(exec_.RegisterStream(radar1_.get()).ok());
    ASSERT_TRUE(exec_.RegisterStream(radar2_.get()).ok());
  }

  std::unique_ptr<frag::FragmentStore> radar1_;
  std::unique_ptr<frag::FragmentStore> radar2_;
  QueryExecutor exec_;
};

TEST_F(RadarTest, CoincidenceJoinAcrossStreams) {
  // Paper §2 example 2: join the two radar streams on frequency within a
  // one-second window. Only the 101 MHz detections coincide.
  const char* q = R"(
    for $r in stream("radar1")//event,
        $s in stream("radar2")//event
             ?[vtFrom($r) - PT1S, vtTo($r) + PT1S]
    where $r/frequency = $s/frequency
    return <position>{ triangulate($r/angle, $s/angle) }</position>)";
  for (ExecMethod m :
       {ExecMethod::kCaQ, ExecMethod::kQaC, ExecMethod::kQaCPlus}) {
    ExecOptions opts;
    opts.method = m;
    auto r = exec_.Execute(q, opts);
    ASSERT_TRUE(r.ok()) << ExecMethodName(m) << ": "
                        << r.status().ToString();
    EXPECT_EQ(testutil::Render(r.value()),
              "<position>50.000 50.000</position>")
        << ExecMethodName(m);
  }
}

TEST_F(EquivalenceTest, QaCRewriteReportsMissingFillers) {
  // A transaction version whose status filler never arrived: the QaC
  // rewrite fetches filler 301 by id (hole/@id), finds nothing, and must
  // surface the incompleteness per the hole policy instead of silently
  // returning an empty wrapper. Reuse an existing transaction filler id so
  // the dangling hole is reachable from the account path.
  auto wrappers = store_->GetFillersByTsid(5);
  ASSERT_TRUE(wrappers.ok());
  ASSERT_FALSE(wrappers.value().empty());
  const std::string* idattr = wrappers.value().front()->FindAttr("id");
  ASSERT_NE(idattr, nullptr);
  frag::Fragment tx;
  tx.id = std::stoll(*idattr);
  tx.tsid = 5;
  tx.valid_time = DateTime::Parse("2003-11-02T12:00:00").value();
  tx.content = Node::Element("transaction");
  tx.content->SetAttr("id", "77777");
  tx.content->AddChild(frag::MakeHole(301, 7));  // status never arrives
  ASSERT_TRUE(store_->Insert(std::move(tx)).ok());

  const char* q = "count(stream(\"credit\")//status)";
  ExecOptions opts;
  opts.method = ExecMethod::kQaC;
  opts.now = DateTime::Parse("2003-12-01T00:00:00").value();
  ExecStats stats;
  opts.stats = &stats;
  auto r = exec_.Execute(q, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(testutil::Render(r.value()), "3");  // the 3 complete statuses
  EXPECT_GE(stats.holes_unresolved, 1);

  // kFail would rather have no answer than a partial one.
  ExecOptions fail = opts;
  fail.hole_policy = xq::HolePolicy::kFail;
  auto rf = exec_.Execute(q, fail);
  ASSERT_FALSE(rf.ok());
  EXPECT_EQ(rf.status().code(), StatusCode::kNotFound)
      << rf.status().ToString();
  EXPECT_NE(rf.status().ToString().find("301"), std::string::npos)
      << rf.status().ToString();

  // The policies differ on what a missing filler *looks like*: kOmit drops
  // it from the sequence entirely (matching materialized evaluation, which
  // splices nothing where the unresolvable hole sat), while kKeepHole keeps
  // a wrapper holding the unresolved hole marker.
  const char* direct = "count(get_fillers(301))";
  auto romit = exec_.Execute(direct, opts);  // opts defaults to kOmit
  ASSERT_TRUE(romit.ok()) << romit.status().ToString();
  EXPECT_EQ(testutil::Render(romit.value()), "0");

  ExecOptions keep = opts;
  keep.hole_policy = xq::HolePolicy::kKeepHole;
  auto rkeep = exec_.Execute(direct, keep);
  ASSERT_TRUE(rkeep.ok()) << rkeep.status().ToString();
  EXPECT_EQ(testutil::Render(rkeep.value()), "1");
}

TEST_F(RadarTest, WindowExcludesDistantEvents) {
  // Widening the window to a minute lets the 99 MHz pair coincide too.
  const char* q = R"(
    count(for $r in stream("radar1")//event,
              $s in stream("radar2")//event
                   ?[vtFrom($r) - PT1M, vtTo($r) + PT1M]
          where $r/frequency = $s/frequency
          return $s))";
  ExecOptions opts;
  opts.method = ExecMethod::kQaCPlus;
  auto r = exec_.Execute(q, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(testutil::Render(r.value()), "2");
}

}  // namespace
}  // namespace xcql::lang
