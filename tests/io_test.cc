// Tests for file utilities and fragment-stream persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/file_util.h"
#include "frag/io.h"

namespace xcql {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileUtilTest, WriteThenReadRoundTrips) {
  std::string path = TempPath("xcql_io_test.txt");
  std::string content = "hello\nworld\0binary ok";
  content += std::string(1, '\0');
  ASSERT_TRUE(WriteStringToFile(path, content).ok());
  auto back = ReadFileToString(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), content);
  std::remove(path.c_str());
}

TEST(FileUtilTest, MissingFileIsNotFound) {
  auto r = ReadFileToString("/definitely/not/here.xml");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FileUtilTest, UnwritablePathIsError) {
  EXPECT_FALSE(WriteStringToFile("/nonexistent-dir/x.txt", "x").ok());
}

frag::Fragment MakeFragment(int64_t id, int tsid, const char* time,
                            const char* payload_name) {
  frag::Fragment f;
  f.id = id;
  f.tsid = tsid;
  f.valid_time = DateTime::Parse(time).value();
  f.content = Node::Element(payload_name);
  f.content->AddChild(Node::Text("v" + std::to_string(id)));
  return f;
}

TEST(FragmentIoTest, SerializeParseRoundTrips) {
  std::vector<frag::Fragment> frags;
  frags.push_back(MakeFragment(0, 1, "2004-01-01T00:00:00", "root"));
  frags.push_back(MakeFragment(1, 2, "2004-01-01T00:01:00", "ev"));
  frags.push_back(MakeFragment(1, 2, "2004-01-01T00:02:00", "ev"));

  std::string xml = frag::SerializeFragmentStream(frags);
  EXPECT_NE(xml.find("<fragments>"), std::string::npos);
  auto back = frag::ParseFragmentStream(xml);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 3u);
  EXPECT_EQ(back.value()[1].id, 1);
  EXPECT_EQ(back.value()[1].tsid, 2);
  EXPECT_EQ(back.value()[2].valid_time.ToString(), "2004-01-01T00:02:00");
  EXPECT_TRUE(Node::DeepEqual(*back.value()[0].content, *frags[0].content));
}

TEST(FragmentIoTest, ParsesBareFillerSequence) {
  auto r = frag::ParseFragmentStream(
      "<filler id=\"1\" tsid=\"2\" validTime=\"2004-01-01\"><a/></filler>"
      "<filler id=\"2\" tsid=\"2\" validTime=\"2004-01-02\"><a/></filler>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(FragmentIoTest, FileRoundTrip) {
  std::vector<frag::Fragment> frags;
  frags.push_back(MakeFragment(7, 1, "2004-05-05T05:05:05", "x"));
  std::string path = TempPath("xcql_frags_test.xml");
  ASSERT_TRUE(frag::WriteFragmentStreamFile(path, frags).ok());
  auto back = frag::ReadFragmentStreamFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back.value().size(), 1u);
  EXPECT_EQ(back.value()[0].id, 7);
  std::remove(path.c_str());
}

TEST(FragmentIoTest, RejectsMalformedStream) {
  EXPECT_FALSE(frag::ParseFragmentStream("<fragments><junk/></fragments>")
                   .ok());
  EXPECT_FALSE(frag::ParseFragmentStream("not xml").ok());
}

TEST(FragmentIoTest, EmptyStreamIsEmpty) {
  auto r = frag::ParseFragmentStream("<fragments></fragments>");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().empty());
}

}  // namespace
}  // namespace xcql
