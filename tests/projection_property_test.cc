// Property tests for the XCQL projections (DESIGN.md §4): over randomized
// temporal documents and randomized projection intervals,
//   * clipping     — every lifespan in the output lies within [tb, te];
//   * idempotence  — projecting twice with the same interval is a no-op;
//   * monotonicity — narrowing the interval never adds elements;
//   * versions     — #[last] equals ?[now] for single-version selection of
//                    temporal chains (the paper's §6.1 remark).
#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/serializer.h"
#include "xq/eval.h"

namespace xcql::xq {
namespace {

constexpr int64_t kBase = 1'072'915'200;  // 2004-01-01T00:00:00

// Random temporal tree: nested elements, some with chained lifespans, some
// events, some snapshots, with text leaves.
class Gen {
 public:
  explicit Gen(uint64_t seed) : rng_(seed) {}

  NodePtr Build() {
    NodePtr root = Node::Element("root");
    Fill(root.get(), 3);
    return root;
  }

  DateTime RandomInstant() {
    return DateTime(kBase + rng_.UniformRange(0, kSpan));
  }

 private:
  static constexpr int64_t kSpan = 10'000'000;

  void Fill(Node* parent, int depth) {
    int children = 1 + static_cast<int>(rng_.Uniform(4));
    for (int i = 0; i < children; ++i) {
      NodePtr e = Node::Element("n" + std::to_string(rng_.Uniform(4)));
      switch (rng_.Uniform(3)) {
        case 0: {  // temporal chain of 1..3 versions, last open
          int64_t t = kBase + rng_.UniformRange(0, kSpan / 2);
          int versions = 1 + static_cast<int>(rng_.Uniform(3));
          for (int v = 0; v < versions; ++v) {
            NodePtr ver = Node::Element(e->name());
            int64_t next = t + 1 + rng_.UniformRange(0, kSpan / 8);
            ver->SetAttr("vtFrom", DateTime(t).ToString());
            ver->SetAttr("vtTo", v + 1 == versions ? "now"
                                                   : DateTime(next).ToString());
            ver->AddChild(Node::Text(rng_.Word(4)));
            if (depth > 0 && rng_.Bernoulli(0.4)) Fill(ver.get(), depth - 1);
            parent->AddChild(std::move(ver));
            t = next;
          }
          continue;  // versions already added
        }
        case 1: {  // event
          DateTime t = RandomInstant();
          e->SetAttr("vtFrom", t.ToString());
          e->SetAttr("vtTo", t.ToString());
          e->AddChild(Node::Text(rng_.Word(3)));
          break;
        }
        default:  // snapshot
          e->AddChild(Node::Text(rng_.Word(5)));
          if (depth > 0 && rng_.Bernoulli(0.5)) Fill(e.get(), depth - 1);
          break;
      }
      parent->AddChild(std::move(e));
    }
  }

  Random rng_;
};

// Walks the projected output checking every lifespan lies within [tb, te].
void CheckClipped(const Node& n, DateTime tb, DateTime te,
                  const EvalContext& ctx) {
  const std::string* from = n.FindAttr("vtFrom");
  const std::string* to = n.FindAttr("vtTo");
  if (from != nullptr && to != nullptr) {
    DateTime f = DateTime::Parse(*from).value();
    DateTime t = DateTime::Parse(*to).value();
    if (t == DateTime::End()) t = ctx.now;
    EXPECT_GE(f.seconds(), tb.seconds()) << SerializeXml(n);
    EXPECT_LE(t.seconds(), te.seconds()) << SerializeXml(n);
    EXPECT_LE(f.seconds(), t.seconds()) << SerializeXml(n);
  }
  for (const NodePtr& c : n.children()) {
    if (c->is_element()) CheckClipped(*c, tb, te, ctx);
  }
}

size_t CountElements(const Sequence& seq) {
  size_t n = 0;
  for (const auto& item : seq) {
    if (IsNode(item)) n += AsNode(item)->SubtreeSize();
  }
  return n;
}

std::string RenderAll(const Sequence& seq) {
  std::string out;
  for (const auto& item : seq) {
    if (IsNode(item)) out += SerializeXml(*AsNode(item));
  }
  return out;
}

class ProjectionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProjectionPropertyTest, ClippingIdempotenceMonotonicity) {
  Gen gen(GetParam());
  NodePtr doc = gen.Build();
  FunctionRegistry registry = FunctionRegistry::Builtins();
  EvalContext ctx;
  ctx.functions = &registry;
  ctx.now = DateTime(kBase + 20'000'000);

  Sequence input = SingletonNode(doc);
  Gen bounds_gen(GetParam() + 500);
  for (int round = 0; round < 6; ++round) {
    DateTime a = bounds_gen.RandomInstant();
    DateTime b = bounds_gen.RandomInstant();
    DateTime tb = std::min(a, b);
    DateTime te = std::max(a, b);

    auto once = IntervalProjection(ctx, input, tb, te);
    ASSERT_TRUE(once.ok()) << once.status().ToString();
    // Clipping.
    for (const auto& item : once.value()) {
      if (IsNode(item)) CheckClipped(*AsNode(item), tb, te, ctx);
    }
    // Idempotence.
    auto twice = IntervalProjection(ctx, once.value(), tb, te);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(RenderAll(once.value()), RenderAll(twice.value()))
        << "seed " << GetParam();

    // Monotonicity: a strictly narrower interval keeps no more elements.
    int64_t shrink = (te.seconds() - tb.seconds()) / 4;
    DateTime tb2(tb.seconds() + shrink);
    DateTime te2(te.seconds() - shrink);
    if (tb2 <= te2) {
      auto narrow = IntervalProjection(ctx, input, tb2, te2);
      ASSERT_TRUE(narrow.ok());
      EXPECT_LE(CountElements(narrow.value()), CountElements(once.value()));
      // And narrowing the already-projected result equals projecting the
      // original with the narrow interval (composition).
      auto composed = IntervalProjection(ctx, once.value(), tb2, te2);
      ASSERT_TRUE(composed.ok());
      EXPECT_EQ(RenderAll(composed.value()), RenderAll(narrow.value()))
          << "seed " << GetParam();
    }
  }
}

TEST_P(ProjectionPropertyTest, FullRangeProjectionKeepsEverything) {
  Gen gen(GetParam() + 900);
  NodePtr doc = gen.Build();
  FunctionRegistry registry = FunctionRegistry::Builtins();
  EvalContext ctx;
  ctx.functions = &registry;
  ctx.now = DateTime(kBase + 20'000'000);
  Sequence input = SingletonNode(doc);
  auto all = IntervalProjection(ctx, input, DateTime::Start(), ctx.now);
  ASSERT_TRUE(all.ok());
  // Same number of elements (lifespans may be rewritten to resolved forms).
  EXPECT_EQ(CountElements(all.value()), doc->SubtreeSize());
}

TEST_P(ProjectionPropertyTest, VersionProjectionSelectsWithinBounds) {
  Gen gen(GetParam() + 1300);
  NodePtr doc = gen.Build();
  FunctionRegistry registry = FunctionRegistry::Builtins();
  EvalContext ctx;
  ctx.functions = &registry;
  ctx.now = DateTime(kBase + 20'000'000);

  // Collect any element's children as a version sequence.
  Sequence versions;
  for (const NodePtr& c : doc->children()) {
    if (c->is_element()) versions.emplace_back(c);
  }
  ASSERT_FALSE(versions.empty());
  int64_t n = static_cast<int64_t>(versions.size());
  auto all = VersionProjection(ctx, versions, 1, n);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value().size(), versions.size());
  auto first = VersionProjection(ctx, versions, 1, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 1u);
  auto beyond = VersionProjection(ctx, versions, n + 1, n + 5);
  ASSERT_TRUE(beyond.ok());
  EXPECT_TRUE(beyond.value().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionPropertyTest,
                         ::testing::Range<uint64_t>(0, 16));

}  // namespace
}  // namespace xcql::xq
