// Shared fixtures for the XCQL-layer tests: the paper's credit-card stream
// (tag structure + a model-consistent temporal view), stream construction
// helpers, and result rendering.
#ifndef XCQL_TESTS_TEST_UTIL_H_
#define XCQL_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "frag/tag_structure.h"
#include "xml/parser.h"
#include "xml/serializer.h"
#include "xq/value.h"

namespace xcql::testutil {

inline constexpr const char* kCreditTagStructure = R"(
<stream:structure>
  <tag type="snapshot" id="1" name="creditAccounts">
    <tag type="temporal" id="2" name="account">
      <tag type="snapshot" id="3" name="customer"/>
      <tag type="temporal" id="4" name="creditLimit"/>
      <tag type="event" id="5" name="transaction">
        <tag type="snapshot" id="6" name="vendor"/>
        <tag type="temporal" id="7" name="status"/>
        <tag type="snapshot" id="8" name="amount"/>
      </tag>
    </tag>
  </tag>
</stream:structure>)";

// Paper §3.1 data, normalized to the fragment model (chained versions, the
// last one open at "now"; events with vtFrom == vtTo). Account 1234 has a
// small charged transaction and the $1200 transaction whose status was
// later suspended (fillers 3–5 of §4.2); account 5678 is quiet.
inline constexpr const char* kCreditView = R"(
<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22"
                 vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34"
                 vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
      <amount>38.20</amount>
    </transaction>
    <transaction id="23456" vtFrom="2003-09-10T14:30:12"
                 vtTo="2003-09-10T14:30:12">
      <vendor>ResAris Contaceu</vendor>
      <status vtFrom="2003-09-10T14:30:13"
              vtTo="2003-11-01T10:12:56">charged</status>
      <status vtFrom="2003-11-01T10:12:56" vtTo="now">suspended</status>
      <amount>1200</amount>
    </transaction>
  </account>
  <account id="5678" vtFrom="2000-01-01T00:00:00" vtTo="now">
    <customer>Jane Doe</customer>
    <creditLimit vtFrom="2000-01-01T00:00:00" vtTo="now">3000</creditLimit>
  </account>
</creditAccounts>)";

/// Builds a named fragment store by fragmenting `view_xml` under `ts_xml`.
inline std::unique_ptr<frag::FragmentStore> MakeStream(
    const std::string& name, const char* ts_xml, const char* view_xml) {
  auto ts = frag::TagStructure::Parse(ts_xml);
  if (!ts.ok()) return nullptr;
  auto doc = ParseXml(view_xml);
  if (!doc.ok()) return nullptr;
  auto ts_for_frag = frag::TagStructure::Parse(ts_xml);
  if (!ts_for_frag.ok()) return nullptr;
  frag::Fragmenter fragmenter(&ts_for_frag.value());
  auto frags = fragmenter.Split(*doc.value());
  if (!frags.ok()) return nullptr;
  auto store = std::make_unique<frag::FragmentStore>(std::move(ts).MoveValue(),
                                                     name);
  if (!store->InsertAll(std::move(frags).MoveValue()).ok()) return nullptr;
  return store;
}

inline std::unique_ptr<frag::FragmentStore> MakeCreditStream() {
  return MakeStream("credit", kCreditTagStructure, kCreditView);
}

/// Renders a result sequence: nodes serialized, atomics lexical,
/// space-separated.
inline std::string Render(const xq::Sequence& seq) {
  std::string out;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i > 0) out += " ";
    if (xq::IsNode(seq[i])) {
      out += SerializeXml(*xq::AsNode(seq[i]));
    } else {
      out += xq::AsAtomic(seq[i]).ToStringValue();
    }
  }
  return out;
}

/// Renders a result as an order-insensitive multiset (sorted items), for
/// comparisons where document order is not guaranteed to agree.
inline std::vector<std::string> RenderSorted(const xq::Sequence& seq) {
  std::vector<std::string> out;
  for (const auto& item : seq) {
    if (xq::IsNode(item)) {
      out.push_back(SerializeXml(*xq::AsNode(item)));
    } else {
      out.push_back(xq::AsAtomic(item).ToStringValue());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace xcql::testutil

#endif  // XCQL_TESTS_TEST_UTIL_H_
