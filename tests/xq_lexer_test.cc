// Direct unit tests for the XQuery/XCQL lexer: token kinds, the XCQL
// dateTime/duration literal recognition, hyphenated builtin names, nested
// comments, operators, and the raw-rescan (ResetTo) used by constructor
// parsing.
#include <gtest/gtest.h>

#include <vector>

#include "xq/lexer.h"

namespace xcql::xq {
namespace {

std::vector<Token> LexAll(std::string_view src) {
  Lexer lex(src);
  std::vector<Token> out;
  while (lex.cur().kind != TokKind::kEof) {
    out.push_back(lex.cur());
    EXPECT_TRUE(lex.Advance().ok());
  }
  return out;
}

std::vector<TokKind> KindsOf(std::string_view src) {
  std::vector<TokKind> out;
  for (const Token& t : LexAll(src)) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, BasicTokens) {
  auto kinds = KindsOf("for $x in (1, 2.5) return $x + \"s\"");
  std::vector<TokKind> expected = {
      TokKind::kIdent,  TokKind::kDollar, TokKind::kIdent, TokKind::kIdent,
      TokKind::kLParen, TokKind::kInt,    TokKind::kComma, TokKind::kDouble,
      TokKind::kRParen, TokKind::kIdent,  TokKind::kDollar, TokKind::kIdent,
      TokKind::kPlus,   TokKind::kString};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, TwoCharOperators) {
  auto kinds = KindsOf("// != <= >= := ..");
  std::vector<TokKind> expected = {TokKind::kSlashSlash, TokKind::kNe,
                                   TokKind::kLe,         TokKind::kGe,
                                   TokKind::kAssign,     TokKind::kDotDot};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, ProjectionOperators) {
  auto kinds = KindsOf("$e?[1] $e#[2]");
  std::vector<TokKind> expected = {
      TokKind::kDollar, TokKind::kIdent, TokKind::kQuestion,
      TokKind::kLBracket, TokKind::kInt, TokKind::kRBracket,
      TokKind::kDollar, TokKind::kIdent, TokKind::kHash,
      TokKind::kLBracket, TokKind::kInt, TokKind::kRBracket};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, DateTimeLiterals) {
  auto toks = LexAll("2003-10-23T12:23:34 2003-11-01");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kDateTime);
  EXPECT_EQ(toks[0].dt_val.ToString(), "2003-10-23T12:23:34");
  EXPECT_EQ(toks[1].kind, TokKind::kDateTime);
  EXPECT_EQ(toks[1].dt_val.ToString(), "2003-11-01T00:00:00");
}

TEST(LexerTest, DateLiteralFollowedByOperator) {
  // The date part is 10 chars; the minus afterwards is subtraction.
  auto toks = LexAll("2003-11-01 - PT1H");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kDateTime);
  EXPECT_EQ(toks[1].kind, TokKind::kMinus);
  EXPECT_EQ(toks[2].kind, TokKind::kDuration);
}

TEST(LexerTest, DurationLiterals) {
  auto toks = LexAll("PT1M P1Y2M3DT4H5M6S");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, TokKind::kDuration);
  EXPECT_EQ(toks[0].dur_val.seconds(), 60);
  EXPECT_EQ(toks[1].kind, TokKind::kDuration);
  EXPECT_EQ(toks[1].dur_val.months(), 14);
}

TEST(LexerTest, DurationLikeIdentifiersStayIdentifiers) {
  // P2P is not a valid duration; PT1X neither.
  auto toks = LexAll("P2P PT1X Price");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kIdent);
  EXPECT_EQ(toks[0].text, "P2P");
  EXPECT_EQ(toks[1].kind, TokKind::kIdent);
  EXPECT_EQ(toks[2].kind, TokKind::kIdent);
}

TEST(LexerTest, NowMinusDurationSplitsCorrectly) {
  // Crucial XCQL case (paper Query 2): now-PT1H must not lex as one name.
  auto toks = LexAll("now-PT1H");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "now");
  EXPECT_EQ(toks[1].kind, TokKind::kMinus);
  EXPECT_EQ(toks[2].kind, TokKind::kDuration);
}

TEST(LexerTest, HyphenatedBuiltinsAreSingleTokens) {
  auto toks = LexAll("current-dateTime() string-length(x)");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "current-dateTime");
  EXPECT_EQ(toks[3].text, "string-length");
}

TEST(LexerTest, HyphenInOtherNamesIsMinus) {
  auto toks = LexAll("price-cost");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "price");
  EXPECT_EQ(toks[1].kind, TokKind::kMinus);
  EXPECT_EQ(toks[2].text, "cost");
}

TEST(LexerTest, IdentifiersAllowColonAndDot) {
  auto toks = LexAll("xs:dateTime xdt:dayTimeDuration a.b");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].text, "xs:dateTime");
  EXPECT_EQ(toks[1].text, "xdt:dayTimeDuration");
  EXPECT_EQ(toks[2].text, "a.b");
}

TEST(LexerTest, StringEscapesByDoubling) {
  auto toks = LexAll("\"say \"\"hi\"\"\" 'it''s'");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "say \"hi\"");
  EXPECT_EQ(toks[1].text, "it's");
}

TEST(LexerTest, NestedCommentsSkip) {
  auto toks = LexAll("1 (: outer (: inner :) still :) 2");
  ASSERT_EQ(toks.size(), 2u);
  EXPECT_EQ(toks[0].int_val, 1);
  EXPECT_EQ(toks[1].int_val, 2);
}

TEST(LexerTest, NumbersWithExponents) {
  auto toks = LexAll("3e2 1.5E-3 7");
  ASSERT_EQ(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[0].dbl_val, 300.0);
  EXPECT_EQ(toks[1].kind, TokKind::kDouble);
  EXPECT_DOUBLE_EQ(toks[1].dbl_val, 0.0015);
  EXPECT_EQ(toks[2].kind, TokKind::kInt);
}

TEST(LexerTest, TracksLineAndColumn) {
  Lexer lex("a\n  bb");
  EXPECT_EQ(lex.cur().line, 1u);
  EXPECT_EQ(lex.cur().col, 1u);
  ASSERT_TRUE(lex.Advance().ok());
  EXPECT_EQ(lex.cur().line, 2u);
  EXPECT_EQ(lex.cur().col, 3u);
}

TEST(LexerTest, ResetToRelexesFromOffset) {
  Lexer lex("abc def ghi");
  ASSERT_TRUE(lex.Advance().ok());  // now at "def"
  EXPECT_EQ(lex.cur().text, "def");
  size_t def_begin = lex.cur().begin;
  ASSERT_TRUE(lex.Advance().ok());  // "ghi"
  ASSERT_TRUE(lex.ResetTo(def_begin).ok());
  EXPECT_EQ(lex.cur().text, "def");
  EXPECT_FALSE(lex.ResetTo(999).ok());
}

TEST(LexerTest, UnterminatedStringIsError) {
  Lexer lex("\"oops");
  // The error surfaces either immediately or on the first Advance.
  Status st = lex.Advance();
  EXPECT_FALSE(st.ok());
}

TEST(LexerTest, UnexpectedCharacterIsError) {
  Lexer lex("1 ~ 2");
  Status st = Status::OK();
  for (int i = 0; i < 3 && st.ok(); ++i) st = lex.Advance();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace xcql::xq
