// Unit tests for the common substrate: Status/Result, string utilities and
// the deterministic PRNG.
#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xcql {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, CopyIsCheapAndShared) {
  Status a = Status::NotFound("x");
  Status b = a;
  EXPECT_EQ(b.code(), StatusCode::kNotFound);
  EXPECT_EQ(b.message(), "x");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kTypeError, StatusCode::kNotFound,
        StatusCode::kUnsupported, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 2);
  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  auto chain = [](int x) -> Result<int> {
    XCQL_ASSIGN_OR_RETURN(int h, Half(x));
    XCQL_ASSIGN_OR_RETURN(int q, Half(h));
    return q;
  };
  EXPECT_EQ(chain(8).value(), 2);
  EXPECT_FALSE(chain(8 + 1).ok());
  EXPECT_FALSE(chain(6).ok());  // second Half gets 3
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).MoveValue();
  EXPECT_EQ(s, "payload");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(SplitString("", ',').size(), 1u);
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64(" -7 "), -7);
  EXPECT_FALSE(ParseInt64("4x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // overflow
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(*ParseDouble("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*ParseDouble("1e3"), 1000.0);
  EXPECT_FALSE(ParseDouble("2.5x").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
}

TEST(StringUtilTest, StringPrintfAndJoin) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%s", std::string(100, 'a').c_str()).size(), 100u);
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
}

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(Random(7).Next(), c.Next());
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, UniformCoversTheRange) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, WordIsLowercaseAscii) {
  Random rng(5);
  std::string w = rng.Word(12);
  ASSERT_EQ(w.size(), 12u);
  for (char c : w) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

}  // namespace
}  // namespace xcql
