// Direct unit tests for the XQuery value model: atomics, atomization,
// effective boolean value, and the comparison casting matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "common/status.h"
#include "xq/value.h"

namespace xcql::xq {
namespace {

DateTime T(const char* s) { return DateTime::Parse(s).value(); }

TEST(AtomicTest, KindsAndAccessors) {
  EXPECT_TRUE(Atomic(true).is_bool());
  EXPECT_TRUE(Atomic(int64_t{7}).is_int());
  EXPECT_TRUE(Atomic(int64_t{7}).is_numeric());
  EXPECT_TRUE(Atomic(1.5).is_double());
  EXPECT_TRUE(Atomic(std::string("x")).is_string());
  EXPECT_TRUE(Atomic(T("2004-01-01")).is_datetime());
  EXPECT_TRUE(Atomic(Duration::FromSeconds(60)).is_duration());
  EXPECT_TRUE(Atomic(std::string("x"), /*untyped=*/true).untyped());
  EXPECT_FALSE(Atomic(std::string("x")).untyped());
}

TEST(AtomicTest, ToNumber) {
  EXPECT_DOUBLE_EQ(*Atomic(int64_t{7}).ToNumber(), 7.0);
  EXPECT_DOUBLE_EQ(*Atomic(2.5).ToNumber(), 2.5);
  EXPECT_DOUBLE_EQ(*Atomic(std::string("3.5")).ToNumber(), 3.5);
  EXPECT_DOUBLE_EQ(*Atomic(true).ToNumber(), 1.0);
  EXPECT_FALSE(Atomic(std::string("junk")).ToNumber().has_value());
  EXPECT_FALSE(Atomic(T("2004-01-01")).ToNumber().has_value());
}

TEST(AtomicTest, LexicalForms) {
  EXPECT_EQ(Atomic(true).ToStringValue(), "true");
  EXPECT_EQ(Atomic(int64_t{-3}).ToStringValue(), "-3");
  EXPECT_EQ(Atomic(4.0).ToStringValue(), "4");    // integral doubles
  EXPECT_EQ(Atomic(2.5).ToStringValue(), "2.5");
  EXPECT_EQ(Atomic(T("2004-01-01")).ToStringValue(), "2004-01-01T00:00:00");
  EXPECT_EQ(Atomic(Duration::FromSeconds(90)).ToStringValue(), "PT1M30S");
  EXPECT_EQ(Atomic(std::nan("")).ToStringValue(), "NaN");
}

TEST(AtomizeTest, NodesAtomizeToUntypedStrings) {
  NodePtr e = Node::Element("amount");
  e->AddChild(Node::Text("38.20"));
  Atomic a = AtomizeItem(Item(e));
  EXPECT_TRUE(a.is_string());
  EXPECT_TRUE(a.untyped());
  EXPECT_EQ(a.AsString(), "38.20");
}

TEST(EbvTest, Rules) {
  EXPECT_FALSE(EffectiveBooleanValue({}).value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonNode(Node::Element("x")))
                  .value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonAtomic(Atomic(true))).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonAtomic(Atomic(int64_t{0})))
                   .value());
  EXPECT_TRUE(EffectiveBooleanValue(SingletonAtomic(Atomic(0.5))).value());
  EXPECT_FALSE(
      EffectiveBooleanValue(SingletonAtomic(Atomic(std::nan("")))).value());
  EXPECT_FALSE(EffectiveBooleanValue(SingletonAtomic(Atomic(std::string())))
                   .value());
  EXPECT_TRUE(
      EffectiveBooleanValue(SingletonAtomic(Atomic(std::string("x"))))
          .value());
  // Multi-item atomic sequences have no EBV.
  Sequence two;
  two.emplace_back(Atomic(int64_t{1}));
  two.emplace_back(Atomic(int64_t{2}));
  EXPECT_FALSE(EffectiveBooleanValue(two).ok());
  // dateTime has no EBV.
  EXPECT_FALSE(
      EffectiveBooleanValue(SingletonAtomic(Atomic(T("2004-01-01")))).ok());
}

class CompareTest : public ::testing::Test {
 protected:
  static bool Cmp(const Atomic& a, CmpOp op, const Atomic& b) {
    auto r = CompareAtomics(a, b, op);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }
};

TEST_F(CompareTest, NumericPairs) {
  EXPECT_TRUE(Cmp(Atomic(int64_t{2}), CmpOp::kLt, Atomic(2.5)));
  EXPECT_TRUE(Cmp(Atomic(2.0), CmpOp::kEq, Atomic(int64_t{2})));
  EXPECT_TRUE(Cmp(Atomic(int64_t{3}), CmpOp::kGe, Atomic(int64_t{3})));
  EXPECT_FALSE(Cmp(Atomic(int64_t{3}), CmpOp::kNe, Atomic(3.0)));
}

TEST_F(CompareTest, StringNumericCasting) {
  EXPECT_TRUE(Cmp(Atomic(std::string("10"), true), CmpOp::kGt,
                  Atomic(int64_t{9})));
  EXPECT_TRUE(Cmp(Atomic(int64_t{9}), CmpOp::kLt,
                  Atomic(std::string("10"), true)));
  // Two strings compare lexically, even numeric-looking ones.
  EXPECT_TRUE(Cmp(Atomic(std::string("10")), CmpOp::kLt,
                  Atomic(std::string("9"))));
}

TEST_F(CompareTest, UnparseableNumericCastIsError) {
  auto r = CompareAtomics(Atomic(std::string("junk"), true), Atomic(int64_t{1}),
                          CmpOp::kEq);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(CompareTest, DateTimePairs) {
  EXPECT_TRUE(Cmp(Atomic(T("2004-01-01")), CmpOp::kLt,
                  Atomic(T("2004-06-01"))));
  EXPECT_TRUE(Cmp(Atomic(std::string("2004-01-01"), true), CmpOp::kEq,
                  Atomic(T("2004-01-01"))));
  EXPECT_FALSE(CompareAtomics(Atomic(int64_t{1}), Atomic(T("2004-01-01")),
                              CmpOp::kLt)
                   .ok());
}

TEST_F(CompareTest, DurationPairs) {
  EXPECT_TRUE(Cmp(Atomic(Duration::FromSeconds(60)), CmpOp::kLt,
                  Atomic(Duration::FromSeconds(90))));
  EXPECT_TRUE(Cmp(Atomic(std::string("PT1M"), true), CmpOp::kEq,
                  Atomic(Duration::FromSeconds(60))));
}

TEST_F(CompareTest, BooleanPairs) {
  EXPECT_TRUE(Cmp(Atomic(true), CmpOp::kEq, Atomic(true)));
  EXPECT_TRUE(Cmp(Atomic(false), CmpOp::kNe, Atomic(true)));
  EXPECT_FALSE(
      CompareAtomics(Atomic(true), Atomic(int64_t{1}), CmpOp::kEq).ok());
}

TEST(SequenceToStringTest, SpaceSeparatesItems) {
  Sequence s;
  s.emplace_back(Atomic(int64_t{1}));
  NodePtr e = Node::Element("v");
  e->AddChild(Node::Text("x"));
  s.emplace_back(e);
  s.emplace_back(Atomic(std::string("z")));
  EXPECT_EQ(SequenceToString(s), "1 x z");
  EXPECT_EQ(SequenceToString({}), "");
}

}  // namespace
}  // namespace xcql::xq
