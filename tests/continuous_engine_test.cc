// Tests for the incremental continuous-query engine: relevance-based tick
// skipping (quiescent ticks evaluate nothing), randomized equivalence of
// the optimized engine against the always-re-evaluate reference over
// shuffled fragment schedules, per-query error isolation, tick policies,
// and deterministic callback order under the parallel tick scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "frag/fragment.h"
#include "frag/fragmenter.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "test_util.h"
#include "xml/parser.h"

namespace xcql::stream {
namespace {

DateTime T(const char* s) { return DateTime::Parse(s).value(); }

frag::TagStructure ParseTs(const char* xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

// ---- Quiescent ticks and relevance precision --------------------------------

class QuiescentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    server_ = std::make_unique<StreamServer>(
        "credit", ParseTs(testutil::kCreditTagStructure));
    ASSERT_TRUE(hub_.Subscribe(server_.get()).ok());
    auto doc = ParseXml(testutil::kCreditView);
    ASSERT_TRUE(doc.ok());
    ASSERT_TRUE(server_->PublishDocument(*doc.value()).ok());
    clock_.AdvanceTo(hub_.store("credit")->max_valid_time());
    engine_ = std::make_unique<ContinuousQueryEngine>(&hub_, &clock_);
  }

  void TickAt(const char* time) {
    clock_.AdvanceTo(T(time));
    ASSERT_TRUE(engine_->Tick().ok());
  }

  std::unique_ptr<StreamServer> server_;
  StreamHub hub_;
  SimClock clock_;
  std::unique_ptr<ContinuousQueryEngine> engine_;
};

TEST_F(QuiescentTest, QuiescentTicksPerformZeroEvaluations) {
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction where $t/amount > 1000 "
      "return string($t/@id)",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 1);

  // Nothing arrives; the clock alone advances. The plan is data-bounded and
  // not time-sensitive, so the next ticks must not evaluate at all.
  TickAt("2003-11-03T00:00:00");
  TickAt("2003-11-04T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 1);
  EXPECT_EQ(engine_->ticks(), 3);
  EXPECT_EQ(engine_->skips(), 2);
  auto stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().evaluations, 1);
  EXPECT_EQ(stats.value().skips, 2);
  EXPECT_FALSE(stats.value().time_sensitive);
  EXPECT_FALSE(stats.value().unbounded);
}

TEST_F(QuiescentTest, IrrelevantFragmentDoesNotWakeTheQuery) {
  int calls = 0;
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction where $t/amount > 1000 "
      "return string($t/@id)",
      [&](const xq::Sequence&, DateTime) { ++calls; });
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 1);
  EXPECT_EQ(calls, 1);

  // A creditLimit version (tsid 4) arrives. The plan scans the transaction
  // subtree (tsids 5–8), so the update is provably irrelevant to it.
  frag::Fragment limit;
  limit.id = 3;  // the existing creditLimit filler of account 1234
  limit.tsid = 4;
  limit.valid_time = T("2003-11-02T12:00:00");
  limit.content = Node::Element("creditLimit");
  limit.content->AddChild(Node::Text("9000"));
  ASSERT_TRUE(server_->Publish(std::move(limit)).ok());
  TickAt("2003-11-03T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 1);  // still skipped

  // A transaction event (tsid 5) is relevant and wakes the query.
  frag::Fragment tx;
  tx.id = 200;
  tx.tsid = 5;
  tx.valid_time = T("2003-11-03T12:00:00");
  tx.content = Node::Element("transaction");
  tx.content->SetAttr("id", "88888");
  NodePtr amount = Node::Element("amount");
  amount->AddChild(Node::Text("2500"));
  tx.content->AddChild(std::move(amount));
  ASSERT_TRUE(server_->Publish(std::move(tx)).ok());
  TickAt("2003-11-04T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 2);
  EXPECT_EQ(calls, 2);
}

TEST_F(QuiescentTest, TimeSensitivePlansAreNeverSkipped) {
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction[status?[now] = \"charged\"] "
      "return string($t/@id)",
      nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  TickAt("2003-11-03T00:00:00");
  TickAt("2003-11-04T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 3);
  auto stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().time_sensitive);
}

TEST_F(QuiescentTest, MissingFillerDegradesPerHolePolicyWithoutWedging) {
  // A transaction arrives whose status subtree is a dangling hole — its
  // filler never made it through the transport. An omit-policy query must
  // keep answering while reporting per-evaluation incompleteness; a
  // fail-policy twin must record an error each tick; and neither may wedge
  // the engine.
  // The interval projection descends into the transaction subtree and
  // resolves its holes — where a missing filler surfaces to the policy.
  const char* kProjectionQuery =
      "for $t in stream(\"credit\")//transaction?[start,now] "
      "return string($t/@id)";
  ContinuousQueryOptions omit_opts;
  omit_opts.tick_policy = TickPolicy::kAlways;
  auto omit_id = engine_->Register(kProjectionQuery, nullptr, omit_opts);
  ASSERT_TRUE(omit_id.ok()) << omit_id.status().ToString();
  ContinuousQueryOptions fail_opts;
  fail_opts.tick_policy = TickPolicy::kAlways;
  fail_opts.hole_policy = xq::HolePolicy::kFail;
  auto fail_id = engine_->Register(kProjectionQuery, nullptr, fail_opts);
  ASSERT_TRUE(fail_id.ok()) << fail_id.status().ToString();

  // First tick: complete data, both queries clean.
  TickAt("2003-11-02T00:00:00");
  auto omit_stats = engine_->QueryStats(omit_id.value());
  ASSERT_TRUE(omit_stats.ok());
  EXPECT_EQ(omit_stats.value().holes_unresolved_last, 0);
  EXPECT_EQ(omit_stats.value().incomplete_evaluations, 0);

  frag::Fragment tx;
  tx.id = 300;
  tx.tsid = 5;
  tx.valid_time = T("2003-11-02T12:00:00");
  tx.content = Node::Element("transaction");
  tx.content->SetAttr("id", "77777");
  tx.content->AddChild(frag::MakeHole(301, 7));  // status never arrives
  ASSERT_TRUE(server_->Publish(std::move(tx)).ok());

  TickAt("2003-11-03T00:00:00");
  omit_stats = engine_->QueryStats(omit_id.value());
  ASSERT_TRUE(omit_stats.ok());
  EXPECT_TRUE(omit_stats.value().last_status.ok());
  EXPECT_EQ(omit_stats.value().errors, 0);
  EXPECT_GE(omit_stats.value().holes_unresolved_last, 1);
  EXPECT_EQ(omit_stats.value().incomplete_evaluations, 1);

  auto fail_stats = engine_->QueryStats(fail_id.value());
  ASSERT_TRUE(fail_stats.ok());
  EXPECT_FALSE(fail_stats.value().last_status.ok());
  EXPECT_EQ(fail_stats.value().errors, 1);

  // Not wedged: the next tick still evaluates both (kAlways ticking, so
  // neither is skipped).
  TickAt("2003-11-04T00:00:00");
  omit_stats = engine_->QueryStats(omit_id.value());
  ASSERT_TRUE(omit_stats.ok());
  EXPECT_TRUE(omit_stats.value().last_status.ok());
  EXPECT_EQ(omit_stats.value().incomplete_evaluations, 2);
  fail_stats = engine_->QueryStats(fail_id.value());
  ASSERT_TRUE(fail_stats.ok());
  EXPECT_EQ(fail_stats.value().errors, 2);
}

// ---- Tick policies ----------------------------------------------------------

TEST_F(QuiescentTest, AlwaysPolicyNeverSkips) {
  auto id = engine_->Register(
      "count(stream(\"credit\")//transaction)", nullptr,
      {.tick_policy = TickPolicy::kAlways});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  TickAt("2003-11-03T00:00:00");
  TickAt("2003-11-04T00:00:00");
  EXPECT_EQ(engine_->evaluations(), 3);
  EXPECT_EQ(engine_->skips(), 0);
}

TEST_F(QuiescentTest, AutoPolicyWithoutDedupEvaluatesEveryTick) {
  // Without dedup every tick's callback is observable output, so kAuto may
  // not skip even when no data arrived.
  int calls = 0;
  auto id = engine_->Register(
      "count(stream(\"credit\")//transaction)",
      [&](const xq::Sequence&, DateTime) { ++calls; }, {.dedup = false});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  TickAt("2003-11-03T00:00:00");
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(engine_->evaluations(), 2);
}

TEST_F(QuiescentTest, DataDrivenPolicySkipsQuiescentTicksWithoutDedup) {
  // kDataDriven asserts clock-only drift does not matter: quiescent ticks
  // are skipped even though dedup is off.
  int calls = 0;
  auto id = engine_->Register(
      "count(stream(\"credit\")//transaction)",
      [&](const xq::Sequence&, DateTime) { ++calls; },
      {.dedup = false, .tick_policy = TickPolicy::kDataDriven});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  TickAt("2003-11-03T00:00:00");
  TickAt("2003-11-04T00:00:00");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(engine_->evaluations(), 1);
  EXPECT_EQ(engine_->skips(), 2);
}

// ---- Error isolation --------------------------------------------------------

TEST_F(QuiescentTest, FailingQueryIsIsolatedAndRetriesNextTick) {
  bool fail = true;
  engine_->RegisterFunction(
      "flaky", 1, 1,
      [&fail](xq::EvalContext&,
              std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        if (fail) return Status::Internal("injected failure");
        return args[0];
      });
  int good_calls = 0, bad_calls = 0;
  auto good = engine_->Register(
      "count(stream(\"credit\")//transaction)",
      [&](const xq::Sequence&, DateTime) { ++good_calls; });
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  auto bad = engine_->Register(
      "for $t in stream(\"credit\")//transaction "
      "return flaky(string($t/@id))",
      [&](const xq::Sequence& delta, DateTime) {
        bad_calls += static_cast<int>(delta.size());
      });
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();

  // The failing query does not abort the tick or starve its neighbors.
  TickAt("2003-11-02T00:00:00");
  EXPECT_EQ(good_calls, 1);
  EXPECT_EQ(bad_calls, 0);
  auto stats = engine_->QueryStats(bad.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().errors, 1);
  EXPECT_FALSE(stats.value().last_status.ok());
  EXPECT_TRUE(stats.value().unbounded);  // UDF calls are opaque

  // Once the function recovers, the query emits the results it missed:
  // its dedup/watermark state was not advanced by the failed attempts.
  fail = false;
  TickAt("2003-11-03T00:00:00");
  EXPECT_EQ(bad_calls, 2);  // both historical transactions
  stats = engine_->QueryStats(bad.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().errors, 1);
  EXPECT_TRUE(stats.value().last_status.ok());
}

TEST_F(QuiescentTest, WatermarkDoesNotAdvanceOnFailure) {
  bool fail = true;
  engine_->RegisterFunction(
      "gate", 1, 1,
      [&fail](xq::EvalContext&,
              std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        if (fail) return Status::Internal("injected failure");
        return args[0];
      });
  std::vector<std::string> emitted;
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction?[$since, now] "
      "return gate(string($t/@id))",
      [&](const xq::Sequence& delta, DateTime) {
        for (const auto& item : delta) {
          emitted.push_back(xq::AsAtomic(item).ToStringValue());
        }
      },
      {.method = lang::ExecMethod::kQaCPlus,
       .dedup = true,
       .incremental = true});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  EXPECT_TRUE(emitted.empty());

  // Had the failed tick advanced $since to 2003-11-02, the historical
  // transactions (September/October) would now fall outside the window and
  // be lost forever. The watermark must still be `start`.
  fail = false;
  TickAt("2003-11-03T00:00:00");
  EXPECT_EQ(emitted.size(), 2u);
}

TEST_F(QuiescentTest, LateRegisteredFunctionRecompilesExistingPlans) {
  // Registered before the UDF exists: the name is opaque-unknown, the plan
  // still compiles, and evaluation fails (isolated, not fatal).
  auto id = engine_->Register("twice(count(stream(\"credit\")//transaction))",
                              nullptr);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  auto stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().errors, 1);

  engine_->RegisterFunction(
      "twice", 1, 1,
      [](xq::EvalContext&,
         std::vector<xq::Sequence>& args) -> Result<xq::Sequence> {
        auto n = xq::AsAtomic(args[0][0]).ToNumber();
        return xq::SingletonAtomic(
            xq::Atomic(static_cast<int64_t>(*n * 2)));
      });
  TickAt("2003-11-03T00:00:00");
  stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats.value().last_status.ok())
      << stats.value().last_status.ToString();
}

// ---- Parallel scheduler -----------------------------------------------------

TEST_F(QuiescentTest, CallbacksFireInQueryIdOrderWithWorkers) {
  engine_->set_workers(4);
  EXPECT_EQ(engine_->workers(), 4);
  std::vector<int> order;
  std::vector<int> ids;
  for (int i = 0; i < 8; ++i) {
    auto id = engine_->Register(
        "count(stream(\"credit\")//transaction)",
        [&order, i](const xq::Sequence&, DateTime) { order.push_back(i); },
        {.dedup = false, .tick_policy = TickPolicy::kAlways});
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value());
  }
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  for (int tick = 0; tick < 3; ++tick) {
    order.clear();
    clock_.Advance(Duration::Parse("PT1H").value());
    ASSERT_TRUE(engine_->Tick().ok());
    ASSERT_EQ(order.size(), 8u);
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
        << "callbacks must fire in registration order";
  }
}

// ---- Randomized equivalence -------------------------------------------------

// A random model-consistent credit document: accounts with creditLimit
// version chains and transaction events carrying vendor/status/amount.
NodePtr RandomCreditDoc(std::mt19937& rng) {
  int64_t base = T("2003-01-01T00:00:00").seconds();
  auto day = [](int64_t n) { return n * 86400; };
  NodePtr root = Node::Element("creditAccounts");
  int accounts = 2 + static_cast<int>(rng() % 3);
  int next_tx = 10000;
  for (int a = 0; a < accounts; ++a) {
    int64_t t0 = base + day(static_cast<int64_t>(rng() % 30));
    NodePtr acct = Node::Element("account");
    acct->SetAttr("id", std::to_string(1000 + a));
    acct->SetAttr("vtFrom", DateTime(t0).ToString());
    acct->SetAttr("vtTo", "now");
    NodePtr cust = Node::Element("customer");
    cust->AddChild(Node::Text("Customer-" + std::to_string(a)));
    acct->AddChild(std::move(cust));
    int64_t lim_t = t0;
    int limits = 1 + static_cast<int>(rng() % 2);
    for (int l = 0; l < limits; ++l) {
      NodePtr cl = Node::Element("creditLimit");
      cl->SetAttr("vtFrom", DateTime(lim_t).ToString());
      int64_t lim_next = lim_t + day(10 + static_cast<int64_t>(rng() % 40));
      cl->SetAttr("vtTo",
                  l + 1 == limits ? "now" : DateTime(lim_next).ToString());
      cl->AddChild(
          Node::Text(std::to_string(1000 * (1 + static_cast<int>(rng() % 9)))));
      acct->AddChild(std::move(cl));
      lim_t = lim_next;
    }
    int txs = static_cast<int>(rng() % 4);
    for (int t = 0; t < txs; ++t) {
      int64_t when = t0 + 3600 * (1 + static_cast<int64_t>(rng() % 2000));
      NodePtr tx = Node::Element("transaction");
      tx->SetAttr("id", std::to_string(next_tx++));
      tx->SetAttr("vtFrom", DateTime(when).ToString());
      tx->SetAttr("vtTo", DateTime(when).ToString());
      NodePtr vendor = Node::Element("vendor");
      vendor->AddChild(Node::Text("Vendor-" + std::to_string(rng() % 5)));
      tx->AddChild(std::move(vendor));
      int statuses = 1 + static_cast<int>(rng() % 2);
      int64_t st_t = when + 60;
      for (int s = 0; s < statuses; ++s) {
        NodePtr st = Node::Element("status");
        st->SetAttr("vtFrom", DateTime(st_t).ToString());
        int64_t st_next = st_t + day(1 + static_cast<int64_t>(rng() % 20));
        st->SetAttr("vtTo", s + 1 == statuses ? "now"
                                              : DateTime(st_next).ToString());
        st->AddChild(
            Node::Text(s + 1 == statuses && rng() % 2 ? "charged"
                                                      : "suspended"));
        st_t = st_next;
        tx->AddChild(std::move(st));
      }
      NodePtr amount = Node::Element("amount");
      amount->AddChild(
          Node::Text(std::to_string(100 * (1 + static_cast<int>(rng() % 30)))));
      tx->AddChild(std::move(amount));
      acct->AddChild(std::move(tx));
    }
    root->AddChild(std::move(acct));
  }
  return root;
}

// Fragments delivered per tick; the whole document shuffled across ticks,
// with some ticks left quiescent.
std::vector<std::vector<frag::Fragment>> MakeSchedule(const Node& doc,
                                                      std::mt19937& rng,
                                                      int ticks) {
  frag::TagStructure ts = ParseTs(testutil::kCreditTagStructure);
  frag::Fragmenter f(&ts);
  auto frags = f.Split(doc);
  EXPECT_TRUE(frags.ok()) << frags.status().ToString();
  std::vector<frag::Fragment> all = std::move(frags).MoveValue();
  std::shuffle(all.begin(), all.end(), rng);
  std::vector<std::vector<frag::Fragment>> batches(ticks);
  for (frag::Fragment& frag : all) {
    batches[rng() % static_cast<size_t>(ticks)].push_back(std::move(frag));
  }
  return batches;
}

// One emitted callback, flattened for comparison.
struct Emitted {
  int query;
  int tick;
  std::string at;
  std::string rendered;
  bool operator==(const Emitted&) const = default;
};

std::vector<Emitted> RunSchedule(
    const std::vector<std::vector<frag::Fragment>>& batches,
    TickPolicy policy, int workers, bool use_compiled_plan = true) {
  StreamServer server("credit", ParseTs(testutil::kCreditTagStructure));
  StreamHub hub;
  EXPECT_TRUE(hub.Subscribe(&server).ok());
  SimClock clock(T("2003-01-01T00:00:00"));
  ContinuousQueryEngine engine(&hub, &clock);
  engine.set_workers(workers);

  struct Spec {
    const char* text;
    ContinuousQueryOptions opts;
  };
  const std::vector<Spec> specs = {
      // QaC+: tsid-indexed scan of the transaction subtree.
      {"for $t in stream(\"credit\")//transaction where $t/amount > 1500 "
       "return string($t/@id)",
       {.method = lang::ExecMethod::kQaCPlus}},
      // QaC: linear filler scans.
      {"for $a in stream(\"credit\")/creditAccounts/account "
       "return string($a/customer)",
       {.method = lang::ExecMethod::kQaC}},
      // CaQ: materialize the view, then query it.
      {"count(stream(\"credit\")//transaction)",
       {.method = lang::ExecMethod::kCaQ}},
      // Time-sensitive: the current status depends on `now`, so the
      // optimized engine must evaluate this one every tick.
      {"for $t in stream(\"credit\")//transaction[status?[now] = "
       "\"charged\"] return string($t/@id)",
       {.method = lang::ExecMethod::kQaCPlus}},
      // Incremental watermark mode over the event window.
      {"for $t in stream(\"credit\")//transaction?[$since, now] "
       "return string($t/@id)",
       {.method = lang::ExecMethod::kQaCPlus, .incremental = true}},
  };
  std::vector<Emitted> out;
  int tick_no = 0;
  for (size_t qi = 0; qi < specs.size(); ++qi) {
    ContinuousQueryOptions opts = specs[qi].opts;
    opts.tick_policy = policy;
    opts.use_compiled_plan = use_compiled_plan;
    auto id = engine.Register(
        specs[qi].text,
        [&out, &tick_no, qi](const xq::Sequence& delta, DateTime at) {
          out.push_back(Emitted{static_cast<int>(qi), tick_no, at.ToString(),
                                testutil::Render(delta)});
        },
        opts);
    EXPECT_TRUE(id.ok()) << id.status().ToString();
  }
  for (const auto& batch : batches) {
    for (const frag::Fragment& f : batch) {
      EXPECT_TRUE(server.Publish(f).ok());  // copy: schedules are reused
    }
    clock.Advance(Duration::Parse("P30D").value());
    ++tick_no;
    EXPECT_TRUE(engine.Tick().ok());
  }
  // Trailing quiescent ticks: skipping must stay invisible here too.
  for (int i = 0; i < 3; ++i) {
    clock.Advance(Duration::Parse("P30D").value());
    ++tick_no;
    EXPECT_TRUE(engine.Tick().ok());
  }
  return out;
}

TEST(ContinuousEquivalenceTest, OptimizedEngineMatchesReferenceDeltaStream) {
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    std::mt19937 rng(seed);
    NodePtr doc = RandomCreditDoc(rng);
    auto batches = MakeSchedule(*doc, rng, 8);
    // Reference: the seed engine's behavior — every query, every tick,
    // evaluated inline.
    auto reference = RunSchedule(batches, TickPolicy::kAlways, 0);
    // Optimized: relevance skipping plus the parallel scheduler.
    auto optimized = RunSchedule(batches, TickPolicy::kAuto, 3);
    // And the optimized decision logic without workers, to pin down any
    // divergence to skipping rather than scheduling.
    auto serial = RunSchedule(batches, TickPolicy::kAuto, 0);
    EXPECT_EQ(reference, optimized) << "seed " << seed;
    EXPECT_EQ(reference, serial) << "seed " << seed;
    ASSERT_FALSE(reference.empty()) << "seed " << seed
                                    << ": vacuous equivalence";
  }
}

TEST(ContinuousEquivalenceTest, CompiledPlansMatchInterpreterDeltaStream) {
  // The compiled-plan tick path (the default) must emit exactly the delta
  // stream the tree-walking interpreter emits, over random documents,
  // shuffled arrival schedules, every execution method in the spec list,
  // and with the one immutable plan shared across parallel tick workers.
  for (uint32_t seed = 11; seed <= 15; ++seed) {
    std::mt19937 rng(seed);
    NodePtr doc = RandomCreditDoc(rng);
    auto batches = MakeSchedule(*doc, rng, 8);
    auto interpreted =
        RunSchedule(batches, TickPolicy::kAlways, 0, /*use_compiled_plan=*/false);
    auto compiled =
        RunSchedule(batches, TickPolicy::kAlways, 0, /*use_compiled_plan=*/true);
    auto compiled_parallel =
        RunSchedule(batches, TickPolicy::kAlways, 3, /*use_compiled_plan=*/true);
    EXPECT_EQ(interpreted, compiled) << "seed " << seed;
    EXPECT_EQ(interpreted, compiled_parallel) << "seed " << seed;
    ASSERT_FALSE(interpreted.empty()) << "seed " << seed
                                      << ": vacuous equivalence";
  }
}

// ---- Plan pipeline stats ----------------------------------------------------

TEST_F(QuiescentTest, QueryStatsReportPlanCounters) {
  // The constructor makes the evaluation allocate result nodes, which land
  // in the per-evaluation arena.
  auto id = engine_->Register(
      "for $t in stream(\"credit\")//transaction "
      "return <tx id={$t/@id}/>",
      nullptr, {.dedup = false, .tick_policy = TickPolicy::kAlways});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  TickAt("2003-11-03T00:00:00");
  auto stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  // The query lowers, so every evaluation ran the compiled plan.
  EXPECT_TRUE(stats.value().plan_fallback_reason.empty())
      << stats.value().plan_fallback_reason;
  EXPECT_EQ(stats.value().compiled_evals, 2);
  EXPECT_EQ(stats.value().fallback_evals, 0);
  EXPECT_GT(stats.value().arena_high_water, 0u);
}

TEST_F(QuiescentTest, InterpreterOptOutCountsFallbackEvals) {
  auto id = engine_->Register(
      "count(stream(\"credit\")//transaction)", nullptr,
      {.tick_policy = TickPolicy::kAlways, .use_compiled_plan = false});
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  TickAt("2003-11-02T00:00:00");
  auto stats = engine_->QueryStats(id.value());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().compiled_evals, 0);
  EXPECT_EQ(stats.value().fallback_evals, 1);
}

}  // namespace
}  // namespace xcql::stream
