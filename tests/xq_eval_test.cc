// Tests for the XQuery/XCQL engine: lexing/parsing (via AST round-trips),
// evaluation semantics (paths, predicates, FLWOR, comparisons, arithmetic,
// constructors, functions), and the XCQL temporal projections over
// vtFrom/vtTo-annotated documents.
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xq/eval.h"
#include "xq/parser.h"

namespace xcql::xq {
namespace {

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : registry_(FunctionRegistry::Builtins()) {
    ctx_.functions = &registry_;
    ctx_.now = DateTime::Parse("2003-12-01T00:00:00").value();
  }

  // Evaluates `query` and renders the result (nodes serialized, atomics via
  // their lexical form, items space-separated).
  std::string Run(const std::string& query) {
    auto r = EvalQuery(query, &ctx_);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    std::string out;
    for (size_t i = 0; i < r.value().size(); ++i) {
      if (i > 0) out += " ";
      const Item& item = r.value()[i];
      if (IsNode(item)) {
        out += SerializeXml(*AsNode(item));
      } else {
        out += AsAtomic(item).ToStringValue();
      }
    }
    return out;
  }

  Status RunStatus(const std::string& query) {
    return EvalQuery(query, &ctx_).status();
  }

  void LoadDoc(const std::string& name, const std::string& xml) {
    auto r = ParseXml(xml);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ctx_.documents[name] = r.value();
  }

  FunctionRegistry registry_;
  EvalContext ctx_;
};

// ---- Literals and arithmetic -------------------------------------------------

TEST_F(EvalTest, IntegerArithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3"), "7");
  EXPECT_EQ(Run("(1 + 2) * 3"), "9");
  EXPECT_EQ(Run("10 mod 3"), "1");
  EXPECT_EQ(Run("10 idiv 3"), "3");
  EXPECT_EQ(Run("-5 + 2"), "-3");
}

TEST_F(EvalTest, DivisionAlwaysDecimal) {
  EXPECT_EQ(Run("7 div 2"), "3.5");
  EXPECT_EQ(Run("6 div 2"), "3");
}

TEST_F(EvalTest, DivisionByZeroIsError) {
  EXPECT_FALSE(RunStatus("1 div 0").ok());
  EXPECT_FALSE(RunStatus("1 idiv 0").ok());
  EXPECT_FALSE(RunStatus("1 mod 0").ok());
}

TEST_F(EvalTest, DoubleFormatting) {
  EXPECT_EQ(Run("1.5 + 1.25"), "2.75");
  EXPECT_EQ(Run("2.0 * 2"), "4");
}

TEST_F(EvalTest, StringLiteralsAndEscapedQuote) {
  EXPECT_EQ(Run("\"hello\""), "hello");
  EXPECT_EQ(Run("\"say \"\"hi\"\"\""), "say \"hi\"");
  EXPECT_EQ(Run("'single'"), "single");
}

TEST_F(EvalTest, ArithmeticOnNumericStrings) {
  EXPECT_EQ(Run("\"3\" + 4"), "7");
  EXPECT_FALSE(RunStatus("\"abc\" + 1").ok());
}

TEST_F(EvalTest, EmptySequencePropagatesThroughArithmetic) {
  EXPECT_EQ(Run("() + 1"), "");
  EXPECT_EQ(Run("1 + ()"), "");
}

TEST_F(EvalTest, CommaMakesSequences) {
  EXPECT_EQ(Run("(1, 2, 3)"), "1 2 3");
  EXPECT_EQ(Run("(1, (2, 3), ())"), "1 2 3");
}

TEST_F(EvalTest, RangeExpression) {
  EXPECT_EQ(Run("1 to 5"), "1 2 3 4 5");
  EXPECT_EQ(Run("3 to 1"), "");
  EXPECT_EQ(Run("count(2 to 7)"), "6");
}

// ---- dateTime / duration literals and arithmetic --------------------------------

TEST_F(EvalTest, DateTimeLiteral) {
  EXPECT_EQ(Run("2003-10-23T12:23:34"), "2003-10-23T12:23:34");
  EXPECT_EQ(Run("2003-11-01"), "2003-11-01T00:00:00");
}

TEST_F(EvalTest, DurationLiteral) {
  EXPECT_EQ(Run("PT1H"), "PT1H");
  EXPECT_EQ(Run("P1Y2M3DT4H5M6S"), "P1Y2M3DT4H5M6S");
}

TEST_F(EvalTest, DateTimePlusDuration) {
  EXPECT_EQ(Run("2003-10-23T12:23:34 + PT1M"), "2003-10-23T12:24:34");
  EXPECT_EQ(Run("2003-10-23T12:23:34 - PT1H"), "2003-10-23T11:23:34");
  EXPECT_EQ(Run("PT1H + 2003-10-23T12:23:34"), "2003-10-23T13:23:34");
}

TEST_F(EvalTest, DateTimeMinusDateTime) {
  EXPECT_EQ(Run("2003-10-23T12:24:35 - 2003-10-23T12:23:34"), "PT1M1S");
}

TEST_F(EvalTest, DurationArithmetic) {
  EXPECT_EQ(Run("PT1H + PT30M"), "PT1H30M");
  EXPECT_EQ(Run("PT1H - PT30M"), "PT30M");
  EXPECT_EQ(Run("PT1H * 2"), "PT2H");
}

TEST_F(EvalTest, NowAndStartConstants) {
  EXPECT_EQ(Run("now"), "2003-12-01T00:00:00");
  EXPECT_EQ(Run("now - PT1H"), "2003-11-30T23:00:00");
  EXPECT_EQ(Run("start"), "start");
  EXPECT_EQ(Run("currentDateTime()"), "2003-12-01T00:00:00");
  EXPECT_EQ(Run("current-dateTime()"), "2003-12-01T00:00:00");
}

TEST_F(EvalTest, DateTimeComparisons) {
  EXPECT_EQ(Run("2003-01-01 < 2003-06-01"), "true");
  EXPECT_EQ(Run("2003-01-01 = 2003-01-01T00:00:00"), "true");
  EXPECT_EQ(Run("start < 1066-01-01"), "true");
  EXPECT_EQ(Run("\"2003-01-01T00:00:00\" < 2003-06-01"), "true");
}

// ---- Comparisons ---------------------------------------------------------------

TEST_F(EvalTest, GeneralComparisonIsExistential) {
  EXPECT_EQ(Run("(1, 2, 3) = 2"), "true");
  EXPECT_EQ(Run("(1, 2, 3) = 9"), "false");
  EXPECT_EQ(Run("(1, 2) != (1, 2)"), "true");  // 1 != 2 existentially
  EXPECT_EQ(Run("() = 1"), "false");
}

TEST_F(EvalTest, ValueComparison) {
  EXPECT_EQ(Run("1 eq 1"), "true");
  EXPECT_EQ(Run("1 lt 2"), "true");
  EXPECT_EQ(Run("\"a\" lt \"b\""), "true");
  EXPECT_EQ(Run("() eq 1"), "");  // empty result
}

TEST_F(EvalTest, MixedNumericStringComparison) {
  EXPECT_EQ(Run("\"10\" > 9"), "true");  // numeric cast
  EXPECT_EQ(Run("\"10\" = \"10.0\""), "false");  // string compare
}

TEST_F(EvalTest, LogicalOperators) {
  EXPECT_EQ(Run("true() and false()"), "false");
  EXPECT_EQ(Run("true() or false()"), "true");
  EXPECT_EQ(Run("not(false())"), "true");
  // Short-circuit: the error on the rhs is never evaluated.
  EXPECT_EQ(Run("false() and (1 div 0 = 1)"), "false");
  EXPECT_EQ(Run("true() or (1 div 0 = 1)"), "true");
}

TEST_F(EvalTest, IfExpression) {
  EXPECT_EQ(Run("if (1 < 2) then \"yes\" else \"no\""), "yes");
  EXPECT_EQ(Run("if (()) then 1 else 2"), "2");  // empty is false
}

// ---- Paths ---------------------------------------------------------------------

constexpr const char* kCredit = R"(
<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="2003-11-10T09:30:45">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22"
                 vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34"
                 vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <amount>38.20</amount>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
    </transaction>
    <transaction id="23456" vtFrom="2003-09-10T14:30:12"
                 vtTo="2003-09-10T14:30:12">
      <vendor>ResAris Contaceu</vendor>
      <amount>1200</amount>
      <status vtFrom="2003-09-10T14:30:13"
              vtTo="2003-11-01T10:12:56">charged</status>
      <status vtFrom="2003-11-01T10:12:56" vtTo="now">suspended</status>
    </transaction>
  </account>
  <account id="5678" vtFrom="2000-01-01T00:00:00" vtTo="now">
    <customer>Jane Doe</customer>
    <creditLimit vtFrom="2000-01-01T00:00:00" vtTo="now">3000</creditLimit>
  </account>
</creditAccounts>)";

class PathTest : public EvalTest {
 protected:
  void SetUp() override { LoadDoc("credit", kCredit); }
};

TEST_F(PathTest, ChildSteps) {
  EXPECT_EQ(Run("count(doc(\"credit\")/account)"), "2");
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/customer/text()"), "John Smith");
}

TEST_F(PathTest, DescendantStep) {
  EXPECT_EQ(Run("count(doc(\"credit\")//transaction)"), "2");
  EXPECT_EQ(Run("count(doc(\"credit\")//status)"), "3");
  EXPECT_EQ(Run("count(doc(\"credit\")//creditLimit)"), "3");
}

TEST_F(PathTest, AttributeStep) {
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/@id"), "id=\"1234\"");
  EXPECT_EQ(Run("string(doc(\"credit\")/account[2]/@id)"), "5678");
}

TEST_F(PathTest, WildcardStep) {
  EXPECT_EQ(Run("count(doc(\"credit\")/account[2]/*)"), "2");
}

TEST_F(PathTest, PositionalPredicates) {
  EXPECT_EQ(Run("doc(\"credit\")/account[2]/customer/text()"), "Jane Doe");
  EXPECT_EQ(Run("doc(\"credit\")//transaction[position() = 2]/vendor/text()"),
            "ResAris Contaceu");
  EXPECT_EQ(Run("doc(\"credit\")//transaction[last()]/vendor/text()"),
            "ResAris Contaceu");
}

TEST_F(PathTest, ValuePredicates) {
  EXPECT_EQ(Run("doc(\"credit\")//transaction[amount > 1000]/vendor/text()"),
            "ResAris Contaceu");
  EXPECT_EQ(
      Run("count(doc(\"credit\")//transaction[status = \"suspended\"])"), "1");
}

TEST_F(PathTest, PredicateOnAttribute) {
  EXPECT_EQ(Run("doc(\"credit\")/account[@id = \"5678\"]/customer/text()"),
            "Jane Doe");
}

TEST_F(PathTest, ChainedPredicates) {
  EXPECT_EQ(Run("count(doc(\"credit\")//transaction[amount > 10][vendor = "
                "\"Southlake Pizza\"])"),
            "1");
}

TEST_F(PathTest, PathOnAtomicIsError) {
  EXPECT_FALSE(RunStatus("(1)/a").ok());
}

TEST_F(PathTest, ParentStep) {
  EXPECT_EQ(Run("string(doc(\"credit\")//transaction[1]/../@id)"), "1234");
}

TEST_F(PathTest, TextNodeStep) {
  EXPECT_EQ(Run("doc(\"credit\")//transaction[1]/vendor/text()"),
            "Southlake Pizza");
}

// ---- FLWOR ---------------------------------------------------------------------

TEST_F(PathTest, ForReturn) {
  EXPECT_EQ(Run("for $a in doc(\"credit\")/account return string($a/@id)"),
            "1234 5678");
}

TEST_F(PathTest, ForWithPositionVariable) {
  EXPECT_EQ(Run("for $a at $i in doc(\"credit\")/account return $i * 10"),
            "10 20");
}

TEST_F(PathTest, LetBinding) {
  EXPECT_EQ(Run("let $x := (1, 2, 3) return count($x)"), "3");
  EXPECT_EQ(Run("let $x := 5 let $y := $x + 1 return $y"), "6");
}

TEST_F(PathTest, WhereClause) {
  EXPECT_EQ(Run("for $a in doc(\"credit\")/account "
                "where $a/customer = \"Jane Doe\" return string($a/@id)"),
            "5678");
}

TEST_F(PathTest, MultipleForBindingsAreCrossProduct) {
  EXPECT_EQ(Run("for $i in (1, 2), $j in (10, 20) return $i + $j"),
            "11 21 12 22");
}

TEST_F(PathTest, OrderByAscendingDescending) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x descending return $x"),
            "3 2 1");
}

TEST_F(PathTest, OrderByStringKey) {
  EXPECT_EQ(Run("for $a in doc(\"credit\")/account "
                "order by $a/customer descending return string($a/@id)"),
            "1234 5678");
}

TEST_F(PathTest, OrderByMultipleKeys) {
  EXPECT_EQ(
      Run("for $p in ((1, 2), (1, 1), (2, 1)) return $p"),  // sanity: flat
      "1 2 1 1 2 1");
  EXPECT_EQ(Run("for $i in (2, 1), $j in (2, 1) order by $i, $j return "
                "concat($i, \"-\", $j)"),
            "1-1 1-2 2-1 2-2");
}

TEST_F(PathTest, NestedFlwor) {
  EXPECT_EQ(Run("for $a in doc(\"credit\")/account return "
                "count(for $t in $a/transaction return $t)"),
            "2 0");
}

// ---- Quantifiers ----------------------------------------------------------------

TEST_F(PathTest, SomeQuantifier) {
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 2"), "true");
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 5"), "false");
  EXPECT_EQ(Run("some $x in () satisfies $x > 0"), "false");
}

TEST_F(PathTest, EveryQuantifier) {
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 0"), "true");
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 1"), "false");
  EXPECT_EQ(Run("every $x in () satisfies $x > 0"), "true");
}

TEST_F(PathTest, QuantifierMultipleBindings) {
  EXPECT_EQ(Run("some $x in (1, 2), $y in (3, 4) satisfies $x + $y = 6"),
            "true");
}

TEST_F(PathTest, NegatedQuantifierLikeSynAckQuery) {
  // Shape of the paper's §2 example 1: not(some … satisfies …).
  EXPECT_EQ(Run("not(some $a in (1, 2) satisfies $a = 3)"), "true");
}

// ---- Functions -------------------------------------------------------------------

TEST_F(PathTest, Aggregates) {
  EXPECT_EQ(Run("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Run("sum(())"), "0");
  EXPECT_EQ(Run("avg((1, 2, 3))"), "2");
  EXPECT_EQ(Run("max((1, 5, 3))"), "5");
  EXPECT_EQ(Run("min((4, 2, 9))"), "2");
  EXPECT_EQ(Run("max(3, 7)"), "7");  // paper's two-argument max
  EXPECT_EQ(Run("count(())"), "0");
}

TEST_F(PathTest, SumOverNodeValues) {
  EXPECT_EQ(Run("sum(doc(\"credit\")//amount)"), "1238.2");
}

TEST_F(PathTest, StringFunctions) {
  EXPECT_EQ(Run("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Run("contains(\"hello\", \"ell\")"), "true");
  EXPECT_EQ(Run("starts-with(\"hello\", \"he\")"), "true");
  EXPECT_EQ(Run("ends-with(\"hello\", \"lo\")"), "true");
  EXPECT_EQ(Run("substring(\"hello\", 2, 3)"), "ell");
  EXPECT_EQ(Run("string-length(\"hello\")"), "5");
  EXPECT_EQ(Run("normalize-space(\"  a  b  \")"), "a b");
  EXPECT_EQ(Run("string-join((\"a\", \"b\"), \"-\")"), "a-b");
}

TEST_F(PathTest, NumericFunctions) {
  EXPECT_EQ(Run("round(2.5)"), "3");
  EXPECT_EQ(Run("floor(2.9)"), "2");
  EXPECT_EQ(Run("ceiling(2.1)"), "3");
  EXPECT_EQ(Run("abs(-4)"), "4");
}

TEST_F(PathTest, EmptyExistsName) {
  EXPECT_EQ(Run("empty(())"), "true");
  EXPECT_EQ(Run("empty((1))"), "false");
  EXPECT_EQ(Run("exists(doc(\"credit\")/account)"), "true");
  EXPECT_EQ(Run("name(doc(\"credit\"))"), "creditAccounts");
}

TEST_F(PathTest, UnknownFunctionIsError) {
  Status st = RunStatus("bogus(1)");
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST_F(PathTest, WrongArityIsError) {
  EXPECT_FALSE(RunStatus("count()").ok());
  EXPECT_FALSE(RunStatus("count((1), (2))").ok());
}

TEST_F(PathTest, GeoHelpers) {
  EXPECT_EQ(Run("distance(\"0 0\", \"3 4\")"), "5");
  EXPECT_EQ(Run("distance(\"0,0\", \"3,4\")"), "5");
  EXPECT_EQ(Run("triangulate(45, 45)"), "50.000 50.000");
}

// ---- User-declared functions ------------------------------------------------------

TEST_F(PathTest, DeclareFunction) {
  EXPECT_EQ(Run("declare function twice($x) { $x * 2 }; twice(21)"), "42");
}

TEST_F(PathTest, DefineFunctionOldSyntax) {
  EXPECT_EQ(Run("define function add($a as xs:integer, $b as xs:integer) "
                "as xs:integer { $a + $b } add(1, 2)"),
            "3");
}

TEST_F(PathTest, RecursiveUserFunction) {
  EXPECT_EQ(
      Run("declare function fact($n) { if ($n <= 1) then 1 else $n * "
          "fact($n - 1) }; fact(6)"),
      "720");
}

TEST_F(PathTest, UserFunctionSeesOnlyParams) {
  Status st = RunStatus(
      "declare function f($x) { $x + $y }; let $y := 1 return f(2)");
  EXPECT_FALSE(st.ok());
}

// ---- Constructors -----------------------------------------------------------------

TEST_F(PathTest, DirectElementConstructor) {
  EXPECT_EQ(Run("<warning>overload</warning>"), "<warning>overload</warning>");
  EXPECT_EQ(Run("<a x=\"1\"/>"), "<a x=\"1\"/>");
}

TEST_F(PathTest, EnclosedExpressionsInContent) {
  EXPECT_EQ(Run("<r>{1 + 1}</r>"), "<r>2</r>");
  EXPECT_EQ(Run("<r>{(1, 2, 3)}</r>"), "<r>1 2 3</r>");
}

TEST_F(PathTest, EnclosedExpressionsInAttributes) {
  EXPECT_EQ(Run("<r id=\"{1 + 1}\"/>"), "<r id=\"2\"/>");
  EXPECT_EQ(Run("<r id=\"v{40 + 2}x\"/>"), "<r id=\"v42x\"/>");
  // The paper's unquoted style.
  EXPECT_EQ(Run("let $i := 7 return <account id={$i}/>"),
            "<account id=\"7\"/>");
}

TEST_F(PathTest, NestedConstructors) {
  EXPECT_EQ(Run("<a><b>{2 + 3}</b><c/></a>"), "<a><b>5</b><c/></a>");
}

TEST_F(PathTest, ConstructorCopiesNodes) {
  EXPECT_EQ(Run("<wrap>{doc(\"credit\")/account[2]/customer}</wrap>"),
            "<wrap><customer>Jane Doe</customer></wrap>");
}

TEST_F(PathTest, ConstructorWithQueryInside) {
  EXPECT_EQ(
      Run("<position>{ triangulate(45, 45) }</position>"),
      "<position>50.000 50.000</position>");
}

TEST_F(PathTest, ComputedElementAndAttribute) {
  EXPECT_EQ(Run("element {\"foo\"} {1 + 1}"), "<foo>2</foo>");
  EXPECT_EQ(Run("element bar {\"x\"}"), "<bar>x</bar>");
  EXPECT_EQ(Run("<a>{attribute id {\"9\"}, \"body\"}</a>"),
            "<a id=\"9\">body</a>");
}

TEST_F(PathTest, CurlyBraceEscapes) {
  EXPECT_EQ(Run("<a>{{literal}}</a>"), "<a>{literal}</a>");
}

TEST_F(PathTest, BoundaryWhitespaceStripped) {
  EXPECT_EQ(Run("<warning> { \"w\" } </warning>"), "<warning>w</warning>");
}

// ---- XCQL interval/version projections ----------------------------------------------

TEST_F(PathTest, VtFromVtToAccessors) {
  EXPECT_EQ(Run("vtFrom(doc(\"credit\")/account[1])"), "1998-10-10T12:20:22");
  EXPECT_EQ(Run("vtTo(doc(\"credit\")/account[1])"), "2003-11-10T09:30:45");
  // vtTo="now" resolves to the evaluation clock.
  EXPECT_EQ(Run("vtTo(doc(\"credit\")/account[2])"), "2003-12-01T00:00:00");
  // Lifespan of an element without attributes spans its children.
  EXPECT_EQ(Run("vtFrom(doc(\"credit\"))"), "1998-10-10T12:20:22");
}

TEST_F(PathTest, IntervalProjectionFiltersByLifespan) {
  // Only the September transaction falls in [2003-09-01, 2003-10-01].
  EXPECT_EQ(Run("count(doc(\"credit\")/account[1]/transaction"
                "?[2003-09-01,2003-10-01])"),
            "1");
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/transaction"
                "?[2003-09-01,2003-10-01]/vendor/text()"),
            "ResAris Contaceu");
}

TEST_F(PathTest, IntervalProjectionClipsLifespans) {
  EXPECT_EQ(Run("string(doc(\"credit\")/account[1]/creditLimit"
                "?[2000-01-01,2002-01-01][1]/@vtFrom)"),
            "2000-01-01T00:00:00");
  EXPECT_EQ(Run("string(doc(\"credit\")/account[1]/creditLimit"
                "?[2000-01-01,2002-01-01][1]/@vtTo)"),
            "2001-04-23T23:11:08");
}

TEST_F(PathTest, PointProjectionNowSelectsCurrentVersion) {
  // ?[now]: only the creditLimit valid at the evaluation time remains.
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/creditLimit?[now]/text()"),
            "5000");
}

TEST_F(PathTest, SuspendedTransactionFiltering) {
  // Paper §6.1: with the current-status check, the $1200 transaction whose
  // status changed to "suspended" must not match.
  EXPECT_EQ(Run("count(doc(\"credit\")//transaction"
                "[amount > 1000][status = \"charged\"])"),
            "1");  // existential match without temporal qualification
  EXPECT_EQ(Run("count(doc(\"credit\")//transaction"
                "[amount > 1000][status?[now] = \"charged\"])"),
            "0");  // the current status is "suspended"
}

TEST_F(PathTest, VersionProjectionSelectsByIndex) {
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/creditLimit#[1]/text()"), "2000");
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/creditLimit#[2]/text()"), "5000");
  EXPECT_EQ(Run("count(doc(\"credit\")/account[1]/creditLimit#[1,2])"), "2");
  EXPECT_EQ(Run("count(doc(\"credit\")/account[1]/creditLimit#[5])"), "0");
}

TEST_F(PathTest, VersionProjectionLast) {
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/creditLimit#[last]/text()"),
            "5000");
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/status#[last]"), "");
}

TEST_F(PathTest, VersionProjectionOfSnapshotIsSingleVersion) {
  EXPECT_EQ(Run("doc(\"credit\")/account[1]/customer#[1]/text()"),
            "John Smith");
  EXPECT_EQ(Run("count(doc(\"credit\")/account[1]/customer#[2])"), "0");
}

TEST_F(PathTest, ProjectionBoundsValidation) {
  EXPECT_FALSE(RunStatus("doc(\"credit\")/account?[2003-02-01,2003-01-01]")
                   .ok());  // begin > end
  EXPECT_FALSE(RunStatus("doc(\"credit\")/account#[3,1]").ok());
  EXPECT_FALSE(RunStatus("doc(\"credit\")/account?[\"junk\"]").ok());
}

TEST_F(PathTest, DefaultProjectionKeepsEverything) {
  EXPECT_EQ(Run("count(doc(\"credit\")/account[1]/creditLimit"
                "?[start,now])"),
            "2");
}

TEST_F(PathTest, PaperQuery2FraudShape) {
  // Paper §3.1 Query 2 over the materialized view (no fraud in this data).
  const char* q = R"(
    for $a in doc("credit")/account
    where sum($a/transaction?[now - PT1H, now]
              [status = "charged"]/amount) >=
          max($a/creditLimit?[now] * 0.9, 5000)
    return <alert><account id={$a/@id}>{$a/customer}</account></alert>)";
  EXPECT_EQ(Run(q), "");
}

TEST_F(PathTest, PaperQuery1MaxedOutShape) {
  // Paper §3.1 Query 1 shape: November transactions vs current limit. The
  // data has no account exceeding the limit, so no result rows.
  const char* q = R"(
    for $a in doc("credit")/account
    where sum($a/transaction?[2003-11-01,2003-12-01]
              [status = "charged"]/amount) >= $a/creditLimit?[now]
    return <account>{attribute id {$a/@id}, $a/customer}</account>)";
  EXPECT_EQ(Run(q), "");
}

// ---- Parser round-trips -------------------------------------------------------------

TEST(ParserTest, AstToStringRoundTrips) {
  const char* queries[] = {
      "1 + 2",
      "for $x in (1, 2) return $x",
      "some $a in $s satisfies ($a = 1)",
      "doc(\"credit\")//transaction[(amount > 1000)]",
      "$a/transaction?[2003-11-01T00:00:00,2003-12-01T00:00:00]",
      "$a/creditLimit#[1,10]",
      "if (($x = 1)) then \"a\" else \"b\"",
  };
  for (const char* q : queries) {
    auto e1 = ParseExpression(q);
    ASSERT_TRUE(e1.ok()) << q << ": " << e1.status().ToString();
    std::string s1 = e1.value()->ToString();
    auto e2 = ParseExpression(s1);
    ASSERT_TRUE(e2.ok()) << s1 << ": " << e2.status().ToString();
    EXPECT_EQ(e2.value()->ToString(), s1) << q;
  }
}

TEST(ParserTest, CloneProducesEqualRendering) {
  auto e = ParseExpression(
      "for $a in doc(\"x\")//y where $a/z > 1 order by $a/w descending "
      "return <out id={$a/@id}>{$a/z}</out>");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value()->Clone()->ToString(), e.value()->ToString());
}

TEST(ParserTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseExpression("for $x in").ok());
  EXPECT_FALSE(ParseExpression("1 +").ok());
  EXPECT_FALSE(ParseExpression("(1, 2").ok());
  EXPECT_FALSE(ParseExpression("$").ok());
  EXPECT_FALSE(ParseExpression("<a>").ok());
  EXPECT_FALSE(ParseExpression("<a></b>").ok());
  EXPECT_FALSE(ParseExpression("e?[1").ok());
  EXPECT_FALSE(ParseExpression("").ok());
  EXPECT_FALSE(ParseExpression("1 2").ok());
}

TEST(ParserTest, CommentsAreSkipped) {
  auto e = ParseExpression("1 (: comment (: nested :) here :) + 2");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

TEST(ParserTest, ParsesPaperRadarQuery) {
  const char* q = R"(
    for $r in stream("radar1")//event,
        $s in stream("radar2")//event
             ?[vtFrom($r) - PT1S, vtTo($r) + PT1S]
    where $r/frequency = $s/frequency
    return <position>{ triangulate($r/angle, $s/angle) }</position>)";
  auto e = ParseExpression(q);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

TEST(ParserTest, ParsesPaperSynAckQuery) {
  const char* q = R"(
    for $s in stream("gsyn")//packet
    where not(some $a in stream("ack")//packet?[vtFrom($s) + PT1M, now]
              satisfies $s/id = $a/id and $s/srcIP = $a/destIP
              and $s/srcPort = $a/destPort)
    return <warning>{ $s/id }</warning>)";
  auto e = ParseExpression(q);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

TEST(ParserTest, ParsesPaperTrafficQueryWithMissingCommas) {
  // The paper's §2 example 3 omits the commas between for-bindings; the
  // parser accepts that form leniently.
  const char* q = R"(
    for $v in stream("vehicle")//event
        $r in stream("road_sensor")//event?[vtFrom($v), vtTo($v)]
        $t in stream("traffic_light")//event?[vtFrom($v), vtTo($v)]
    where distance($v/location, $r/location) < 0.1
      and distance($v/location, $t/location) < 10
      and $v/type = "ambulance"
    return
      <set_traffic_light ID="{$t/id}">
        <status>green</status>
        <time>{vtFrom($t) + (distance($v/location, $t/location)
               div $r/speed) * PT1S}</time>
      </set_traffic_light>)";
  auto e = ParseExpression(q);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
}

}  // namespace
}  // namespace xcql::xq
