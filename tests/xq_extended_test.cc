// Extended engine tests: the XCQL interval-relation operators (paper §2),
// prolog variable declarations, the sequence function library, and engine
// edge cases (recursion guards, error positions, focus semantics).
#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xq/eval.h"
#include "xq/parser.h"

namespace xcql::xq {
namespace {

class ExtendedTest : public ::testing::Test {
 protected:
  ExtendedTest() : registry_(FunctionRegistry::Builtins()) {
    ctx_.functions = &registry_;
    ctx_.now = DateTime::Parse("2004-06-01T00:00:00").value();
  }

  std::string Run(const std::string& query) {
    auto r = EvalQuery(query, &ctx_);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    std::string out;
    for (size_t i = 0; i < r.value().size(); ++i) {
      if (i > 0) out += " ";
      const Item& item = r.value()[i];
      out += IsNode(item) ? SerializeXml(*AsNode(item))
                          : AsAtomic(item).ToStringValue();
    }
    return out;
  }

  Status RunStatus(const std::string& query) {
    return EvalQuery(query, &ctx_).status();
  }

  void LoadDoc(const std::string& name, const std::string& xml) {
    auto r = ParseXml(xml);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ctx_.documents[name] = r.value();
  }

  FunctionRegistry registry_;
  EvalContext ctx_;
};

// ---- Interval relation operators (paper §2: "a before b") -----------------------

class IntervalOpTest : public ExtendedTest {
 protected:
  void SetUp() override {
    LoadDoc("log", R"(
      <log>
        <phase name="build" vtFrom="2004-01-01T00:00:00"
               vtTo="2004-01-01T01:00:00"/>
        <phase name="test" vtFrom="2004-01-01T01:00:00"
               vtTo="2004-01-01T02:30:00"/>
        <phase name="deploy" vtFrom="2004-01-01T02:00:00"
               vtTo="2004-01-01T03:00:00"/>
        <event name="alert" vtFrom="2004-01-01T02:15:00"
               vtTo="2004-01-01T02:15:00"/>
      </log>)");
  }

  std::string Phase(const char* name) {
    return std::string("doc(\"log\")/phase[@name = \"") + name + "\"]";
  }
};

TEST_F(IntervalOpTest, BeforeAndAfterOnDateTimes) {
  EXPECT_EQ(Run("2004-01-01 before 2004-02-01"), "true");
  EXPECT_EQ(Run("2004-02-01 before 2004-01-01"), "false");
  EXPECT_EQ(Run("2004-02-01 after 2004-01-01"), "true");
  // A point is not before itself (closed intervals share the instant).
  EXPECT_EQ(Run("2004-01-01 before 2004-01-01"), "false");
}

TEST_F(IntervalOpTest, ElementLifespans) {
  EXPECT_EQ(Run(Phase("build") + " before " + Phase("deploy")), "true");
  EXPECT_EQ(Run(Phase("deploy") + " after " + Phase("build")), "true");
  // build meets test exactly at 01:00:00.
  EXPECT_EQ(Run(Phase("build") + " meets " + Phase("test")), "true");
  EXPECT_EQ(Run(Phase("build") + " before " + Phase("test")), "false");
  // test and deploy overlap between 02:00 and 02:30.
  EXPECT_EQ(Run(Phase("test") + " overlaps " + Phase("deploy")), "true");
  EXPECT_EQ(Run(Phase("build") + " overlaps " + Phase("deploy")), "false");
}

TEST_F(IntervalOpTest, ContainsAndDuring) {
  EXPECT_EQ(Run(Phase("test") + " contains doc(\"log\")/event"), "true");
  EXPECT_EQ(Run("doc(\"log\")/event during " + Phase("test")), "true");
  EXPECT_EQ(Run("doc(\"log\")/event during " + Phase("build")), "false");
}

TEST_F(IntervalOpTest, MixedElementAndDateTime) {
  EXPECT_EQ(Run(Phase("build") + " before 2004-01-01T02:00:00"), "true");
  EXPECT_EQ(Run(Phase("build") + " contains 2004-01-01T00:30:00"), "true");
  EXPECT_EQ(Run("vtFrom(" + Phase("test") + ") during " + Phase("test")),
            "true");
}

TEST_F(IntervalOpTest, ExistentialOverSequences) {
  // Any phase before deploy?
  EXPECT_EQ(Run("doc(\"log\")/phase before " + Phase("deploy")), "true");
  // Any phase after the alert? deploy ends at 03:00 but starts before the
  // alert, so none is strictly after — except... deploy starts 02:00 which
  // is before 02:15, so no phase lies strictly after the point. Check:
  EXPECT_EQ(Run("doc(\"log\")/phase after doc(\"log\")/event"), "false");
}

TEST_F(IntervalOpTest, InPredicatesAndWhereClauses) {
  // The 02:15 alert falls inside both test [01:00,02:30] and deploy
  // [02:00,03:00].
  EXPECT_EQ(Run("for $p in doc(\"log\")/phase "
                "where $p contains doc(\"log\")/event "
                "return string($p/@name)"),
            "test deploy");
  // All three phases share an instant with test: build touches it at
  // 01:00 (closed intervals), test coincides with itself, deploy overlaps.
  EXPECT_EQ(Run("count(doc(\"log\")/phase[. overlaps " + Phase("test") +
                "])"),
            "3");
}

TEST_F(IntervalOpTest, BadOperandIsError) {
  EXPECT_FALSE(RunStatus("1 before 2").ok());
  EXPECT_FALSE(RunStatus("\"junk\" before 2004-01-01").ok());
}

// ---- Prolog variable declarations -----------------------------------------------

TEST_F(ExtendedTest, DeclareVariable) {
  EXPECT_EQ(Run("declare variable $x := 21; $x * 2"), "42");
}

TEST_F(ExtendedTest, VariablesSeeEarlierVariables) {
  EXPECT_EQ(Run("declare variable $a := 5; "
                "declare variable $b := $a + 1; $b"),
            "6");
}

TEST_F(ExtendedTest, VariableWithTypeAnnotation) {
  EXPECT_EQ(Run("declare variable $x as xs:integer := 7; $x"), "7");
}

TEST_F(ExtendedTest, LetShadowsPrologVariable) {
  EXPECT_EQ(Run("declare variable $x := 1; let $x := 2 return $x"), "2");
}

TEST_F(ExtendedTest, VariableUsableInFunctions) {
  // Function bodies see only parameters, not prolog variables — matching
  // user-function scoping.
  EXPECT_FALSE(
      RunStatus("declare variable $x := 1; "
                "declare function f() { $x }; f()")
          .ok());
}

// ---- Sequence function library ---------------------------------------------------

TEST_F(ExtendedTest, DistinctValues) {
  EXPECT_EQ(Run("distinct-values((1, 2, 1, 3, 2))"), "1 2 3");
  EXPECT_EQ(Run("distinct-values((\"a\", \"b\", \"a\"))"), "a b");
  EXPECT_EQ(Run("distinct-values(())"), "");
  // Numeric equality across int/double.
  EXPECT_EQ(Run("count(distinct-values((1, 1.0)))"), "1");
}

TEST_F(ExtendedTest, Reverse) {
  EXPECT_EQ(Run("reverse((1, 2, 3))"), "3 2 1");
  EXPECT_EQ(Run("reverse(())"), "");
}

TEST_F(ExtendedTest, Subsequence) {
  EXPECT_EQ(Run("subsequence((1, 2, 3, 4, 5), 2, 3)"), "2 3 4");
  EXPECT_EQ(Run("subsequence((1, 2, 3), 2)"), "2 3");
  EXPECT_EQ(Run("subsequence((1, 2, 3), 0, 2)"), "1");
  EXPECT_EQ(Run("subsequence((1, 2, 3), 9)"), "");
}

TEST_F(ExtendedTest, IndexOf) {
  EXPECT_EQ(Run("index-of((10, 20, 10), 10)"), "1 3");
  EXPECT_EQ(Run("index-of((10, 20), 99)"), "");
  EXPECT_EQ(Run("index-of((\"a\", \"b\"), \"b\")"), "2");
}

// ---- Engine edge cases --------------------------------------------------------------

TEST_F(ExtendedTest, RunawayRecursionFailsCleanly) {
  Status st = RunStatus(
      "declare function loop($n) { loop($n + 1) }; loop(0)");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
}

TEST_F(ExtendedTest, MultiItemAtomicEbvIsError) {
  EXPECT_FALSE(RunStatus("if ((1, 2)) then 1 else 2").ok());
}

TEST_F(ExtendedTest, ParseErrorsCarryPositions) {
  auto r = ParseExpression("for $x in (1,2)\nwhere");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST_F(ExtendedTest, MaxMinOverDateTimes) {
  EXPECT_EQ(Run("max((2004-01-01, 2004-06-01, 2004-03-01))"),
            "2004-06-01T00:00:00");
  EXPECT_EQ(Run("min((2004-01-01, 2004-06-01))"), "2004-01-01T00:00:00");
}

TEST_F(ExtendedTest, SumRejectsNonNumeric) {
  EXPECT_FALSE(RunStatus("sum((1, \"abc\"))").ok());
}

TEST_F(ExtendedTest, NumberReturnsNaNForJunk) {
  EXPECT_EQ(Run("number(\"junk\")"), "NaN");
  EXPECT_EQ(Run("number(())"), "NaN");
}

TEST_F(ExtendedTest, OrderBySortsEmptyLeast) {
  LoadDoc("d", "<r><x><k>2</k></x><x/><x><k>1</k></x></r>");
  EXPECT_EQ(Run("for $x in doc(\"d\")/x order by $x/k "
                "return count($x/k)"),
            "0 1 1");
}

TEST_F(ExtendedTest, PositionalPredicateWithArithmetic) {
  EXPECT_EQ(Run("(10, 20, 30)[position() = 3]"), "30");
  EXPECT_EQ(Run("(10, 20, 30)[position() < last()]"), "10 20");
}

TEST_F(ExtendedTest, SerializeFunction) {
  EXPECT_EQ(Run("serialize(<a x=\"1\"><b/></a>)"), "<a x=\"1\"><b/></a>");
}

TEST_F(ExtendedTest, ComparisonChainsAreNotAssociative) {
  // 1 < 2 < 3 parses as (1 < 2) < 3 in XQuery 1.0? Our grammar allows a
  // single comparison per level, so the chain is a parse error.
  EXPECT_FALSE(ParseExpression("1 < 2 < 3").ok());
}

TEST_F(ExtendedTest, UnionOperator) {
  LoadDoc("d", "<r><a>1</a><b>2</b><a>3</a></r>");
  EXPECT_EQ(Run("count(doc(\"d\")/a | doc(\"d\")/b)"), "3");
  // Duplicates (by node identity) appear once.
  EXPECT_EQ(Run("count(doc(\"d\")/a | doc(\"d\")/a)"), "2");
  EXPECT_EQ(Run("count(doc(\"d\")/* | doc(\"d\")/b)"), "3");
  // The spelled-out keyword works too.
  EXPECT_EQ(Run("count(doc(\"d\")/a union doc(\"d\")/b)"), "3");
  // Union requires nodes.
  EXPECT_FALSE(RunStatus("(1, 2) | (3)").ok());
}

TEST_F(ExtendedTest, IntersectAndExcept) {
  LoadDoc("d", "<r><a>1</a><b>2</b><a>3</a></r>");
  EXPECT_EQ(Run("count(doc(\"d\")/* intersect doc(\"d\")/a)"), "2");
  EXPECT_EQ(Run("(doc(\"d\")/* except doc(\"d\")/a)/text()"), "2");
  EXPECT_EQ(Run("count(doc(\"d\")/a except doc(\"d\")/a)"), "0");
  EXPECT_EQ(Run("count(doc(\"d\")/a intersect doc(\"d\")/b)"), "0");
  EXPECT_FALSE(RunStatus("(1) intersect (1)").ok());
}

TEST_F(ExtendedTest, UnionBindsTighterThanMultiplication) {
  LoadDoc("d", "<r><a>1</a><a>2</a></r>");
  EXPECT_EQ(Run("count(doc(\"d\")/a | doc(\"d\")/a) * 10"), "20");
}

TEST_F(ExtendedTest, IntervalOpPrintsAndReparses) {
  auto e = ParseExpression("$a before $b");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->ToString(), "($a before $b)");
  auto again = ParseExpression(e.value()->ToString());
  ASSERT_TRUE(again.ok());
}

}  // namespace
}  // namespace xcql::xq
