// Tests for the Fig. 3 schema-based translation: shapes of the rewritten
// queries under QaC and QaC+, identity under CaQ, and error handling.
#include <gtest/gtest.h>

#include "test_util.h"
#include "xcql/executor.h"

namespace xcql::lang {
namespace {

class TranslationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = testutil::MakeCreditStream();
    ASSERT_NE(store_, nullptr);
    ASSERT_TRUE(exec_.RegisterStream(store_.get()).ok());
  }

  std::string Translate(const std::string& q, ExecMethod m) {
    auto r = exec_.TranslateToText(q, m);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    return r.value();
  }

  std::unique_ptr<frag::FragmentStore> store_;
  QueryExecutor exec_;
};

TEST_F(TranslationTest, CaQIsIdentity) {
  const char* q = "for $a in stream(\"credit\")//account return $a";
  std::string t = Translate(q, ExecMethod::kCaQ);
  EXPECT_NE(t.find("stream(\"credit\")"), std::string::npos) << t;
  EXPECT_EQ(t.find("xcql:get_fillers"), std::string::npos) << t;
}

TEST_F(TranslationTest, StreamBecomesRootFiller) {
  std::string t =
      Translate("stream(\"credit\")/creditAccounts", ExecMethod::kQaC);
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", 0)/creditAccounts"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, FragmentedStepUsesHoleResolution) {
  // Paper §6.1: account is temporal, so the step crosses a hole.
  std::string t = Translate("stream(\"credit\")/creditAccounts/account",
                            ExecMethod::kQaC);
  EXPECT_NE(
      t.find("xcql:get_fillers(\"credit\", "
             "xcql:get_fillers(\"credit\", 0)/creditAccounts/hole/@id)"
             "/account"),
      std::string::npos)
      << t;
}

TEST_F(TranslationTest, SnapshotStepStaysDirect) {
  std::string t = Translate(
      "stream(\"credit\")/creditAccounts/account/customer", ExecMethod::kQaC);
  // customer is snapshot: a direct step after the account hole resolution.
  EXPECT_NE(t.find(")/account/customer"), std::string::npos) << t;
}

TEST_F(TranslationTest, PredicatesTranslateInContext) {
  // The status reference inside the predicate crosses a hole from the
  // transaction context (the paper's §6.1 first translation).
  std::string t = Translate(
      "stream(\"credit\")/creditAccounts/account/"
      "transaction[status = \"charged\"]",
      ExecMethod::kQaC);
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", ./hole/@id)/status"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, DescendantExpandsThroughTheTagStructure) {
  std::string t = Translate("stream(\"credit\")//transaction",
                            ExecMethod::kQaC);
  // Expansion reaches transaction through creditAccounts → account.
  EXPECT_NE(t.find("/transaction"), std::string::npos) << t;
  EXPECT_NE(t.find("xcql:get_fillers"), std::string::npos) << t;
  // No leftover descendant step on fragmented data.
  EXPECT_EQ(t.find("//transaction"), std::string::npos) << t;
}

TEST_F(TranslationTest, QaCPlusCollapsesPurePrefixToTsidScan) {
  // transaction is tsid 5.
  std::string t = Translate(
      "stream(\"credit\")/creditAccounts/account/transaction",
      ExecMethod::kQaCPlus);
  EXPECT_NE(t.find("xcql:tsid_scan(\"credit\", 5)/transaction"),
            std::string::npos)
      << t;
  EXPECT_EQ(t.find("hole"), std::string::npos) << t;
}

TEST_F(TranslationTest, QaCPlusCollapsesDescendantToTsidScan) {
  std::string t =
      Translate("stream(\"credit\")//transaction", ExecMethod::kQaCPlus);
  EXPECT_NE(t.find("xcql:tsid_scan(\"credit\", 5)/transaction"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, QaCPlusStopsDeferringAtPredicates) {
  std::string t = Translate(
      "stream(\"credit\")//account[customer = \"Jane Doe\"]/transaction",
      ExecMethod::kQaCPlus);
  // The predicate forces materialization at account (tsid 2); the deeper
  // transaction step then resolves holes.
  EXPECT_NE(t.find("xcql:tsid_scan(\"credit\", 2)/account"),
            std::string::npos)
      << t;
  EXPECT_NE(t.find("hole"), std::string::npos) << t;
}

TEST_F(TranslationTest, QaCPlusPushesProjectionBoundsIntoTheTsidScan) {
  std::string t = Translate(
      "stream(\"credit\")//transaction?[2003-09-01,2003-10-01]",
      ExecMethod::kQaCPlus);
  EXPECT_NE(t.find("xcql:tsid_scan_range(\"credit\", 5, "
                   "2003-09-01T00:00:00, 2003-10-01T00:00:00)"),
            std::string::npos)
      << t;
  // The projection wrapper remains for lifespan clipping.
  EXPECT_NE(t.find("?[2003-09-01T00:00:00"), std::string::npos) << t;
  // QaC keeps the plain hole-resolving translation.
  std::string qac = Translate(
      "stream(\"credit\")//transaction?[2003-09-01,2003-10-01]",
      ExecMethod::kQaC);
  EXPECT_EQ(qac.find("tsid_scan_range"), std::string::npos) << qac;
}

TEST_F(TranslationTest, PushdownSkipsPredicatedScans) {
  // A predicate on the scanned step blocks the bare-scan pattern; the
  // translation must stay correct (plain scan + hoisted filter).
  std::string t = Translate(
      "stream(\"credit\")//transaction[amount > 10]?[2003-09-01,2003-10-01]",
      ExecMethod::kQaCPlus);
  EXPECT_EQ(t.find("tsid_scan_range"), std::string::npos) << t;
  EXPECT_NE(t.find("xcql:tsid_scan(\"credit\", 5)"), std::string::npos) << t;
}

TEST_F(TranslationTest, ProjectionsArePreservedAndBoundsTranslated) {
  std::string t = Translate(
      "for $a in stream(\"credit\")//account "
      "return $a/transaction?[vtFrom($a), now]",
      ExecMethod::kQaC);
  EXPECT_NE(t.find("?[vtFrom($a)"), std::string::npos) << t;
  // $a/transaction crosses the account hole.
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", $a/hole/@id)/transaction"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, VariablesCarrySchemaPositions) {
  std::string t = Translate(
      "for $a in stream(\"credit\")//account return $a/creditLimit",
      ExecMethod::kQaC);
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", $a/hole/@id)/creditLimit"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, WildcardExpandsOverChildren) {
  std::string t = Translate("stream(\"credit\")//account/*",
                            ExecMethod::kQaC);
  EXPECT_NE(t.find("/customer"), std::string::npos) << t;
  EXPECT_NE(t.find("/creditLimit"), std::string::npos) << t;
  EXPECT_NE(t.find("/transaction"), std::string::npos) << t;
}

TEST_F(TranslationTest, UnknownStreamIsError) {
  std::string t = Translate("stream(\"nope\")//x", ExecMethod::kQaC);
  EXPECT_NE(t.find("ERROR"), std::string::npos) << t;
}

TEST_F(TranslationTest, NonLiteralStreamNameIsError) {
  std::string t = Translate("stream(concat(\"cr\", \"edit\"))//x",
                            ExecMethod::kQaC);
  EXPECT_NE(t.find("ERROR"), std::string::npos) << t;
}

TEST_F(TranslationTest, ParentAxisOnFragmentedDataIsUnsupported) {
  std::string t = Translate("stream(\"credit\")//transaction/..",
                            ExecMethod::kQaC);
  EXPECT_NE(t.find("ERROR"), std::string::npos) << t;
}

TEST_F(TranslationTest, StreamInsideUserFunctionsIsTranslated) {
  std::string t = Translate(
      "declare function f() { stream(\"credit\")//transaction }; count(f())",
      ExecMethod::kQaCPlus);
  EXPECT_NE(t.find("xcql:tsid_scan(\"credit\", 5)"), std::string::npos) << t;
  EXPECT_EQ(t.find("stream("), std::string::npos) << t;
}

TEST_F(TranslationTest, StreamInsidePrologVariablesIsTranslated) {
  std::string t = Translate(
      "declare variable $txns := stream(\"credit\")//transaction; "
      "for $t in $txns return $t/status",
      ExecMethod::kQaC);
  EXPECT_NE(t.find("declare variable $txns"), std::string::npos) << t;
  // The variable's schema position flows into the body: $t/status crosses
  // the status hole.
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", $t/hole/@id)/status"),
            std::string::npos)
      << t;
}

TEST_F(TranslationTest, PaperQuery1TranslationShape) {
  // Paper §6.1's translation of Query 1 resolves account and transaction
  // holes and wraps the window in the interval projection.
  const char* q = R"(
    for $a in stream("credit")/creditAccounts/account
    where sum($a/transaction?[2003-11-01,2003-12-01]
              [status = "charged"]/amount) >= $a/creditLimit?[now]
    return <account>{attribute id {$a/@id}, $a/customer}</account>)";
  std::string t = Translate(q, ExecMethod::kQaC);
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", $a/hole/@id)/transaction"),
            std::string::npos)
      << t;
  EXPECT_NE(t.find("xcql:get_fillers(\"credit\", $a/hole/@id)/creditLimit"),
            std::string::npos)
      << t;
  EXPECT_NE(t.find("?[xcql:now()]"), std::string::npos) << t;
}

}  // namespace
}  // namespace xcql::lang
