// Tests for the XMark substrate: generator determinism, schema validity
// (the documents fragment cleanly under the auction Tag Structure), size
// calibration against the paper's Figure 4 inputs, and correctness of the
// three benchmark queries across all execution methods.
#include <gtest/gtest.h>

#include "common/string_util.h"
#include "test_util.h"
#include "xcql/executor.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace xcql::xmark {
namespace {

TEST(XMarkCountsTest, ScalesWithFloors) {
  XMarkCounts zero = CountsForScale(0.0);
  EXPECT_EQ(zero.items, 4);
  EXPECT_EQ(zero.persons, 8);
  XMarkCounts tenth = CountsForScale(0.1);
  EXPECT_EQ(tenth.items, 2175);
  EXPECT_EQ(tenth.persons, 2550);
  EXPECT_EQ(tenth.open_auctions, 1200);
  EXPECT_EQ(tenth.closed_auctions, 975);
  EXPECT_EQ(tenth.categories, 100);
}

TEST(XMarkGeneratorTest, IsDeterministic) {
  XMarkOptions opts;
  opts.scale = 0.0;
  auto a = GenerateAuctionDoc(opts);
  auto b = GenerateAuctionDoc(opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(Node::DeepEqual(*a.value(), *b.value()));
  opts.seed = 43;
  auto c = GenerateAuctionDoc(opts);
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(Node::DeepEqual(*a.value(), *c.value()));
}

TEST(XMarkGeneratorTest, RejectsNegativeScale) {
  XMarkOptions opts;
  opts.scale = -1;
  EXPECT_FALSE(GenerateAuctionDoc(opts).ok());
}

TEST(XMarkGeneratorTest, HasExpectedShape) {
  XMarkOptions opts;
  opts.scale = 0.0;
  auto doc = GenerateAuctionDoc(opts);
  ASSERT_TRUE(doc.ok());
  const Node& site = *doc.value();
  EXPECT_EQ(site.name(), "site");
  ASSERT_NE(site.FirstChildElement("regions"), nullptr);
  ASSERT_NE(site.FirstChildElement("people"), nullptr);
  ASSERT_NE(site.FirstChildElement("open_auctions"), nullptr);
  ASSERT_NE(site.FirstChildElement("closed_auctions"), nullptr);
  // person0 exists (XMark Q1's target).
  NodePtr people = site.FirstChildElement("people");
  ASSERT_FALSE(people->children().empty());
  EXPECT_EQ(*people->children()[0]->FindAttr("id"), "person0");
  // Every closed auction has a numeric price (Q5's filter).
  NodePtr closed = site.FirstChildElement("closed_auctions");
  for (const NodePtr& c : closed->children()) {
    NodePtr price = c->FirstChildElement("price");
    ASSERT_NE(price, nullptr);
    EXPECT_TRUE(ParseDouble(price->StringValue()).has_value());
  }
}

TEST(XMarkGeneratorTest, FragmentsUnderTheAuctionSchema) {
  XMarkOptions opts;
  opts.scale = 0.0;
  auto doc = GenerateAuctionDoc(opts);
  ASSERT_TRUE(doc.ok());
  auto ts = frag::TagStructure::Parse(AuctionTagStructureXml());
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  frag::Fragmenter fr(&ts.value());
  auto frags = fr.Split(*doc.value());
  ASSERT_TRUE(frags.ok()) << frags.status().ToString();
  // closed_auction fillers carry the paper's tsid 603.
  XMarkCounts counts = CountsForScale(0.0);
  int closed = 0;
  for (const auto& f : frags.value()) {
    if (f.tsid == 603) ++closed;
  }
  EXPECT_EQ(closed, counts.closed_auctions);
}

TEST(XMarkGeneratorTest, SizesTrackThePaperInputs) {
  // Fig. 4 inputs: 27.3KB / 5.8MB / 11.8MB plain. Allow ±20%.
  struct Row {
    double scale;
    double kb;
  } rows[] = {{0.0, 27.3}, {0.05, 5800}};
  for (const Row& row : rows) {
    XMarkOptions opts;
    opts.scale = row.scale;
    auto doc = GenerateAuctionDoc(opts);
    ASSERT_TRUE(doc.ok());
    double kb = static_cast<double>(SerializeXml(*doc.value()).size()) / 1024;
    EXPECT_GT(kb, row.kb * 0.8) << "scale " << row.scale;
    EXPECT_LT(kb, row.kb * 1.2) << "scale " << row.scale;
  }
}

class XMarkQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    XMarkOptions opts;
    opts.scale = 0.0;
    auto doc = GenerateAuctionDoc(opts);
    ASSERT_TRUE(doc.ok());
    std::string xml = SerializeXml(*doc.value());
    store_ = testutil::MakeStream("auction", AuctionTagStructureXml(),
                                  xml.c_str());
    ASSERT_NE(store_, nullptr);
    ASSERT_TRUE(exec_.RegisterStream(store_.get()).ok());
  }

  std::string Run(XMarkQueryId q, lang::ExecMethod m) {
    lang::ExecOptions opts;
    opts.method = m;
    auto r = exec_.Execute(XMarkQueryText(q), opts);
    if (!r.ok()) return "ERROR: " + r.status().ToString();
    return testutil::Render(r.value());
  }

  std::unique_ptr<frag::FragmentStore> store_;
  lang::QueryExecutor exec_;
};

TEST_F(XMarkQueryTest, AllQueriesAgreeAcrossMethods) {
  for (XMarkQueryId q : AllXMarkQueries()) {
    std::string caq = Run(q, lang::ExecMethod::kCaQ);
    std::string qac = Run(q, lang::ExecMethod::kQaC);
    std::string qacp = Run(q, lang::ExecMethod::kQaCPlus);
    EXPECT_EQ(caq, qac) << XMarkQueryName(q);
    EXPECT_EQ(qac, qacp) << XMarkQueryName(q);
    EXPECT_EQ(caq.find("ERROR"), std::string::npos)
        << XMarkQueryName(q) << ": " << caq;
  }
}

TEST_F(XMarkQueryTest, Q1FindsPersonZero) {
  std::string r = Run(XMarkQueryId::kQ1, lang::ExecMethod::kQaCPlus);
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.find("ERROR"), std::string::npos) << r;
}

TEST_F(XMarkQueryTest, Q2EmitsOneIncreasePerAuction) {
  std::string r = Run(XMarkQueryId::kQ2, lang::ExecMethod::kQaCPlus);
  size_t n = 0;
  for (size_t pos = 0; (pos = r.find("<increase", pos)) != std::string::npos;
       ++pos) {
    ++n;
  }
  EXPECT_EQ(n, static_cast<size_t>(CountsForScale(0.0).open_auctions)) << r;
}

TEST_F(XMarkQueryTest, Q5CountsExpensiveClosedAuctions) {
  std::string r = Run(XMarkQueryId::kQ5, lang::ExecMethod::kQaCPlus);
  auto count = ParseInt64(r);
  ASSERT_TRUE(count.has_value()) << r;
  EXPECT_GE(*count, 0);
  EXPECT_LE(*count, CountsForScale(0.0).closed_auctions);
}

TEST_F(XMarkQueryTest, QaCPlusUsesTheTsidIndexForQ5) {
  auto t = exec_.TranslateToText(XMarkQueryText(XMarkQueryId::kQ5),
                                 lang::ExecMethod::kQaCPlus);
  ASSERT_TRUE(t.ok());
  EXPECT_NE(t.value().find("xcql:tsid_scan(\"auction\", 603)"),
            std::string::npos)
      << t.value();
}

}  // namespace
}  // namespace xcql::xmark
