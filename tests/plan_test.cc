// Unit tests for the compiled-plan layer (xq/plan.h): lowering, constant
// folding, slot-resolved variables, external bindings, user functions, and
// the interpreter-fallback triggers. The broad semantic property (compiled
// == interpreted over randomized documents) lives in
// xcql_random_equivalence_test.cc; these tests pin the plan-specific
// mechanics.
#include <gtest/gtest.h>

#include "xq/eval.h"
#include "xq/parser.h"
#include "xq/plan.h"
#include "xq/value.h"

namespace xcql::xq {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanCompileResult Compile(const std::string& query) {
    auto prog = ParseQuery(query);
    EXPECT_TRUE(prog.ok()) << prog.status().ToString();
    if (!prog.ok()) return {};
    return CompileProgram(prog.value(), registry_);
  }

  // Compiles (asserting it lowers) and executes with the given bindings.
  Result<Sequence> Run(const std::string& query,
                       const std::map<std::string, Sequence>& bindings = {}) {
    PlanCompileResult compiled = Compile(query);
    EXPECT_NE(compiled.plan, nullptr)
        << query << " fell back: " << compiled.fallback_reason;
    if (compiled.plan == nullptr) {
      return Status::Internal(compiled.fallback_reason);
    }
    EvalContext ctx;
    ctx.functions = &registry_;
    return compiled.plan->Execute(&ctx, bindings);
  }

  std::string RunToString(const std::string& query) {
    auto r = Run(query);
    EXPECT_TRUE(r.ok()) << query << ": " << r.status().ToString();
    return r.ok() ? SequenceToString(r.value()) : "<error>";
  }

  FunctionRegistry registry_ = FunctionRegistry::Builtins();
};

// ---- Constant folding ------------------------------------------------------

TEST_F(PlanTest, FoldsLiteralArithmetic) {
  PlanCompileResult c = Compile("1 + 2");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  EXPECT_NE(c.plan->DebugString().find("const (3)"), std::string::npos)
      << c.plan->DebugString();
}

TEST_F(PlanTest, FoldsComparisonsAndShortCircuits) {
  PlanCompileResult c = Compile("2 < 3 or 1 = 2");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  // The whole disjunction folds: 2 < 3 folds to true, which decides `or`.
  EXPECT_NE(c.plan->DebugString().find("const (true)"), std::string::npos)
      << c.plan->DebugString();
}

TEST_F(PlanTest, FoldsRangeExpression) {
  PlanCompileResult c = Compile("1 to 4");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  EXPECT_NE(c.plan->DebugString().find("const (1 2 3 4)"), std::string::npos)
      << c.plan->DebugString();
}

TEST_F(PlanTest, DoesNotFoldTemporalArithmetic) {
  // dateTime/duration arithmetic resolves "now" against the evaluation
  // clock, so it must stay a runtime op even over literals.
  PlanCompileResult c = Compile("2004-01-01T00:00:00 + P1D");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  EXPECT_NE(c.plan->DebugString().find("binary +"), std::string::npos)
      << c.plan->DebugString();
}

TEST_F(PlanTest, FoldingFailureStaysRuntimeError) {
  // div-by-zero must not fail compilation; the error surfaces lazily at
  // Execute, exactly as in the interpreter.
  PlanCompileResult c = Compile("1 div 0");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  EXPECT_NE(c.plan->DebugString().find("binary div"), std::string::npos)
      << c.plan->DebugString();
  EvalContext ctx;
  ctx.functions = &registry_;
  auto r = c.plan->Execute(&ctx, {});
  EXPECT_FALSE(r.ok());
}

TEST_F(PlanTest, UnreachedFoldingFailureDoesNotRaise) {
  EXPECT_EQ(RunToString("if (1 = 1) then 7 else 1 div 0"), "7");
}

// ---- Execution -------------------------------------------------------------

TEST_F(PlanTest, EvaluatesFlworWithSlots) {
  EXPECT_EQ(RunToString("for $i in 1 to 3 return $i * 10"), "10 20 30");
  EXPECT_EQ(RunToString("for $i in 1 to 3 order by $i descending return $i"),
            "3 2 1");
  EXPECT_EQ(RunToString("for $i at $p in (5, 6) return $p * 100 + $i"),
            "105 206");
}

TEST_F(PlanTest, LetShadowingResolvesToDistinctSlots) {
  EXPECT_EQ(RunToString("let $x := 1 return (let $x := $x + 1 return $x)"),
            "2");
}

TEST_F(PlanTest, NativeCallsResolveAtCompileTime) {
  EXPECT_EQ(RunToString("count((1, 2, 3))"), "3");
  EXPECT_EQ(RunToString("concat(\"a\", \"b\")"), "ab");
}

TEST_F(PlanTest, UserFunctionsCompileToFixedFrames) {
  EXPECT_EQ(RunToString("declare function twice($x) { $x * 2 }; twice(21)"),
            "42");
  EXPECT_EQ(RunToString("declare function add($a, $b) { $a + $b }; "
                        "declare function inc($n) { add($n, 1) }; inc(41)"),
            "42");
}

TEST_F(PlanTest, PrologVariablesEvaluateInOrder) {
  EXPECT_EQ(RunToString("declare variable $a := 2; "
                        "declare variable $b := $a * 3; $a + $b"),
            "8");
}

// ---- External bindings -----------------------------------------------------

TEST_F(PlanTest, ExternalVariablesBindByName) {
  PlanCompileResult c = Compile("$x + 1");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  ASSERT_EQ(c.plan->external_names().size(), 1u);
  EXPECT_EQ(c.plan->external_names()[0], "x");
  EvalContext ctx;
  ctx.functions = &registry_;
  std::map<std::string, Sequence> bindings;
  bindings["x"] = SingletonAtomic(Atomic(static_cast<int64_t>(41)));
  auto r = c.plan->Execute(&ctx, bindings);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(SequenceToString(r.value()), "42");
}

TEST_F(PlanTest, UnboundExternalRaisesLazily) {
  PlanCompileResult c = Compile("if (1 = 2) then $missing else 9");
  ASSERT_NE(c.plan, nullptr) << c.fallback_reason;
  EvalContext ctx;
  ctx.functions = &registry_;
  auto ok = c.plan->Execute(&ctx, {});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(SequenceToString(ok.value()), "9");

  PlanCompileResult c2 = Compile("$missing + 1");
  ASSERT_NE(c2.plan, nullptr) << c2.fallback_reason;
  auto err = c2.plan->Execute(&ctx, {});
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().ToString().find("undefined variable $missing"),
            std::string::npos)
      << err.status().ToString();
}

// ---- Fallback triggers -----------------------------------------------------

TEST_F(PlanTest, RecursiveFunctionFallsBack) {
  PlanCompileResult c = Compile(
      "declare function f($n) { if ($n <= 0) then 0 else f($n - 1) }; f(3)");
  EXPECT_EQ(c.plan, nullptr);
  EXPECT_NE(c.fallback_reason.find("forward or recursive"),
            std::string::npos)
      << c.fallback_reason;
}

TEST_F(PlanTest, DuplicateFunctionDeclarationFallsBack) {
  PlanCompileResult c = Compile(
      "declare function f() { 1 }; declare function f() { 2 }; f()");
  EXPECT_EQ(c.plan, nullptr);
  EXPECT_NE(c.fallback_reason.find("duplicate"), std::string::npos)
      << c.fallback_reason;
}

TEST_F(PlanTest, UnknownFunctionFallsBack) {
  PlanCompileResult c = Compile("no:such-function(1)");
  EXPECT_EQ(c.plan, nullptr);
  EXPECT_NE(c.fallback_reason.find("unknown function"), std::string::npos)
      << c.fallback_reason;
}

TEST_F(PlanTest, ArityMismatchFallsBack) {
  PlanCompileResult c = Compile(
      "declare function one($x) { $x }; one(1, 2)");
  EXPECT_EQ(c.plan, nullptr);
  EXPECT_FALSE(c.fallback_reason.empty());
}

// ---- Differential spot-check against the interpreter ----------------------

TEST_F(PlanTest, MatchesInterpreterOnConstructors) {
  const char* kQueries[] = {
      "for $i in 1 to 3 return <n v=\"{$i}\">{$i * $i}</n>",
      "element box { attribute size { 2 + 3 }, \"payload\" }",
      "let $s := (3, 1, 2) return (max($s), min($s), avg($s))",
      "string-join(for $i in 1 to 3 return string($i), \"-\")",
  };
  for (const char* q : kQueries) {
    PlanCompileResult c = Compile(q);
    ASSERT_NE(c.plan, nullptr) << q << ": " << c.fallback_reason;
    EvalContext plan_ctx;
    plan_ctx.functions = &registry_;
    auto compiled = c.plan->Execute(&plan_ctx, {});
    ASSERT_TRUE(compiled.ok()) << q << ": "
                               << compiled.status().ToString();
    EvalContext interp_ctx;
    interp_ctx.functions = &registry_;
    auto interpreted = EvalQuery(q, &interp_ctx);
    ASSERT_TRUE(interpreted.ok()) << q << ": "
                                  << interpreted.status().ToString();
    EXPECT_EQ(SequenceToString(compiled.value()),
              SequenceToString(interpreted.value()))
        << q;
  }
}

}  // namespace
}  // namespace xcql::xq
