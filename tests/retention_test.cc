// Tests for bounded-memory retention (docs/RETENTION.md): the
// ObservableWindow analysis, RetentionPolicy store compaction with
// tombstones, the EXPIRED frame codec, StreamServer history trimming, the
// server's retention driver (frame-log GC in lockstep with WAL
// checkpoints, incl. fork-based kill points at the trim boundary), the
// EXPIRED resume protocol for frames / fillers / result ranges, and a
// bounded chaos soak where surviving subscribers converge byte-identical
// on the retained window.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "frag/assembler.h"
#include "frag/fragment.h"
#include "frag/fragment_store.h"
#include "net/chaos.h"
#include "net/frame.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "net/wal.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xcql/executor.h"
#include "xml/serializer.h"
#include "xq/context.h"

namespace xcql {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

frag::TagStructure MustParseTs(const std::string& xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
  </tag>
</tag>)";

constexpr const char* kMixedTs = R"(
<tag type="snapshot" id="1" name="db">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="balance"/>
  </tag>
  <tag type="event" id="4" name="tx"/>
</tag>)";

lang::QueryRelevance Analyze(const std::string& ts_xml,
                             const std::string& stream,
                             const std::string& query) {
  static std::vector<std::unique_ptr<frag::FragmentStore>>* keep =
      new std::vector<std::unique_ptr<frag::FragmentStore>>();
  keep->push_back(std::make_unique<frag::FragmentStore>(MustParseTs(ts_xml),
                                                        stream));
  lang::QueryExecutor ex;
  EXPECT_TRUE(ex.RegisterStream(keep->back().get()).ok());
  auto prep = ex.Prepare(query, lang::ExecMethod::kQaCPlus);
  EXPECT_TRUE(prep.ok()) << prep.status().ToString();
  if (!prep.ok()) return {};
  return prep.value().relevance;
}

// ---- Minimal observable window analysis -------------------------------------

TEST(ObservableWindowTest, PlainStreamScanIsUnboundedAndPins) {
  auto rel = Analyze(kPacketTs, "pkts",
                     "for $p in stream(\"pkts\")//packet "
                     "return string($p/id)");
  EXPECT_FALSE(rel.window.bounded);
  EXPECT_EQ(DateTime::Start(), rel.window.FloorAt(DateTime(100000)));
}

TEST(ObservableWindowTest, SlidingLookbackBoundsTheWindow) {
  auto rel = Analyze(kPacketTs, "pkts",
                     "for $p in stream(\"pkts\")//packet?[now - \"PT600S\", "
                     "now] return string($p/id)");
  EXPECT_TRUE(rel.window.bounded);
  EXPECT_EQ(600, rel.window.lookback_s);
  EXPECT_EQ(DateTime(100000 - 600), rel.window.FloorAt(DateTime(100000)));
}

TEST(ObservableWindowTest, AbsoluteLowerBoundIsAFixedFloor) {
  auto rel = Analyze(kPacketTs, "pkts",
                     "count(stream(\"pkts\")//packet?"
                     "[\"1970-01-02T00:00:00\", now])");
  EXPECT_TRUE(rel.window.bounded);
  EXPECT_EQ(DateTime(86400), rel.window.FloorAt(DateTime(100000000)));
}

TEST(ObservableWindowTest, PredicatedProjectionInputVoidsTheBound) {
  // The predicate can observe versions the projection clips, so the
  // window promise would be unsound; analysis must fall back to pinning.
  auto rel = Analyze(kPacketTs, "pkts",
                     "for $p in stream(\"pkts\")//packet[id = \"7\"]"
                     "?[now - \"PT600S\", now] return string($p/id)");
  EXPECT_FALSE(rel.window.bounded);
}

TEST(ObservableWindowTest, UnionTakesTheLoosestBound) {
  auto rel = Analyze(kPacketTs, "pkts",
                     "(count(stream(\"pkts\")//packet?[now - \"PT60S\", "
                     "now]), count(stream(\"pkts\")//packet?"
                     "[now - \"PT600S\", now]))");
  EXPECT_TRUE(rel.window.bounded);
  EXPECT_EQ(600, rel.window.lookback_s);
}

TEST(ObservableWindowTest, AnyUnwindowedAccessPins) {
  auto rel = Analyze(kPacketTs, "pkts",
                     "(count(stream(\"pkts\")//packet?[now - \"PT60S\", "
                     "now]), count(stream(\"pkts\")//packet))");
  EXPECT_FALSE(rel.window.bounded);
}

TEST(ObservableWindowTest, NoStoreAccessNeverPins) {
  auto rel = Analyze(kPacketTs, "pkts", "1 + 2");
  EXPECT_TRUE(rel.window.bounded);
  // No access at all: the floor is the loosest possible (End), so the
  // query never constrains retention.
  EXPECT_EQ(DateTime::End(), rel.window.FloorAt(DateTime(1000)));
}

// ---- EXPIRED frame codec ----------------------------------------------------

TEST(ExpiredCodecTest, RoundTripsAllKinds) {
  net::Expired range;
  range.kind = net::Expired::kRange;
  range.first_seq = 42;
  net::Expired filler;
  filler.kind = net::Expired::kFiller;
  filler.filler_id = 7;
  net::Expired results;
  results.kind = net::Expired::kResultRange;
  results.query_id = 0xdeadbeefull;
  results.first_seq = 1234;
  for (const net::Expired& in : {range, filler, results}) {
    auto out = net::DecodeExpired(net::EncodeExpired(in));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.value().kind, in.kind);
    EXPECT_EQ(out.value().first_seq, in.first_seq);
    EXPECT_EQ(out.value().filler_id, in.filler_id);
    EXPECT_EQ(out.value().query_id, in.query_id);
  }
}

TEST(ExpiredCodecTest, RejectsTruncatedPayloads) {
  net::Expired in;
  in.kind = net::Expired::kResultRange;
  in.query_id = 9;
  in.first_seq = 10;
  const std::string bytes = net::EncodeExpired(in);
  for (size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_FALSE(net::DecodeExpired(std::string_view(bytes).substr(0, n)).ok())
        << "accepted a " << n << "-byte prefix";
  }
}

// ---- FragmentStore compaction ----------------------------------------------

frag::Fragment Frag(int64_t id, int tsid, int64_t t, const char* name,
                    const std::string& text = "") {
  frag::Fragment f;
  f.id = id;
  f.tsid = tsid;
  f.valid_time = DateTime(t);
  f.content = Node::Element(name);
  if (!text.empty()) f.content->AddChild(Node::Text(text));
  return f;
}

TEST(CompactTest, LifespanRulePerTagType) {
  frag::FragmentStore store(MustParseTs(kMixedTs), "db");
  // Temporal account 10: versions at 100, 200, 500 — the 100-version's
  // lifespan ends at 200 (below the floor), the 200-version's at 500
  // (above it), and the 500-version is open at now.
  for (int64_t t : {100, 200, 500}) {
    ASSERT_TRUE(store.Insert(Frag(10, 2, t, "account")).ok());
  }
  // Events at 100 (below the floor: removable) and 400 (above: kept).
  ASSERT_TRUE(store.Insert(Frag(20, 4, 100, "tx")).ok());
  ASSERT_TRUE(store.Insert(Frag(21, 4, 400, "tx")).ok());
  // Snapshot balance 30: the 100-transmission was replaced at 200 —
  // superseded snapshots are removable regardless of the floor.
  ASSERT_TRUE(store.Insert(Frag(30, 3, 100, "balance", "5")).ok());
  ASSERT_TRUE(store.Insert(Frag(30, 3, 200, "balance", "6")).ok());

  frag::RetentionPolicy policy;
  policy.max_age_s = 0;  // everything below `now` is in the time window
  auto stats = store.Compact(policy, DateTime(1000), DateTime(300));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().removed_fragments, 3);  // acct@100, tx@100, bal@100
  EXPECT_EQ(stats.value().expired_fillers, 1);    // event filler 20

  EXPECT_EQ(store.VersionTimes(10), (std::vector<int64_t>{200, 500}));
  EXPECT_TRUE(store.VersionTimes(20).empty());
  EXPECT_TRUE(store.IsExpired(20));
  EXPECT_EQ(store.VersionTimes(21), (std::vector<int64_t>{400}));
  EXPECT_EQ(store.VersionTimes(30), (std::vector<int64_t>{200}));
  EXPECT_EQ(store.retention_floor(), DateTime(300));
}

TEST(CompactTest, ObserveFloorPinsCompaction) {
  frag::FragmentStore store(MustParseTs(kMixedTs), "db");
  for (int64_t t : {100, 200, 300}) {
    ASSERT_TRUE(store.Insert(Frag(20 + t, 4, t, "tx")).ok());
  }
  frag::RetentionPolicy policy;
  policy.max_age_s = 0;
  // An unbounded query pins the floor at Start(): nothing may go.
  auto pinned = store.Compact(policy, DateTime(1000), DateTime::Start());
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned.value().removed_fragments, 0);
  EXPECT_EQ(store.size(), 3u);
  // Nothing pinning (End()): the policy window governs.
  auto free = store.Compact(policy, DateTime(1000), DateTime::End());
  ASSERT_TRUE(free.ok());
  EXPECT_EQ(free.value().removed_fragments, 3);
}

TEST(CompactTest, ZeroCountWindowIsSafeAndCompactsEverythingRemovable) {
  // The --retain-frames 0 extreme: the count window keeps nothing. The
  // cut index then equals the fragment count, which must not read one
  // past the end of the validTime array; lifespan rules and the observe
  // floor still decide what actually goes.
  frag::FragmentStore store(MustParseTs(kMixedTs), "db");
  for (int64_t t : {100, 200, 300}) {
    ASSERT_TRUE(store.Insert(Frag(20 + t, 4, t, "tx")).ok());
  }
  // An open temporal lifespan survives even a keep-nothing window.
  ASSERT_TRUE(store.Insert(Frag(10, 2, 150, "account")).ok());
  frag::RetentionPolicy policy;
  policy.max_fragments = 0;
  auto stats = store.Compact(policy, DateTime(1000), DateTime::End());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().removed_fragments, 3);  // the three events
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.VersionTimes(10), (std::vector<int64_t>{150}));
}

TEST(CompactTest, TombstoneDistinguishesExpiredFromLost) {
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  // Root holds holes for fillers 1 (expired below) and 2 (never arrived).
  frag::Fragment root;
  root.id = 0;
  root.tsid = 1;
  root.valid_time = DateTime(999);
  root.content = Node::Element("packets");
  root.content->AddChild(frag::MakeHole(1, 2));
  root.content->AddChild(frag::MakeHole(2, 2));
  ASSERT_TRUE(store.Insert(std::move(root)).ok());
  ASSERT_TRUE(store.Insert(Frag(1, 2, 100, "packet")).ok());

  frag::RetentionPolicy policy;
  policy.max_age_s = 0;
  auto stats = store.Compact(policy, DateTime(5000), DateTime(4000));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(store.IsExpired(1));
  EXPECT_FALSE(store.IsExpired(2));
  // The dangling-edge report: only the genuinely lost filler shows up —
  // NACKing the expired one upstream would be answered EXPIRED anyway.
  EXPECT_EQ(store.MissingFillers(), (std::vector<int64_t>{2}));
  // The view still materializes; the expired filler resolves as empty.
  auto view = frag::Temporalize(store, false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
}

TEST(CompactTest, LateArrivalBelowFloorOfExpiredFillerIsDropped) {
  frag::FragmentStore store(MustParseTs(kMixedTs), "db");
  ASSERT_TRUE(store.Insert(Frag(20, 4, 100, "tx")).ok());
  frag::RetentionPolicy policy;
  policy.max_age_s = 0;
  ASSERT_TRUE(store.Compact(policy, DateTime(1000), DateTime(500)).ok());
  ASSERT_TRUE(store.IsExpired(20));
  // A retransmission below the floor must not resurrect half a chain.
  ASSERT_TRUE(store.Insert(Frag(20, 4, 100, "tx")).ok());
  EXPECT_TRUE(store.VersionTimes(20).empty());
  EXPECT_TRUE(store.IsExpired(20));
  // A genuinely new version above the floor clears the tombstone.
  ASSERT_TRUE(store.Insert(Frag(20, 4, 800, "tx")).ok());
  EXPECT_EQ(store.VersionTimes(20), (std::vector<int64_t>{800}));
  EXPECT_FALSE(store.IsExpired(20));
}

// ---- StreamServer history trimming -----------------------------------------

frag::Fragment MakePacket(int64_t id, int64_t t, int pkt) {
  frag::Fragment f;
  f.id = id;
  f.tsid = 2;
  f.valid_time = DateTime(t);
  f.content = Node::Element("packet");
  NodePtr pid = Node::Element("id");
  pid->AddChild(Node::Text(std::to_string(pkt)));
  f.content->AddChild(std::move(pid));
  return f;
}

frag::Fragment MakeRoot(const std::vector<int64_t>& hole_ids) {
  frag::Fragment f;
  f.id = 0;
  f.tsid = 1;
  f.valid_time = DateTime(999);
  f.content = Node::Element("packets");
  for (int64_t id : hole_ids) f.content->AddChild(frag::MakeHole(id, 2));
  return f;
}

TEST(TrimHistoryTest, PositionsStayAbsoluteAcrossTrims) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  EXPECT_EQ(source.history_base(), 0);
  EXPECT_EQ(source.history_size(), 6);
  EXPECT_EQ(source.TrimHistory(3), 3);
  EXPECT_EQ(source.history_base(), 3);
  EXPECT_EQ(source.history_size(), 6);
  // Absolute positions survive: position 3 still names the same fragment.
  EXPECT_EQ(source.history_at(3).valid_time, DateTime(1020));
  // Re-trimming below the base is a no-op, not a negative trim.
  EXPECT_EQ(source.TrimHistory(1), 0);
  EXPECT_EQ(source.history_base(), 3);
}

// ---- Networked retention: EXPIRED resume protocol ---------------------------

template <typename Pred>
bool PollFor(Pred pred, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

net::RemoteQuerySpec Spec(const std::string& text,
                          uint8_t method = 2 /* kQaCPlus */) {
  net::RemoteQuerySpec spec;
  spec.text = text;
  spec.method = method;
  return spec;
}

TEST(RetentionServerTest, LateResumeBelowTheFloorGetsExpiredAndConverges) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::FragmentServerOptions sopts;
  sopts.retention.max_frames = 16;
  sopts.retention.check_every = 4;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Early life witnessed by subscriber A, which then goes to sleep.
  ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  net::FragmentSubscriberOptions aopts;
  aopts.port = server.port();
  aopts.stream = "pkts";
  net::FragmentSubscriber a(aopts);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(a.WaitForSeq(10, 10s));
  EXPECT_TRUE(a.server_retention());
  const int64_t a_last = a.last_seq();
  const uint64_t epoch = a.server_epoch();
  a.Stop();

  // While A sleeps the stream outgrows the retention window; the head
  // (a live root snapshot) is unpinned by a refresh and retired.
  for (int i = 10; i < 60; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  ASSERT_TRUE(PollFor([&] { return server.log_base() > a_last; }, 10s));
  const net::MetricsSnapshot sm = server.metrics();
  EXPECT_GT(sm.retention_runs, 0);
  EXPECT_GT(sm.frames_retired, 0);
  EXPECT_GE(sm.frames_refreshed, 1);  // the root snapshot
  EXPECT_EQ(sm.retention_floor_seq, server.log_base());
  EXPECT_GT(sm.frame_log_bytes, 0);

  // A fresh subscriber replays from -1: the run below the floor arrives
  // as one EXPIRED frame, then the retained suffix — no gap, no loss.
  net::FragmentSubscriberOptions bopts;
  bopts.port = server.port();
  bopts.stream = "pkts";
  net::FragmentSubscriber b(bopts);
  ASSERT_TRUE(b.Start().ok());
  const int64_t last = server.next_seq() - 1;
  ASSERT_TRUE(b.WaitForSeq(last, 10s));
  EXPECT_GE(b.metrics().expired_in, 1);
  EXPECT_EQ(b.metrics().gaps_detected, 0);

  // A wakes up holding (last_seq, epoch) from before the trim — its
  // resume point is below the floor now. Same handshake, same guarantee.
  aopts.initial_last_seq = a_last;
  aopts.known_epoch = epoch;
  net::FragmentSubscriber a2(aopts);
  ASSERT_TRUE(a2.Start().ok());
  ASSERT_TRUE(a2.WaitForSeq(last, 10s));
  EXPECT_GE(a2.metrics().expired_in, 1);
  EXPECT_EQ(a2.metrics().gaps_detected, 0);
  EXPECT_EQ(a2.metrics().epoch_resets, 0);
  EXPECT_GE(server.metrics().expired_out, 2);

  a2.Stop();
  b.Stop();
  server.Stop();
}

// A peer that never negotiated EXPIRED frames and resumes below the floor
// gets a clean BYE, not a frame type it would treat as corruption.
TEST(RetentionServerTest, UnnegotiatedLateResumeGetsACleanBye) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::FragmentServerOptions sopts;
  sopts.retention.max_frames = 8;
  sopts.retention.check_every = 4;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  ASSERT_TRUE(PollFor([&] { return server.log_base() > 0; }, 10s));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto send_frame = [&](const net::Frame& f) {
    auto bytes = net::EncodeFrame(f);
    ASSERT_TRUE(bytes.ok());
    size_t off = 0;
    while (off < bytes.value().size()) {
      ssize_t n = ::send(fd, bytes.value().data() + off,
                         bytes.value().size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  };
  net::Hello hello;
  hello.stream_name = "pkts";  // flags = 0: no retention negotiation
  send_frame({net::FrameType::kHello, 0, 0, net::EncodeHello(hello)});
  net::FrameReader reader;
  char buf[4096];
  bool got_bye = false, got_expired = false, acked = false;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline && !got_bye) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (next.value().has_value()) {
      const net::Frame& f = next.value().value();
      if (f.type == net::FrameType::kHello && !acked) {
        acked = true;
        send_frame({net::FrameType::kReplayFrom, 0, 0,
                    net::EncodeReplayFrom(-1)});
      }
      if (f.type == net::FrameType::kBye) got_bye = true;
      if (f.type == net::FrameType::kExpired) got_expired = true;
      continue;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reader.Feed(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_TRUE(got_bye);
  EXPECT_FALSE(got_expired);
  server.Stop();
}

TEST(RetentionServerTest, NackForACompactedFillerResolvesAsExpired) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::FragmentServerOptions sopts;
  sopts.retention.max_frames = 6;
  sopts.retention.check_every = 2;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Filler 1's frames land early and get retired; filler 2's survive.
  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1, 1000 + i * 10, i)).ok());
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(2, 5000 + i * 10, 100 + i)).ok());
  }
  ASSERT_TRUE(PollFor([&] { return server.log_base() >= 5; }, 10s));

  net::FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  opts.repair_retry_interval = 30ms;
  net::FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(server.next_seq() - 1, 10s));

  // The retained replay carries the refreshed root, whose hole for filler
  // 1 now dangles: the repair sweep NACKs it and the server answers
  // EXPIRED — resolved deliberately, no budget burned, nothing "lost".
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(sub.DrainInto(&store).ok());
  ASSERT_EQ(store.MissingFillers(), (std::vector<int64_t>{1}));

  ASSERT_TRUE(PollFor(
      [&] {
        auto sweep = sub.RepairMissing(store);
        if (!sweep.ok()) return false;
        (void)sub.DrainInto(&store);
        return sweep.value().expired_total >= 1;
      },
      10s));
  auto sweep = sub.RepairMissing(store);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.value().expired_total, 1);
  EXPECT_EQ(sweep.value().lost_total, 0);
  EXPECT_EQ(sweep.value().repaired_total, 0);
  EXPECT_GE(sub.metrics().fillers_expired, 1);
  EXPECT_GE(server.metrics().expired_out, 1);
  // The store still materializes around the expired filler.
  auto view = frag::Temporalize(store, false);
  ASSERT_TRUE(view.ok()) << view.status().ToString();

  sub.Stop();
  server.Stop();
}

// A trimmed frame log must not turn genuine upstream loss into a polite
// "expired": only fillers whose logged frames retention actually retired
// are answered EXPIRED; a filler that was never published stays silent so
// the subscriber's repair budget still reports it lost.
TEST(RetentionServerTest, NackForANeverPublishedFillerStaysLostNotExpired) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::FragmentServerOptions sopts;
  sopts.retention.max_frames = 6;
  sopts.retention.check_every = 2;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  // Filler 1's frames land early and get retired; filler 2's never land
  // at all. Both leave dangling holes in the root, but only 1 may be
  // answered EXPIRED.
  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1, 1000 + i * 10, i)).ok());
  }
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(3, 5000 + i * 10, 100 + i)).ok());
  }
  ASSERT_TRUE(PollFor([&] { return server.log_base() >= 5; }, 10s));

  net::FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  opts.repair_retry_interval = 30ms;
  opts.repair_retry_budget = 2;
  net::FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(server.next_seq() - 1, 10s));

  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(sub.DrainInto(&store).ok());
  ASSERT_EQ(store.MissingFillers(), (std::vector<int64_t>{1, 2}));

  ASSERT_TRUE(PollFor(
      [&] {
        auto sweep = sub.RepairMissing(store);
        if (!sweep.ok()) return false;
        (void)sub.DrainInto(&store);
        return sweep.value().expired_total >= 1 &&
               sweep.value().lost_total >= 1;
      },
      15s));
  auto sweep = sub.RepairMissing(store);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.value().expired_total, 1);  // filler 1: retired frames
  EXPECT_EQ(sweep.value().lost_total, 1);     // filler 2: real loss
  EXPECT_EQ(sweep.value().repaired_total, 0);

  sub.Stop();
  server.Stop();
}

TEST(RetentionServerTest, TrimmedResultLogResumesViaExpiredResultRange) {
  constexpr const char* kIdQuery =
      "for $p in stream(\"pkts\")//packet return string($p/id)";
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  net::FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  sopts.retention.max_results = 4;
  sopts.retention.check_every = 2;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  net::FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  net::FragmentSubscriber one(opts);
  auto tok1 = one.AddRemoteQuery(Spec(kIdQuery));
  ASSERT_TRUE(tok1.ok());
  ASSERT_TRUE(one.Start().ok());
  ASSERT_TRUE(one.WaitQueryActive(tok1.value(), 10s));

  ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  // One delta per distinct id (the empty initial result emits nothing):
  // result seqs 0..11.
  ASSERT_TRUE(one.WaitForResultSeq(tok1.value(), 11, 10s));
  ASSERT_TRUE(PollFor(
      [&] { return server.metrics().result_log_trimmed > 0; }, 10s));

  // A second subscriber attaches to the same query from scratch: its
  // resume point (-1) is below the trimmed base, so the server opens the
  // result stream with EXPIRED kResultRange and serves the retained tail.
  net::FragmentSubscriber two(opts);
  auto tok2 = two.AddRemoteQuery(Spec(kIdQuery));
  ASSERT_TRUE(tok2.ok());
  ASSERT_TRUE(two.Start().ok());
  ASSERT_TRUE(two.WaitQueryActive(tok2.value(), 10s));
  ASSERT_TRUE(two.WaitForResultSeq(tok2.value(), 11, 10s));
  EXPECT_GE(two.metrics().expired_in, 1);
  EXPECT_EQ(two.metrics().gaps_detected, 0);
  auto state = two.query_state(tok2.value());
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().last_result_seq, 11);
  // The retained results it did get are the newest ones, byte-delivered.
  std::vector<net::RemoteQueryResult> results;
  two.DrainResults(&results);
  EXPECT_GT(results.size(), 0u);
  EXPECT_LT(results.size(), 12u);

  one.Stop();
  two.Stop();
  server.Stop();
}

// A query subscriber that never negotiated kHelloFlagRetention and resumes
// below the trimmed result-log base must NOT be sent EXPIRED(kResultRange)
// — it rejects frame type 13 as stream corruption, cuts the session, and
// re-issues the same QUERY forever (a permanent reconnect loop). The
// replay instead starts silently at the retained base.
TEST(RetentionServerTest, UnnegotiatedQueryResumeGetsNoExpiredFrame) {
  constexpr const char* kIdQuery =
      "for $p in stream(\"pkts\")//packet return string($p/id)";
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::QueryChannel channel("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(channel.Open().ok());
  net::FragmentServerOptions sopts;
  sopts.query_channel = &channel;
  sopts.retention.max_results = 4;
  sopts.retention.check_every = 2;
  net::FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  // A negotiated subscriber drives the query's result log past the
  // retention window: result seqs 0..11, base trimmed above 0.
  net::FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  net::FragmentSubscriber one(opts);
  auto tok1 = one.AddRemoteQuery(Spec(kIdQuery));
  ASSERT_TRUE(tok1.ok());
  ASSERT_TRUE(one.Start().ok());
  ASSERT_TRUE(one.WaitQueryActive(tok1.value(), 10s));
  ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
  }
  ASSERT_TRUE(one.WaitForResultSeq(tok1.value(), 11, 10s));
  ASSERT_TRUE(PollFor(
      [&] { return server.metrics().result_log_trimmed > 0; }, 10s));

  // A raw peer negotiates the query channel but not retention, and asks
  // for the result stream from scratch (below the trimmed base).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto send_frame = [&](const net::Frame& f) {
    auto bytes = net::EncodeFrame(f);
    ASSERT_TRUE(bytes.ok());
    size_t off = 0;
    while (off < bytes.value().size()) {
      ssize_t n = ::send(fd, bytes.value().data() + off,
                         bytes.value().size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  };
  net::Hello hello;
  hello.stream_name = "pkts";
  send_frame({net::FrameType::kHello, net::kHelloFlagQueryChannel, 0,
              net::EncodeHello(hello)});
  net::FrameReader reader;
  char buf[4096];
  bool acked = false, got_expired = false, got_bye = false;
  uint64_t query_id = 0;
  int64_t first_result_seq = -1, last_result_seq = -1;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (std::chrono::steady_clock::now() < deadline &&
         last_result_seq < 11 && !got_bye) {
    auto next = reader.Next();
    ASSERT_TRUE(next.ok());
    if (next.value().has_value()) {
      const net::Frame& f = next.value().value();
      if (f.type == net::FrameType::kHello && !acked) {
        acked = true;
        net::RemoteQuerySpec spec = Spec(kIdQuery);
        spec.token = 7;
        spec.last_result_seq = -1;
        send_frame({net::FrameType::kQuery, 0, 0, net::EncodeQuery(spec)});
      }
      if (f.type == net::FrameType::kQueryStatus) {
        auto status = net::DecodeQueryStatus(f.payload);
        ASSERT_TRUE(status.ok());
        ASSERT_EQ(status.value().code, net::kQueryStatusOk);
        query_id = status.value().query_id;
      }
      if (f.type == net::FrameType::kResult) {
        const int64_t seq = static_cast<int64_t>(f.seq);
        if (first_result_seq < 0) first_result_seq = seq;
        last_result_seq = seq;
      }
      if (f.type == net::FrameType::kExpired) got_expired = true;
      if (f.type == net::FrameType::kBye) got_bye = true;
      continue;
    }
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    reader.Feed(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_FALSE(got_expired);
  EXPECT_FALSE(got_bye);
  ASSERT_NE(query_id, 0u);
  // The replay started exactly at the retained base — no frame below it,
  // no EXPIRED marker, and the live tail followed with no session cut.
  EXPECT_GT(channel.result_log_base(query_id), 0);
  EXPECT_EQ(first_result_seq, channel.result_log_base(query_id));
  EXPECT_EQ(last_result_seq, 11);

  one.Stop();
  server.Stop();
}

// ---- Kill-point matrix: trim/checkpoint lockstep ----------------------------
//
// The retain:* crash points bracket the frame-log trim inside RunRetention.
// The invariant under crash: a seq may leave the in-memory log only once a
// durable WAL checkpoint covers it, so nothing is ever both forgotten and
// unrecoverable. A child process runs a publish workload under an
// aggressive retention policy, writes the observed floor when the target
// point fires for the third time, and _exit(42)s; the parent recovers the
// WAL, proves the durable prefix covers the forgotten range, restarts the
// stream from it, and converges a fresh subscriber.

struct RetainKillCtx {
  std::string kill_point;
  std::string floor_file;
  int fired = 0;
  net::FragmentServer* server = nullptr;
  net::Wal* wal = nullptr;
};
RetainKillCtx g_retain_kill;

constexpr int kRetainKillFiring = 5;

[[noreturn]] void RunRetentionKillWorkload(const std::string& dir,
                                           const std::string& kill_point,
                                           const std::string& floor_file) {
  g_retain_kill.kill_point = kill_point;
  g_retain_kill.floor_file = floor_file;
  net::WalHooks::Install([](const char* point) {
    RetainKillCtx& c = g_retain_kill;
    if (c.kill_point != point || c.server == nullptr) return;
    if (++c.fired < kRetainKillFiring) return;
    // Both retain:* hooks fire outside log_mu_, so reading the floor
    // from the hook cannot deadlock.
    std::ofstream out(c.floor_file, std::ios::trunc);
    out << c.server->log_base() << " " << c.wal->checkpointed() << "\n";
    out.close();
    ::_exit(42);
  });
  net::WalOptions wopts;
  wopts.fsync = net::FsyncPolicy::kNever;  // only checkpoints are durable
  net::WalRecovery rec;
  auto wal = net::Wal::Open(dir + "/wal", "pkts", kPacketTs, wopts, &rec);
  if (!wal.ok()) ::_exit(99);
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  net::FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  sopts.retention.max_frames = 8;
  sopts.retention.check_every = 4;
  net::FragmentServer server(&source, sopts);
  if (!server.Start().ok()) ::_exit(98);
  g_retain_kill.server = &server;
  g_retain_kill.wal = wal.value().get();
  if (!source.Publish(MakeRoot({})).ok()) ::_exit(97);
  for (int i = 0; i < 64; ++i) {
    if (!source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok()) {
      ::_exit(96);
    }
  }
  ::_exit(0);  // the point never fired enough: the matrix missed it
}

TEST(RetentionKillTest, TrimNeverOutrunsTheDurableCheckpoint) {
  for (const char* point : {"retain:before_trim", "retain:after_trim"}) {
    char tmpl[] = "/tmp/xcql_retain_kill_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    const std::string dir = tmpl;
    const std::string floor_file = dir + "/floor";
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunRetentionKillWorkload(dir, point, floor_file);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status)) << point;
    ASSERT_EQ(WEXITSTATUS(status), 42)
        << point << ": the workload never reached this crash point";

    int64_t floor = -1, checkpointed = -1;
    {
      std::ifstream in(floor_file);
      ASSERT_TRUE(static_cast<bool>(in >> floor >> checkpointed)) << point;
    }
    // By the fifth pass the driver has actually checkpointed and trimmed.
    EXPECT_GT(floor + checkpointed, 0) << point;

    net::WalRecovery rec;
    auto wal = net::Wal::Open(dir + "/wal", "pkts", kPacketTs,
                              net::WalOptions{}, &rec);
    ASSERT_TRUE(wal.ok()) << point << ": " << wal.status().ToString();
    const int64_t n = static_cast<int64_t>(rec.records.size());
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(rec.records[static_cast<size_t>(i)].seq, i) << point;
    }
    // The lockstep invariant: every seq the server had forgotten at the
    // moment of death is durable. With fsync=kNever only the checkpoint
    // fsyncs, so this is exactly "the trim never outran the checkpoint".
    EXPECT_GE(n, floor) << point;
    EXPECT_GE(n, checkpointed) << point;

    // Third life: restart the stream from the durable prefix; a fresh
    // subscriber converges over it (EXPIRED for whatever a recovered
    // retention pass trims, never a gap).
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    ASSERT_TRUE(net::RestoreStream(rec, &source).ok()) << point;
    net::FragmentServerOptions sopts;
    sopts.wal = wal.value().get();
    sopts.retention.max_frames = 8;
    sopts.retention.check_every = 4;
    net::FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok()) << point;
    for (int i = 64; i < 72; ++i) {
      ASSERT_TRUE(
          source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
    }
    net::FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    net::FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok()) << point;
    ASSERT_TRUE(sub.WaitForSeq(server.next_seq() - 1, 10s)) << point;
    EXPECT_EQ(sub.metrics().gaps_detected, 0) << point;
    sub.Stop();
    server.Stop();
    ASSERT_TRUE(wal.value()->Close().ok()) << point;
    std::error_code ec;
    std::filesystem::remove_all(dir, ec);
  }
}

// ---- Chaos soak: survivors converge on the retained window ------------------
//
// A lossy link (drops, duplicates, reorders) sits between the server and
// one subscriber while retention trims underneath; the subscriber also
// dies mid-stream and resumes from a floor-stale position. At the end, the
// chaos survivor and a clean direct subscriber must hold byte-identical
// fragment sets over a window that retention provably kept.

TEST(RetentionChaosTest, SurvivorsConvergeByteIdenticalOnRetainedWindow) {
  for (const uint64_t seed : {7u, 1234u}) {
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    net::FragmentServerOptions sopts;
    sopts.heartbeat_interval = 50ms;
    sopts.retention.max_frames = 32;
    sopts.retention.check_every = 8;
    net::FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());

    net::ChaosLinkOptions chaos_opts;
    chaos_opts.upstream_port = server.port();
    chaos_opts.seed = seed;
    chaos_opts.faults.drop = 0.02;
    chaos_opts.faults.duplicate = 0.02;
    chaos_opts.faults.reorder = 0.02;
    net::ChaosLink chaos(chaos_opts);
    ASSERT_TRUE(chaos.Start().ok());

    // The clean reference subscriber, directly attached for the whole run.
    net::FragmentSubscriberOptions bopts;
    bopts.port = server.port();
    bopts.stream = "pkts";
    net::FragmentSubscriber b(bopts);
    ASSERT_TRUE(b.Start().ok());

    net::FragmentSubscriberOptions aopts;
    aopts.port = chaos.port();
    aopts.stream = "pkts";
    aopts.backoff_initial = 5ms;
    aopts.backoff_max = 50ms;
    aopts.repair_retry_interval = 20ms;

    // Phase 1: survivor A rides the lossy link through the early stream.
    int64_t a_last = -1;
    uint64_t a_epoch = 0;
    frag::FragmentStore store_a(MustParseTs(kPacketTs), "pkts");
    {
      net::FragmentSubscriber a(aopts);
      ASSERT_TRUE(a.Start().ok());
      ASSERT_TRUE(source.Publish(MakeRoot({})).ok());
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(
            source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
      }
      ASSERT_TRUE(a.WaitForSeq(server.next_seq() - 1, 60s))
          << "seed " << seed << " stuck at " << a.last_seq();
      a_last = a.last_seq();
      a_epoch = a.server_epoch();
      a.Stop();
    }

    // Phase 2: A is dead while the stream outgrows the retention window.
    for (int i = 40; i < 120; ++i) {
      ASSERT_TRUE(source.Publish(MakePacket(1 + i, 1000 + i * 10, i)).ok());
    }
    ASSERT_TRUE(PollFor([&] { return server.log_base() > a_last; }, 30s))
        << "seed " << seed;

    // Phase 3: A resumes below the floor, over the same lossy link.
    aopts.initial_last_seq = a_last;
    aopts.known_epoch = a_epoch;
    net::FragmentSubscriber a2(aopts);
    ASSERT_TRUE(a2.Start().ok());
    const int64_t last = server.next_seq() - 1;
    ASSERT_TRUE(a2.WaitForSeq(last, 60s))
        << "seed " << seed << " stuck at " << a2.last_seq()
        << " expired_in=" << a2.metrics().expired_in
        << " reconnects=" << a2.metrics().reconnects;
    ASSERT_TRUE(b.WaitForSeq(last, 60s)) << "seed " << seed;
    EXPECT_GE(a2.metrics().expired_in, 1) << "seed " << seed;

    frag::FragmentStore store_b(MustParseTs(kPacketTs), "pkts");
    ASSERT_TRUE(a2.DrainInto(&store_a).ok());
    ASSERT_TRUE(b.DrainInto(&store_b).ok());

    // Packets 100..119 (validTimes 2000..2190) sit comfortably inside the
    // 32-frame retention window at the end of the run: both survivors
    // must hold them, byte for byte.
    auto window = [](const frag::FragmentStore& store) {
      auto fillers = store.GetFillersByTsidInRange(2, DateTime(2000),
                                                   DateTime(2190));
      EXPECT_TRUE(fillers.ok());
      std::string out;
      if (!fillers.ok()) return out;
      for (const NodePtr& node : fillers.value()) {
        out += SerializeXml(*node);
        out += '\n';
      }
      return out;
    };
    const std::string wa = window(store_a);
    const std::string wb = window(store_b);
    EXPECT_FALSE(wb.empty()) << "seed " << seed;
    EXPECT_EQ(wa, wb) << "seed " << seed;

    const net::MetricsSnapshot sm = server.metrics();
    EXPECT_GT(sm.frames_retired, 0) << "seed " << seed;
    EXPECT_GT(sm.retention_runs, 0) << "seed " << seed;
    EXPECT_GE(chaos.stats().connections, 1) << "seed " << seed;

    a2.Stop();
    b.Stop();
    chaos.Stop();
    server.Stop();
  }
}

}  // namespace
}  // namespace xcql
