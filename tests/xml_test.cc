// Unit tests for the XML substrate: node model, parser, serializer, and
// parse→serialize round-trips.
#include <gtest/gtest.h>

#include "common/random.h"
#include "xml/node.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xcql {
namespace {

TEST(NodeTest, ElementBasics) {
  NodePtr e = Node::Element("account");
  e->SetAttr("id", "1234");
  e->AddChild(Node::Text("hello"));
  EXPECT_TRUE(e->is_element());
  EXPECT_EQ(e->name(), "account");
  ASSERT_NE(e->FindAttr("id"), nullptr);
  EXPECT_EQ(*e->FindAttr("id"), "1234");
  EXPECT_EQ(e->FindAttr("missing"), nullptr);
  EXPECT_EQ(e->StringValue(), "hello");
  EXPECT_EQ(e->children()[0]->parent(), e.get());
}

TEST(NodeTest, SetAttrOverwritesInPlace) {
  NodePtr e = Node::Element("x");
  e->SetAttr("a", "1");
  e->SetAttr("b", "2");
  e->SetAttr("a", "3");
  ASSERT_EQ(e->attrs().size(), 2u);
  EXPECT_EQ(e->attrs()[0].first, "a");
  EXPECT_EQ(e->attrs()[0].second, "3");
}

TEST(NodeTest, RemoveAttr) {
  NodePtr e = Node::Element("x");
  e->SetAttr("a", "1");
  e->RemoveAttr("a");
  EXPECT_FALSE(e->HasAttr("a"));
  e->RemoveAttr("nonexistent");  // no-op
}

TEST(NodeTest, StringValueConcatenatesDescendants) {
  NodePtr root = Node::Element("r");
  NodePtr a = Node::Element("a");
  a->AddChild(Node::Text("foo"));
  root->AddChild(a);
  root->AddChild(Node::Text("bar"));
  EXPECT_EQ(root->StringValue(), "foobar");
}

TEST(NodeTest, CloneIsDeepAndDetached) {
  NodePtr e = Node::Element("a");
  e->SetAttr("k", "v");
  NodePtr c = Node::Element("b");
  c->AddChild(Node::Text("t"));
  e->AddChild(c);
  NodePtr copy = e->Clone();
  EXPECT_TRUE(Node::DeepEqual(*e, *copy));
  EXPECT_EQ(copy->parent(), nullptr);
  EXPECT_NE(copy->children()[0].get(), e->children()[0].get());
  EXPECT_EQ(copy->children()[0]->parent(), copy.get());
}

TEST(NodeTest, DeepEqualDistinguishes) {
  NodePtr a = Node::Element("a");
  NodePtr b = Node::Element("b");
  EXPECT_FALSE(Node::DeepEqual(*a, *b));
  NodePtr a2 = Node::Element("a");
  a2->SetAttr("x", "1");
  EXPECT_FALSE(Node::DeepEqual(*a, *a2));
  EXPECT_TRUE(Node::DeepEqual(*a, *Node::Element("a")));
}

TEST(NodeTest, SubtreeSize) {
  NodePtr e = Node::Element("a");
  NodePtr c = Node::Element("b");
  c->AddChild(Node::Text("t"));
  e->AddChild(c);
  EXPECT_EQ(e->SubtreeSize(), 3u);
}

TEST(NodeTest, ChildElementsByName) {
  NodePtr e = Node::Element("r");
  e->AddChild(Node::Element("a"));
  e->AddChild(Node::Element("b"));
  e->AddChild(Node::Element("a"));
  EXPECT_EQ(e->ChildElements("a").size(), 2u);
  EXPECT_EQ(e->FirstChildElement("b")->name(), "b");
  EXPECT_EQ(e->FirstChildElement("z"), nullptr);
}

// ---- Parser -----------------------------------------------------------------

TEST(XmlParserTest, ParsesSimpleDocument) {
  auto r = ParseXml("<a x=\"1\"><b>text</b></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  NodePtr root = r.value();
  EXPECT_EQ(root->name(), "a");
  EXPECT_EQ(*root->FindAttr("x"), "1");
  ASSERT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->name(), "b");
  EXPECT_EQ(root->children()[0]->StringValue(), "text");
}

TEST(XmlParserTest, ParsesSelfClosingAndSingleQuotes) {
  auto r = ParseXml("<a><hole id='200' tsid='7'/></a>");
  ASSERT_TRUE(r.ok());
  const Node& hole = *r.value()->children()[0];
  EXPECT_EQ(hole.name(), "hole");
  EXPECT_EQ(*hole.FindAttr("id"), "200");
  EXPECT_TRUE(hole.children().empty());
}

TEST(XmlParserTest, DecodesEntities) {
  auto r = ParseXml("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->StringValue(), "<x> & \"y\" 'z'");
}

TEST(XmlParserTest, DecodesNumericCharRefs) {
  auto r = ParseXml("<a>&#65;&#x42;</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->StringValue(), "AB");
}

TEST(XmlParserTest, EntityInAttribute) {
  auto r = ParseXml("<a x=\"a&amp;b\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r.value()->FindAttr("x"), "a&b");
}

TEST(XmlParserTest, SkipsCommentsPIsAndDoctype) {
  const char* doc = R"(<?xml version="1.0"?>
    <!DOCTYPE creditSystem [ <!ELEMENT a (b)> ]>
    <!-- a comment -->
    <a><!-- inner --><b/></a>)";
  auto r = ParseXml(doc);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value()->name(), "a");
  ASSERT_EQ(r.value()->children().size(), 1u);
}

TEST(XmlParserTest, CdataIsLiteral) {
  auto r = ParseXml("<a><![CDATA[<not-a-tag> & stuff]]></a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->StringValue(), "<not-a-tag> & stuff");
}

TEST(XmlParserTest, StripsInterElementWhitespaceByDefault) {
  auto r = ParseXml("<a>\n  <b/>\n  <c/>\n</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->children().size(), 2u);
}

TEST(XmlParserTest, KeepsWhitespaceWhenAskedTo) {
  XmlParseOptions opts;
  opts.strip_inter_element_whitespace = false;
  auto r = ParseXml("<a> <b/> </a>", opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->children().size(), 3u);
}

TEST(XmlParserTest, KeepsMixedContentText) {
  auto r = ParseXml("<a>hello <b>world</b> again</a>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()->StringValue(), "hello world again");
  EXPECT_EQ(r.value()->children().size(), 3u);
}

TEST(XmlParserTest, ErrorsCarryLineAndColumn) {
  auto r = ParseXml("<a>\n<b></c>\n</a>");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos)
      << r.status().ToString();
}

TEST(XmlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseXml("<a>").ok());                  // unterminated
  EXPECT_FALSE(ParseXml("<a></b>").ok());              // mismatched
  EXPECT_FALSE(ParseXml("<a x=1/>").ok());             // unquoted attr
  EXPECT_FALSE(ParseXml("<a x=\"1\" x=\"2\"/>").ok()); // duplicate attr
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());             // two roots
  EXPECT_FALSE(ParseXml("text").ok());                 // no element
  EXPECT_FALSE(ParseXml("<a>&bogus;</a>").ok());       // unknown entity
  EXPECT_FALSE(ParseXml("").ok());
}

TEST(XmlParserTest, ParsesFragmentSequence) {
  auto r = ParseXmlFragments("<filler id=\"1\"/><filler id=\"2\"/>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 2u);
}

TEST(XmlParserTest, ParsesPaperFillerFragment) {
  const char* filler = R"(
    <filler id="100" tsid="5" validTime="2003-10-23T12:23:34">
      <transaction id="12345">
        <vendor> Southlake Pizza </vendor>
        <amount> 38.20 </amount>
        <hole id="200" tsid="7"/>
      </transaction>
    </filler>)";
  auto r = ParseXml(filler);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Node& f = *r.value();
  EXPECT_EQ(*f.FindAttr("validTime"), "2003-10-23T12:23:34");
  const NodePtr txn = f.FirstChildElement("transaction");
  ASSERT_NE(txn, nullptr);
  EXPECT_NE(txn->FirstChildElement("hole"), nullptr);
}

// ---- Serializer ---------------------------------------------------------------

TEST(XmlSerializerTest, EscapesSpecials) {
  NodePtr e = Node::Element("a");
  e->SetAttr("x", "a\"b<c>&d");
  e->AddChild(Node::Text("1 < 2 & 3 > 2"));
  std::string s = SerializeXml(*e);
  EXPECT_EQ(s,
            "<a x=\"a&quot;b&lt;c&gt;&amp;d\">1 &lt; 2 &amp; 3 &gt; 2</a>");
}

TEST(XmlSerializerTest, SelfClosesEmptyElements) {
  EXPECT_EQ(SerializeXml(*Node::Element("empty")), "<empty/>");
}

TEST(XmlSerializerTest, RoundTripsSimpleDoc) {
  const char* doc = "<a x=\"1\"><b>text</b><c/></a>";
  auto parsed = ParseXml(doc);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(SerializeXml(*parsed.value()), doc);
}

TEST(XmlSerializerTest, PrettyPrintIndents) {
  auto parsed = ParseXml("<a><b>t</b><c/></a>");
  ASSERT_TRUE(parsed.ok());
  XmlWriteOptions opts;
  opts.pretty = true;
  std::string s = SerializeXml(*parsed.value(), opts);
  EXPECT_NE(s.find("\n  <b>t</b>"), std::string::npos) << s;
}

// Property: serialize(parse(serialize(tree))) == serialize(tree) for random
// trees, and the reparsed tree is deeply equal to the original.
class XmlRoundTripTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static NodePtr RandomTree(Random* rng, int depth) {
    NodePtr e = Node::Element("n" + std::to_string(rng->Uniform(5)));
    int nattrs = static_cast<int>(rng->Uniform(3));
    for (int i = 0; i < nattrs; ++i) {
      std::string value = rng->Word(4);
      value += "&<>\"'";
      e->SetAttr("a" + std::to_string(i), std::move(value));
    }
    int nchildren = depth > 0 ? static_cast<int>(rng->Uniform(4)) : 0;
    bool last_was_text = false;  // adjacent text nodes would merge on reparse
    for (int i = 0; i < nchildren; ++i) {
      if (!last_was_text && rng->Bernoulli(0.3)) {
        std::string text = rng->Word(6);
        text += " <&> ";
        text += rng->Word(3);
        e->AddChild(Node::Text(std::move(text)));
        last_was_text = true;
      } else {
        e->AddChild(RandomTree(rng, depth - 1));
        last_was_text = false;
      }
    }
    return e;
  }
};

TEST_P(XmlRoundTripTest, SerializeParseRoundTrip) {
  Random rng(GetParam());
  NodePtr tree = RandomTree(&rng, 4);
  std::string xml = SerializeXml(*tree);
  auto reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << xml;
  EXPECT_TRUE(Node::DeepEqual(*tree, *reparsed.value())) << xml;
  EXPECT_EQ(SerializeXml(*reparsed.value()), xml);
}

// Property: the streaming serialization hash covers exactly the bytes
// SerializeXml would produce (escaping included), so hash equality is
// serialized-form equality up to 64-bit collisions.
TEST_P(XmlRoundTripTest, HashMatchesSerializedBytes) {
  Random rng(GetParam());
  NodePtr tree = RandomTree(&rng, 4);
  EXPECT_EQ(HashSerializedXml(*tree), HashBytes(SerializeXml(*tree)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest,
                         ::testing::Range<uint64_t>(0, 24));

}  // namespace
}  // namespace xcql
