// Tests for the networked fragment transport (src/net/): frame codec,
// handshake, end-to-end equivalence over loopback TCP (live subscribers,
// late joiners, disconnect + resume via REPLAY_FROM), and the
// slow-consumer policies. All TCP traffic stays on 127.0.0.1 with
// ephemeral ports, so tests run in parallel and offline.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/file_util.h"
#include "common/random.h"
#include "frag/assembler.h"
#include "frag/fragment.h"
#include "net/chaos.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "net/wal.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xmark/generator.h"
#include "xml/serializer.h"

namespace xcql::net {
namespace {

using namespace std::chrono_literals;

frag::TagStructure MustParseTs(const std::string& xml) {
  auto r = frag::TagStructure::Parse(xml);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).MoveValue();
}

constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
  </tag>
</tag>)";

// A packet fragment; `pad` grows the payload (so tests can exceed kernel
// socket buffering deterministically).
frag::Fragment MakePacket(int64_t id, int64_t t, int pkt, size_t pad = 0) {
  frag::Fragment f;
  f.id = id;
  f.tsid = 2;
  f.valid_time = DateTime(t);
  f.content = Node::Element("packet");
  NodePtr pid = Node::Element("id");
  pid->AddChild(Node::Text(std::to_string(pkt)));
  f.content->AddChild(std::move(pid));
  if (pad > 0) {
    NodePtr src = Node::Element("srcIP");
    src->AddChild(Node::Text(std::string(pad, 'x')));
    f.content->AddChild(std::move(src));
  }
  return f;
}

std::string MustEncode(const Frame& f) {
  auto r = EncodeFrame(f);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(r).MoveValue() : std::string();
}

std::string ViewOf(const frag::FragmentStore& store) {
  auto view = frag::Temporalize(store, false);
  EXPECT_TRUE(view.ok()) << view.status().ToString();
  if (!view.ok()) return "";
  return SerializeXml(*view.value());
}

// ---- Frame codec ------------------------------------------------------------

TEST(FrameCodecTest, RoundTripsAllTypesFedByteByByte) {
  std::vector<Frame> in;
  in.push_back({FrameType::kHello, 0, 0, "hello-payload"});
  in.push_back({FrameType::kFragment, kFlagCompressedPayload, 41,
                std::string(100000, 'z')});
  in.push_back({FrameType::kHeartbeat, 0, 42, ""});
  in.push_back({FrameType::kReplayFrom, 0, 0, EncodeReplayFrom(-1)});
  in.push_back({FrameType::kBye, 0, 7, ""});
  std::string wire;
  for (const auto& f : in) wire += MustEncode(f);

  FrameReader reader;
  std::vector<Frame> out;
  for (char c : wire) {
    reader.Feed(&c, 1);
    for (;;) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok()) << next.status().ToString();
      if (!next.value().has_value()) break;
      out.push_back(std::move(*next.value()));
    }
  }
  ASSERT_EQ(out.size(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].type, in[i].type);
    EXPECT_EQ(out[i].flags, in[i].flags);
    EXPECT_EQ(out[i].seq, in[i].seq);
    EXPECT_EQ(out[i].payload, in[i].payload);
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodecTest, DecodesFramesSplitAcrossFeeds) {
  Frame f{FrameType::kFragment, 0, 9, "abcdef"};
  std::string wire = MustEncode(f) + MustEncode(f);
  FrameReader reader;
  // Feed in two lumps that split mid-header of the second frame.
  size_t cut = wire.size() / 2 + 3;
  reader.Feed(wire.data(), cut);
  int seen = 0;
  auto drain = [&] {
    for (;;) {
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next.value().has_value()) break;
      EXPECT_EQ(next.value()->payload, "abcdef");
      ++seen;
    }
  };
  drain();
  reader.Feed(wire.data() + cut, wire.size() - cut);
  drain();
  EXPECT_EQ(seen, 2);
}

TEST(FrameCodecTest, RejectsBadMagic) {
  std::string wire = MustEncode({FrameType::kHeartbeat, 0, 1, ""});
  wire[0] ^= 0x55;
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodecTest, RejectsUnknownVersion) {
  std::string wire = MustEncode({FrameType::kHeartbeat, 0, 1, ""});
  wire[4] = 99;
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodecTest, RejectsOversizedPayload) {
  std::string wire = MustEncode({FrameType::kFragment, 0, 1, "x"});
  uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(&wire[16], &huge, sizeof(huge));
  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  EXPECT_FALSE(reader.Next().ok());
}

TEST(FrameCodecTest, EncodeRejectsOversizedPayload) {
  // The decoder treats an over-limit length as stream corruption, so the
  // encoder must refuse to produce such a frame in the first place —
  // otherwise one oversized fragment kills every subscriber in an endless
  // reconnect loop on that seq.
  Frame f{FrameType::kFragment, 0, 1,
          std::string(kMaxFramePayload + 1, 'x')};
  EXPECT_FALSE(EncodeFrame(f).ok());
  f.payload.resize(kMaxFramePayload);  // exactly at the limit is legal
  EXPECT_TRUE(EncodeFrame(f).ok());
}

TEST(FrameCodecTest, PublishRejectsOversizedFragment) {
  // The same limit holds at publish time (EncodeWirePayload): the
  // fragment fails with a Status before any counter or history mutation,
  // so it can never reach the frame log or the wire.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  EXPECT_FALSE(
      source.Publish(MakePacket(1, 1000, 0, frag::kMaxWirePayload + 1))
          .ok());
  EXPECT_EQ(source.history_size(), 0);
  EXPECT_EQ(source.fragments_sent(), 0);
  EXPECT_EQ(source.bytes_sent(), 0);
}

TEST(FrameCodecTest, HelloRoundTrips) {
  Hello h;
  h.stream_name = "auction";
  h.codec = frag::WireCodec::kTagCompressed;
  h.ts_hash = 0xdeadbeefcafe1234ull;
  h.tag_structure_xml = "<tag id=\"1\" name=\"site\"/>";
  auto back = DecodeHello(EncodeHello(h));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().stream_name, h.stream_name);
  EXPECT_EQ(back.value().codec, h.codec);
  EXPECT_EQ(back.value().ts_hash, h.ts_hash);
  EXPECT_EQ(back.value().tag_structure_xml, h.tag_structure_xml);

  Hello bare;
  bare.stream_name = "s";
  auto bare_back = DecodeHello(EncodeHello(bare));
  ASSERT_TRUE(bare_back.ok());
  EXPECT_EQ(bare_back.value().stream_name, "s");
  EXPECT_EQ(bare_back.value().ts_hash, 0u);
  EXPECT_TRUE(bare_back.value().tag_structure_xml.empty());

  EXPECT_FALSE(DecodeHello("tooshort").ok());
}

TEST(FrameCodecTest, ReplayFromRoundTrips) {
  for (int64_t seq : {int64_t{-1}, int64_t{0}, int64_t{123456789}}) {
    auto back = DecodeReplayFrom(EncodeReplayFrom(seq));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), seq);
  }
  EXPECT_FALSE(DecodeReplayFrom("abc").ok());
}

TEST(FrameCodecTest, V2FramesCarryAValidChecksum) {
  Frame f{FrameType::kFragment, kFlagCompressedPayload, 77, "payload-bytes"};
  std::string wire = MustEncode(f);  // v2 is the default encoding
  ASSERT_EQ(wire.size(), kFrameHeaderSizeCrc + f.payload.size());
  EXPECT_EQ(static_cast<uint8_t>(wire[4]), kFrameVersionCrc);
  uint32_t stored = 0;
  std::memcpy(&stored, wire.data() + 20, sizeof(stored));
  EXPECT_EQ(stored, Crc32c(wire.substr(4, 16) + f.payload));

  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  auto next = reader.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next.value().has_value());
  EXPECT_TRUE(next.value()->crc_ok);
  EXPECT_EQ(next.value()->wire_version, kFrameVersionCrc);
  EXPECT_EQ(next.value()->type, FrameType::kFragment);
  EXPECT_EQ(next.value()->flags, kFlagCompressedPayload);
  EXPECT_EQ(next.value()->seq, 77u);
  EXPECT_EQ(next.value()->payload, f.payload);
}

TEST(FrameCodecTest, DowngradeToV1StripsTheChecksum) {
  Frame f{FrameType::kFragment, 0, 5, "abc"};
  std::string v2 = MustEncode(f);
  std::string v1 = DowngradeFrameToV1(v2);
  ASSERT_EQ(v1.size(), kFrameHeaderSize + f.payload.size());
  FrameReader reader;
  reader.Feed(v1.data(), v1.size());
  auto next = reader.Next();
  ASSERT_TRUE(next.ok()) << next.status().ToString();
  ASSERT_TRUE(next.value().has_value());
  EXPECT_EQ(next.value()->wire_version, kFrameVersion);
  EXPECT_TRUE(next.value()->crc_ok);
  EXPECT_EQ(next.value()->seq, 5u);
  EXPECT_EQ(next.value()->payload, "abc");
  // v1 input passes through untouched.
  EXPECT_EQ(DowngradeFrameToV1(v1), v1);
}

TEST(FrameCodecTest, RepeatFlagPatchKeepsTheChecksumValid) {
  Frame f{FrameType::kFragment, kFlagCompressedPayload, 9, "xyz"};
  for (uint8_t version : {kFrameVersion, kFrameVersionCrc}) {
    auto encoded = EncodeFrame(f, version);
    ASSERT_TRUE(encoded.ok());
    std::string flagged = WithRepeatFlag(encoded.value());
    FrameReader reader;
    reader.Feed(flagged.data(), flagged.size());
    auto next = reader.Next();
    ASSERT_TRUE(next.ok()) << "version " << int{version} << ": "
                           << next.status().ToString();
    ASSERT_TRUE(next.value().has_value());
    EXPECT_TRUE(next.value()->crc_ok);
    EXPECT_EQ(next.value()->flags, kFlagCompressedPayload | kFlagRepeat);
    EXPECT_EQ(next.value()->payload, "xyz");
  }
}

TEST(FrameCodecTest, RepeatRequestRoundTrips) {
  for (int64_t id : {int64_t{0}, int64_t{7}, int64_t{123456789}}) {
    // Legacy 8-byte form: no have-list, meaning "send every version".
    auto back = DecodeRepeatRequest(EncodeRepeatRequest(id));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value().filler_id, id);
    EXPECT_TRUE(back.value().have_valid_times.empty());
  }
  EXPECT_FALSE(DecodeRepeatRequest("xy").ok());
}

TEST(FrameCodecTest, VersionAwareRepeatRequestRoundTrips) {
  RepeatRequest req;
  req.filler_id = 42;
  req.have_valid_times = {100, 260, 980000000};
  auto back = DecodeRepeatRequest(EncodeRepeatRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().filler_id, 42);
  EXPECT_EQ(back.value().have_valid_times, req.have_valid_times);

  // An explicitly empty have-list still round-trips (it encodes the count).
  req.have_valid_times.clear();
  back = DecodeRepeatRequest(EncodeRepeatRequest(req));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().have_valid_times.empty());

  // Truncated count and short have-lists are parse errors, not crashes.
  std::string wire = EncodeRepeatRequest(
      RepeatRequest{7, std::vector<int64_t>{1, 2}});
  EXPECT_FALSE(DecodeRepeatRequest(wire.substr(0, 10)).ok());
  EXPECT_FALSE(DecodeRepeatRequest(wire.substr(0, wire.size() - 3)).ok());
}

TEST(FrameCodecTest, CorruptV2FrameIsFlaggedWithoutDesyncingTheStream) {
  std::string first =
      MustEncode({FrameType::kFragment, 0, 0, "first-payload"});
  std::string second =
      MustEncode({FrameType::kFragment, 0, 1, "second-payload"});
  first[kFrameHeaderSizeCrc + 3] ^= 0x10;  // flip one payload bit
  std::string wire = first + second;

  FrameReader reader;
  reader.Feed(wire.data(), wire.size());
  auto bad = reader.Next();
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  ASSERT_TRUE(bad.value().has_value());
  EXPECT_FALSE(bad.value()->crc_ok);
  EXPECT_TRUE(bad.value()->payload.empty());  // untrusted content withheld
  // The framing held up, so the next frame decodes cleanly.
  auto good = reader.Next();
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_TRUE(good.value().has_value());
  EXPECT_TRUE(good.value()->crc_ok);
  EXPECT_EQ(good.value()->seq, 1u);
  EXPECT_EQ(good.value()->payload, "second-payload");
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameCodecTest, TagStructureHashDistinguishesSchemas) {
  frag::TagStructure pkts = MustParseTs(kPacketTs);
  frag::TagStructure auction =
      MustParseTs(xmark::AuctionTagStructureXml());
  EXPECT_NE(TagStructureHash(pkts), 0u);
  EXPECT_NE(TagStructureHash(auction), 0u);
  EXPECT_NE(TagStructureHash(pkts), TagStructureHash(auction));
  // Object and canonical-XML forms agree.
  EXPECT_EQ(TagStructureHash(pkts), TagStructureHash(pkts.ToXml()));
}

// ---- Raw protocol client ----------------------------------------------------

// A hand-rolled protocol client used to (a) stall on purpose — it
// handshakes, requests a replay, then never reads again — and (b) keep the
// server honest against a non-FragmentSubscriber peer. The tiny SO_RCVBUF
// (set before connect, so the window scale is negotiated small) bounds how
// much a stalled connection can sink into kernel buffers.
class RawClient {
 public:
  ~RawClient() { Close(); }

  void Connect(uint16_t port, const std::string& stream) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd_, 0);
    int rcvbuf = 4096;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    Hello hello;
    hello.stream_name = stream;
    Send(MustEncode({FrameType::kHello, 0, 0, EncodeHello(hello)}));
    // Read just far enough to see the server's HELLO ack, then go silent.
    FrameReader reader;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0) << "connection died during handshake";
      reader.Feed(buf, static_cast<size_t>(n));
      auto next = reader.Next();
      ASSERT_TRUE(next.ok());
      if (!next.value().has_value()) continue;
      ASSERT_EQ(next.value()->type, FrameType::kHello);
      break;
    }
    Send(MustEncode({FrameType::kReplayFrom, 0, 0, EncodeReplayFrom(-1)}));
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  void Send(const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  }

  int fd_ = -1;
};

// Polls until `pred` holds or the deadline passes.
template <typename Pred>
bool PollFor(Pred pred, std::chrono::milliseconds timeout) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

// ---- Handshake --------------------------------------------------------------

TEST(FragmentServerTest, RejectsWrongStreamName) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "not-the-stream";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  EXPECT_FALSE(sub.WaitConnected(5s));
  EXPECT_TRUE(sub.handshake_failed());
  EXPECT_GE(server.metrics().handshake_failures, 1);
  sub.Stop();
  server.Stop();
}

TEST(FragmentServerTest, RejectsMismatchedSchemaHash) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  // The subscriber holds a different schema: its hash travels in HELLO and
  // the server must refuse rather than feed it undecodable frames.
  opts.tag_structure_xml = xmark::AuctionTagStructureXml();
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  EXPECT_FALSE(sub.WaitConnected(5s));
  EXPECT_TRUE(sub.handshake_failed());
  sub.Stop();
  server.Stop();
}

TEST(FragmentServerTest, HandshakeDeliversTagStructure) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(5s));
  auto ts_xml = sub.TagStructureXml();
  ASSERT_TRUE(ts_xml.ok());
  EXPECT_EQ(TagStructureHash(ts_xml.value()),
            TagStructureHash(source.tag_structure()));
  sub.Stop();
  server.Stop();
}

TEST(FragmentServerTest, HeartbeatsFlowWhenIdle) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions opts;
  opts.heartbeat_interval = 20ms;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  FragmentSubscriber sub(sopts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(5s));
  // HELLO ack + several heartbeats; no fragments were ever published.
  EXPECT_TRUE(PollFor([&] { return sub.metrics().frames_in >= 4; }, 5s));
  EXPECT_EQ(sub.metrics().fragments_in, 0);
  sub.Stop();
  server.Stop();
}

TEST(FragmentServerTest, SeedsReplayLogFromPreStartHistory) {
  // Fragments published before the network face existed are still
  // replayable: Start() seeds the frame log from the source's history.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.next_seq(), 3);

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].id, 1);
  EXPECT_EQ(got[2].id, 3);
  sub.Stop();
  server.Stop();
}

// ---- End-to-end equivalence -------------------------------------------------

// The acceptance scenario: an XMark document plus >= 1,000 updates
// published through a StreamServer reach (a) an in-process StreamHub, (b)
// a TCP subscriber connected from the start, (c) one whose connection is
// severed mid-stream (reconnect + REPLAY_FROM resume), and (d) a late
// joiner that replays everything. All four stores must materialize to
// byte-identical views.
void RunEquivalence(frag::WireCodec codec) {
  std::string ts_xml = xmark::AuctionTagStructureXml();
  stream::StreamServer source("auction", MustParseTs(ts_xml));
  if (codec == frag::WireCodec::kTagCompressed) {
    source.EnableWireCompression();
  }
  stream::StreamHub reference;
  ASSERT_TRUE(reference.Subscribe(&source).ok());

  FragmentServerOptions sopts;
  sopts.queue_capacity = 256;
  sopts.heartbeat_interval = 200ms;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  auto sub_opts = [&] {
    FragmentSubscriberOptions o;
    o.port = server.port();
    o.stream = "auction";
    o.codec = codec;
    return o;
  };
  FragmentSubscriber early(sub_opts());
  FragmentSubscriber resumer(sub_opts());
  ASSERT_TRUE(early.Start().ok());
  ASSERT_TRUE(resumer.Start().ok());
  ASSERT_TRUE(early.WaitConnected(10s));
  ASSERT_TRUE(resumer.WaitConnected(10s));

  xmark::XMarkOptions gen;
  gen.scale = 0.0;
  auto doc = xmark::GenerateAuctionDoc(gen);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(source.PublishDocument(*doc.value()).ok());

  // Update targets: the fragmented fillers of the initial document.
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < source.history_size(); ++i) {
    const auto* tag =
        source.tag_structure().FindById(source.history_at(i).tsid);
    if (tag != nullptr && tag->fragmented()) candidates.push_back(i);
  }
  ASSERT_FALSE(candidates.empty());

  constexpr int kUpdates = 1000;
  Random rng(11);
  int64_t t =
      source.history_at(source.history_size() - 1).valid_time.seconds();
  for (int u = 0; u < kUpdates; ++u) {
    if (u == kUpdates / 2) {
      // Network fault mid-stream: the resumer must reconnect and resume
      // from its last seen seq without loss or duplication.
      resumer.KillConnection();
    }
    const auto& base = source.history_at(static_cast<int64_t>(
        candidates[rng.Uniform(candidates.size())]));
    frag::Fragment f;
    f.id = base.id;
    f.tsid = base.tsid;
    t += 1 + static_cast<int64_t>(rng.Uniform(30));
    f.valid_time = DateTime(t);
    f.content = base.content->Clone();
    f.content->SetAttr("rev", std::to_string(u + 1));
    ASSERT_TRUE(source.Publish(std::move(f)).ok());
  }
  const int64_t last = server.next_seq() - 1;
  ASSERT_EQ(last + 1, source.history_size());

  FragmentSubscriber late(sub_opts());
  ASSERT_TRUE(late.Start().ok());

  const frag::FragmentStore* ref = reference.store("auction");
  ASSERT_NE(ref, nullptr);
  const std::string want = ViewOf(*ref);
  ASSERT_FALSE(want.empty());

  struct Case {
    const char* name;
    FragmentSubscriber* sub;
  };
  for (const Case& c : {Case{"early", &early}, Case{"resumer", &resumer},
                        Case{"late", &late}}) {
    SCOPED_TRACE(c.name);
    ASSERT_TRUE(c.sub->WaitForSeq(last, 60s))
        << "stuck at seq " << c.sub->last_seq() << " of " << last;
    stream::StreamHub hub;
    auto store = hub.AddLocalStream("auction", MustParseTs(ts_xml));
    ASSERT_TRUE(store.ok());
    auto drained = c.sub->DrainInto(store.value());
    ASSERT_TRUE(drained.ok()) << drained.status().ToString();
    EXPECT_EQ(store.value()->size(), ref->size());
    EXPECT_EQ(ViewOf(*store.value()), want);
  }
  EXPECT_GE(resumer.metrics().reconnects, 1);
  EXPECT_GE(server.metrics().replays_served, 4);  // 3 initial + 1 resume
  EXPECT_EQ(server.metrics().drops, 0);           // kBlock never drops

  early.Stop();
  resumer.Stop();
  late.Stop();
  server.Stop();
}

TEST(NetEquivalenceTest, PlainXmlWire) {
  RunEquivalence(frag::WireCodec::kPlainXml);
}

TEST(NetEquivalenceTest, TagCompressedWire) {
  RunEquivalence(frag::WireCodec::kTagCompressed);
}

TEST(NetEquivalenceTest, CompressedWireCarriesFewerBytes) {
  // Same stream, both codecs: the §4.1 wire form must be smaller on the
  // fragment frames (the reason the negotiation exists at all).
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i, 64)).ok());
  }
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  int64_t bytes[2] = {0, 0};
  frag::WireCodec codecs[2] = {frag::WireCodec::kPlainXml,
                               frag::WireCodec::kTagCompressed};
  for (int k = 0; k < 2; ++k) {
    FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    opts.codec = codecs[k];
    FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok());
    ASSERT_TRUE(sub.WaitForSeq(49, 10s));
    auto m = sub.metrics();
    EXPECT_EQ(m.fragments_in, 50);
    bytes[k] = m.bytes_in;
    sub.Stop();
  }
  EXPECT_LT(bytes[1], bytes[0]);
  server.Stop();
}

// ---- Repeats over the wire --------------------------------------------------

TEST(FragmentServerTest, RepeatFillerKeepsSeqAlignedWithHistory) {
  // RepeatFiller retransmissions must re-send the original logged frames,
  // not mint new seqs: otherwise the frame log diverges from
  // StreamServer::history_ numbering and resume-after-restart (log
  // reseeded from history) skips or duplicates fragments.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(source.Publish(MakePacket(5, 1000, 0)).ok());
  ASSERT_TRUE(source.Publish(MakePacket(5, 1001, 1)).ok());
  ASSERT_TRUE(source.Publish(MakePacket(6, 1002, 2)).ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  const int64_t frames_before = sub.metrics().frames_in;

  auto repeated = source.RepeatFiller(5);
  ASSERT_TRUE(repeated.ok());
  EXPECT_EQ(repeated.value(), 2);
  // No new seqs: the log's next seq still equals the history size.
  EXPECT_EQ(server.next_seq(), 3);
  EXPECT_EQ(server.next_seq(), source.history_size());
  EXPECT_TRUE(PollFor([&] { return server.metrics().repeats_out >= 2; }, 5s));
  // The repeated frames do reach the subscriber...
  ASSERT_TRUE(PollFor(
      [&] { return sub.metrics().frames_in >= frames_before + 2; }, 10s));
  // ...which discards them as duplicates of seqs it already holds.
  EXPECT_EQ(sub.metrics().fragments_in, 3);
  EXPECT_EQ(sub.last_seq(), 2);

  // The stream continues seamlessly after the repeats.
  ASSERT_TRUE(source.Publish(MakePacket(6, 1003, 3)).ok());
  ASSERT_TRUE(sub.WaitForSeq(3, 10s));
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  EXPECT_EQ(got.size(), 4u);
  sub.Stop();
  server.Stop();
}

// ---- Gap detection ----------------------------------------------------------

// A hand-rolled protocol server for fault injection: accepts one
// connection, answers the handshake (advertising `hello_flags` — pass
// kHelloFlagCrcFrames to negotiate the v2 wire), records the REPLAY_FROM
// value, sends a scripted list of pre-encoded frames, then holds the
// connection open — silently, no FIN, like a half-dead server — until the
// peer closes it. Returns the REPLAY_FROM seq (-100 on protocol error).
int64_t ServeOneSession(const Socket& listener, const std::string& ts_xml,
                        const std::vector<std::string>& frames,
                        const std::vector<int>& to_send,
                        uint8_t hello_flags = 0) {
  auto accepted = Accept(listener);
  if (!accepted.ok()) return -100;
  Socket conn = std::move(accepted).MoveValue();
  FrameReader reader;
  char buf[4096];
  int64_t replay_from = -100;
  bool handshaken = false;
  bool have_replay = false;
  while (!have_replay) {
    auto n = conn.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) return -100;
    reader.Feed(buf, n.value());
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return -100;
      if (!next.value().has_value()) break;
      Frame fr = std::move(*next.value());
      if (!handshaken && fr.type == FrameType::kHello) {
        Hello ack;
        ack.stream_name = "pkts";
        ack.ts_hash = TagStructureHash(ts_xml);
        ack.tag_structure_xml = ts_xml;
        // HELLO acks always travel v1, like the real server's.
        auto hello_r = EncodeFrame(
            {FrameType::kHello, hello_flags, 0, EncodeHello(ack)},
            kFrameVersion);
        if (!hello_r.ok()) return -100;
        const std::string& hello = hello_r.value();
        if (!conn.SendAll(hello.data(), hello.size()).ok()) return -100;
        handshaken = true;
      } else if (fr.type == FrameType::kReplayFrom) {
        auto from = DecodeReplayFrom(fr.payload);
        if (!from.ok()) return -100;
        replay_from = from.value();
        have_replay = true;
      }
    }
  }
  for (int idx : to_send) {
    if (!conn.SendAll(frames[idx].data(), frames[idx].size()).ok()) break;
  }
  for (;;) {  // hold until the peer closes (gap kill or Stop())
    auto n = conn.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
  }
  return replay_from;
}

TEST(FragmentSubscriberTest, SeqGapForcesReconnectAndReplayFromContiguous) {
  // A mid-session seq gap (what a kDropOldest eviction looks like on the
  // wire) must not be silently absorbed: the subscriber kills the
  // connection and resumes via REPLAY_FROM(last contiguous seq), so the
  // dropped frames are refetched rather than permanently lost.
  frag::TagStructure ts = MustParseTs(kPacketTs);
  const std::string ts_xml = ts.ToXml();
  auto listener = ListenOn(0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::vector<std::string> frames;
  for (int i = 0; i < 4; ++i) {
    auto payload = frag::EncodeWirePayload(MakePacket(i + 1, 1000 + i, i),
                                           ts, frag::WireCodec::kPlainXml);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    frames.push_back(MustEncode({FrameType::kFragment, 0,
                                 static_cast<uint64_t>(i),
                                 std::move(payload).MoveValue()}));
  }

  int64_t first_replay = -7;
  int64_t second_replay = -7;
  std::thread faulty([&] {
    // Session 1: deliver seq 0, then seq 2 — seq 1 is "lost".
    first_replay =
        ServeOneSession(listener.value(), ts_xml, frames, {0, 2});
    // Session 2: the reconnect replays from the contiguous prefix.
    second_replay =
        ServeOneSession(listener.value(), ts_xml, frames, {1, 2, 3});
  });

  FragmentSubscriberOptions opts;
  opts.port = port.value();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  const bool caught_up = sub.WaitForSeq(3, 10s);
  const MetricsSnapshot m = sub.metrics();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  sub.Stop();
  listener.value().Shutdown();
  faulty.join();

  EXPECT_TRUE(caught_up);
  EXPECT_EQ(first_replay, -1);   // cold start: replay everything
  EXPECT_EQ(second_replay, 0);   // resume from the last contiguous seq
  EXPECT_GE(m.gaps_detected, 1);
  EXPECT_GE(m.reconnects, 1);
  ASSERT_EQ(got.size(), 4u);     // every fragment exactly once, in order
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, static_cast<int64_t>(i + 1));
  }
}

// ---- Slow consumers ---------------------------------------------------------

TEST(SlowConsumerTest, DropOldestBoundsQueueAndCountsDrops) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions opts;
  opts.queue_capacity = 64;
  opts.slow_consumer = SlowConsumerPolicy::kDropOldest;
  opts.heartbeat_interval = 10s;  // keep heartbeats out of the picture
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  // A subscriber that handshakes, asks for a replay, then never reads.
  RawClient stalled;
  stalled.Connect(server.port(), "pkts");
  ASSERT_TRUE(PollFor(
      [&] {
        auto stats = server.connection_stats();
        return stats.size() == 1 && stats[0].live;
      },
      5s));

  // And a healthy one, which must be unaffected throughout.
  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  FragmentSubscriber healthy(sopts);
  ASSERT_TRUE(healthy.Start().ok());
  ASSERT_TRUE(healthy.WaitConnected(5s));
  ASSERT_TRUE(PollFor([&] { return server.active_connections() == 2; }, 5s));

  // 64 KiB payloads: ~19 MB in total, far beyond what the stalled
  // connection can sink into kernel buffers (tcp_wmem autotunes to a few
  // MB at most against the tiny receive window), so its queue must
  // overflow. The light throttle keeps the healthy writer comfortably
  // ahead — this test is about a slow *consumer*, not a publisher
  // outrunning everyone.
  constexpr int kCount = 300;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        source.Publish(MakePacket(i + 1, 1000 + i, i, 64 * 1024)).ok());
    if (i % 10 == 9) std::this_thread::sleep_for(1ms);
  }

  // The healthy subscriber got every fragment — no gaps, so its
  // connection never dropped.
  ASSERT_TRUE(healthy.WaitForSeq(kCount - 1, 30s));
  EXPECT_EQ(healthy.metrics().fragments_in, kCount);

  // The stalled connection dropped, stayed within its bound, and its
  // counters obey the conservation law at any sampled instant.
  ASSERT_TRUE(PollFor(
      [&] {
        for (const auto& s : server.connection_stats()) {
          if (s.dropped > 0) return true;
        }
        return false;
      },
      10s));
  int stalled_conns = 0;
  int64_t total_dropped = 0;
  for (const auto& s : server.connection_stats()) {
    EXPECT_EQ(s.enqueued, s.sent + s.dropped + s.queue_depth);
    EXPECT_LE(s.queue_depth, 64);
    total_dropped += s.dropped;
    if (s.dropped > 0) {
      ++stalled_conns;
      EXPECT_EQ(s.enqueued, kCount);
      // Everything beyond the queue bound and what the kernel absorbed
      // (at most ~4 MB / 64 KiB ≈ 65 frames) was evicted.
      EXPECT_GE(s.dropped, 100);
    }
  }
  EXPECT_EQ(stalled_conns, 1);
  EXPECT_EQ(server.metrics().drops, total_dropped);
  EXPECT_GE(server.metrics().queue_depth_hwm, 64);
  EXPECT_EQ(server.metrics().slow_disconnects, 0);

  stalled.Close();
  healthy.Stop();
  server.Stop();
}

TEST(SlowConsumerTest, DisconnectCutsTheStalledConnectionOnly) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions opts;
  opts.queue_capacity = 16;
  opts.slow_consumer = SlowConsumerPolicy::kDisconnect;
  opts.heartbeat_interval = 10s;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  RawClient stalled;
  stalled.Connect(server.port(), "pkts");
  ASSERT_TRUE(PollFor(
      [&] {
        auto stats = server.connection_stats();
        return stats.size() == 1 && stats[0].live;
      },
      5s));

  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  FragmentSubscriber healthy(sopts);
  ASSERT_TRUE(healthy.Start().ok());
  ASSERT_TRUE(healthy.WaitConnected(5s));
  ASSERT_TRUE(PollFor([&] { return server.active_connections() == 2; }, 5s));

  // Same sizing rationale as the drop test: enough 64 KiB frames to
  // overrun kernel buffering plus the queue bound on the stalled
  // connection, throttled so the healthy writer never falls behind.
  constexpr int kCount = 120;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(
        source.Publish(MakePacket(i + 1, 1000 + i, i, 64 * 1024)).ok());
    if (i % 10 == 9) std::this_thread::sleep_for(1ms);
  }

  ASSERT_TRUE(healthy.WaitForSeq(kCount - 1, 30s));
  EXPECT_EQ(healthy.metrics().fragments_in, kCount);
  EXPECT_TRUE(
      PollFor([&] { return server.metrics().slow_disconnects >= 1; }, 10s));
  EXPECT_EQ(server.metrics().slow_disconnects, 1);  // the healthy one lives
  EXPECT_EQ(server.metrics().drops, 0);

  stalled.Close();
  healthy.Stop();
  server.Stop();
}

TEST(SlowConsumerTest, BlockPolicyDeliversEverythingToEveryone) {
  // kBlock with a tiny queue: the publisher throttles to the slowest
  // consumer but nothing is ever lost.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions opts;
  opts.queue_capacity = 2;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  FragmentSubscriber a(sopts), b(sopts);
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  ASSERT_TRUE(a.WaitConnected(5s));
  ASSERT_TRUE(b.WaitConnected(5s));
  ASSERT_TRUE(PollFor([&] { return server.active_connections() == 2; }, 5s));

  constexpr int kCount = 300;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }
  ASSERT_TRUE(a.WaitForSeq(kCount - 1, 30s));
  ASSERT_TRUE(b.WaitForSeq(kCount - 1, 30s));
  EXPECT_EQ(a.metrics().fragments_in, kCount);
  EXPECT_EQ(b.metrics().fragments_in, kCount);
  EXPECT_EQ(server.metrics().drops, 0);
  EXPECT_EQ(server.metrics().slow_disconnects, 0);

  a.Stop();
  b.Stop();
  server.Stop();
}

// ---- Robustness: checksums, liveness, repair, degradation -------------------

// Collects the filler ids referenced by hole elements under `n`.
void CollectHoleIds(const Node& n, std::vector<int64_t>* out) {
  if (frag::IsHoleElement(n)) {
    auto id = frag::HoleId(n);
    if (id.ok()) out->push_back(id.value());
    return;
  }
  for (const auto& child : n.children()) CollectHoleIds(*child, out);
}

TEST(FragmentSubscriberTest, NegotiatesChecksummedFramesWithARealServer) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  EXPECT_TRUE(sub.server_crc());
  auto m = sub.metrics();
  EXPECT_EQ(m.fragments_in, 3);
  EXPECT_EQ(m.frames_corrupt, 0);
  EXPECT_EQ(m.poison_quarantined, 0);
  sub.Stop();
  server.Stop();
}

TEST(FragmentSubscriberTest, LivenessTimeoutRecoversFromAHalfDeadServer) {
  // A server that stops sending without closing the socket (no FIN — a
  // hard crash, a pulled cable) must not hold the subscriber forever: the
  // liveness watchdog kills the connection and the reconnect resumes via
  // REPLAY_FROM from the last contiguous seq.
  frag::TagStructure ts = MustParseTs(kPacketTs);
  const std::string ts_xml = ts.ToXml();
  auto listener = ListenOn(0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::vector<std::string> frames;
  for (int i = 0; i < 4; ++i) {
    auto payload = frag::EncodeWirePayload(MakePacket(i + 1, 1000 + i, i),
                                           ts, frag::WireCodec::kPlainXml);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    frames.push_back(MustEncode({FrameType::kFragment, 0,
                                 static_cast<uint64_t>(i),
                                 std::move(payload).MoveValue()}));
  }

  int64_t first_replay = -7;
  int64_t second_replay = -7;
  std::thread half_dead([&] {
    // Session 1 delivers seqs 0-1 and then goes silent (never heartbeats,
    // never FINs). Session 2 serves the resumed tail.
    first_replay =
        ServeOneSession(listener.value(), ts_xml, frames, {0, 1});
    second_replay =
        ServeOneSession(listener.value(), ts_xml, frames, {2, 3});
  });

  FragmentSubscriberOptions opts;
  opts.port = port.value();
  opts.stream = "pkts";
  opts.liveness_timeout = 200ms;
  opts.backoff_initial = 10ms;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  const bool caught_up = sub.WaitForSeq(3, 10s);
  const MetricsSnapshot m = sub.metrics();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  sub.Stop();
  listener.value().Shutdown();
  half_dead.join();

  EXPECT_TRUE(caught_up);
  EXPECT_EQ(first_replay, -1);  // cold start
  EXPECT_EQ(second_replay, 1);  // resume from the last contiguous seq
  EXPECT_GE(m.liveness_timeouts, 1);
  EXPECT_GE(m.reconnects, 1);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, static_cast<int64_t>(i + 1));
  }
}

// Like ServeOneSession, but after delivering the first two frames it keeps
// heartbeating a published count that covers all of them — a loss the
// subscriber can only notice through the heartbeat — until the peer asks
// for a catch-up replay, which it then serves.
struct LaggingResult {
  int64_t initial_replay = -100;
  int64_t catchup_from = -100;
};

LaggingResult ServeLaggingSession(const Socket& listener,
                                  const std::string& ts_xml,
                                  const std::vector<std::string>& frames) {
  LaggingResult result;
  auto accepted = Accept(listener);
  if (!accepted.ok()) return result;
  Socket conn = std::move(accepted).MoveValue();
  FrameReader reader;
  char buf[4096];
  bool handshaken = false;
  while (result.initial_replay == -100) {
    auto n = conn.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) return result;
    reader.Feed(buf, n.value());
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return result;
      if (!next.value().has_value()) break;
      Frame fr = std::move(*next.value());
      if (!handshaken && fr.type == FrameType::kHello) {
        Hello ack;
        ack.stream_name = "pkts";
        ack.ts_hash = TagStructureHash(ts_xml);
        ack.tag_structure_xml = ts_xml;
        auto hello_r = EncodeFrame(
            {FrameType::kHello, 0, 0, EncodeHello(ack)}, kFrameVersion);
        if (!hello_r.ok()) return result;
        const std::string& hello = hello_r.value();
        if (!conn.SendAll(hello.data(), hello.size()).ok()) return result;
        handshaken = true;
      } else if (fr.type == FrameType::kReplayFrom) {
        auto from = DecodeReplayFrom(fr.payload);
        if (!from.ok()) return result;
        result.initial_replay = from.value();
      }
    }
  }
  for (int idx : {0, 1}) {
    if (!conn.SendAll(frames[idx].data(), frames[idx].size()).ok()) {
      return result;
    }
  }
  const std::string hb = MustEncode(
      {FrameType::kHeartbeat, 0, static_cast<uint64_t>(frames.size()), ""});
  while (result.catchup_from == -100) {
    if (!conn.SendAll(hb.data(), hb.size()).ok()) return result;
    bool timed_out = false;
    auto n = conn.RecvTimeout(buf, sizeof(buf), 40ms, &timed_out);
    if (!n.ok()) return result;
    if (timed_out) continue;
    if (n.value() == 0) return result;
    reader.Feed(buf, n.value());
    for (;;) {
      auto next = reader.Next();
      if (!next.ok()) return result;
      if (!next.value().has_value()) break;
      if (next.value()->type == FrameType::kReplayFrom) {
        auto from = DecodeReplayFrom(next.value()->payload);
        if (from.ok()) result.catchup_from = from.value();
      }
    }
  }
  for (size_t i = static_cast<size_t>(result.catchup_from) + 1;
       i < frames.size(); ++i) {
    if (!conn.SendAll(frames[i].data(), frames[i].size()).ok()) {
      return result;
    }
  }
  for (;;) {  // hold until the peer closes
    auto n = conn.Recv(buf, sizeof(buf));
    if (!n.ok() || n.value() == 0) break;
  }
  return result;
}

TEST(FragmentSubscriberTest, HeartbeatLagTriggersInSessionCatchup) {
  // Frames evicted before the subscriber ever saw them leave no seq gap
  // on the wire; the only witness is the heartbeat's published count
  // running ahead of a stalled contiguous prefix. Two lagging heartbeats
  // in a row must trigger an in-session REPLAY_FROM — no reconnect.
  frag::TagStructure ts = MustParseTs(kPacketTs);
  const std::string ts_xml = ts.ToXml();
  auto listener = ListenOn(0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  std::vector<std::string> frames;
  for (int i = 0; i < 4; ++i) {
    auto payload = frag::EncodeWirePayload(MakePacket(i + 1, 1000 + i, i),
                                           ts, frag::WireCodec::kPlainXml);
    ASSERT_TRUE(payload.ok()) << payload.status().ToString();
    frames.push_back(MustEncode({FrameType::kFragment, 0,
                                 static_cast<uint64_t>(i),
                                 std::move(payload).MoveValue()}));
  }

  LaggingResult result;
  std::thread lagging([&] {
    result = ServeLaggingSession(listener.value(), ts_xml, frames);
  });

  FragmentSubscriberOptions opts;
  opts.port = port.value();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  const bool caught_up = sub.WaitForSeq(3, 10s);
  const MetricsSnapshot m = sub.metrics();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  sub.Stop();
  listener.value().Shutdown();
  lagging.join();

  EXPECT_TRUE(caught_up);
  EXPECT_EQ(result.initial_replay, -1);
  EXPECT_EQ(result.catchup_from, 1);  // "I have up to seq 1"
  EXPECT_GE(m.catchup_replays, 1);
  EXPECT_EQ(m.reconnects, 0);  // recovered inside the session
  EXPECT_EQ(m.gaps_detected, 0);
  ASSERT_EQ(got.size(), 4u);
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id, static_cast<int64_t>(i + 1));
  }
}

TEST(FragmentSubscriberTest, PoisonFrameIsQuarantinedWithoutReconnect) {
  // A frame whose checksum verifies but whose payload does not decode is
  // publisher poison, not transport noise: retrying the connection would
  // refetch the same bytes forever. It must be quarantined and skipped.
  frag::TagStructure ts = MustParseTs(kPacketTs);
  const std::string ts_xml = ts.ToXml();
  auto listener = ListenOn(0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  const std::string kGarbage = "not a wire payload";
  std::vector<std::string> frames;
  auto p0 = frag::EncodeWirePayload(MakePacket(1, 1000, 0), ts,
                                    frag::WireCodec::kPlainXml);
  auto p2 = frag::EncodeWirePayload(MakePacket(3, 1002, 2), ts,
                                    frag::WireCodec::kPlainXml);
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p2.ok());
  frames.push_back(
      MustEncode({FrameType::kFragment, 0, 0, std::move(p0).MoveValue()}));
  frames.push_back(MustEncode({FrameType::kFragment, 0, 1, kGarbage}));
  frames.push_back(
      MustEncode({FrameType::kFragment, 0, 2, std::move(p2).MoveValue()}));

  int64_t replay = -7;
  std::thread poisoner([&] {
    replay = ServeOneSession(listener.value(), ts_xml, frames, {0, 1, 2},
                             kHelloFlagCrcFrames);
  });

  FragmentSubscriberOptions opts;
  opts.port = port.value();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  const bool caught_up = sub.WaitForSeq(2, 10s);
  const MetricsSnapshot m = sub.metrics();
  auto poison = sub.poison_log();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  sub.Stop();
  listener.value().Shutdown();
  poisoner.join();

  EXPECT_TRUE(caught_up);
  EXPECT_EQ(replay, -1);
  EXPECT_EQ(m.fragments_in, 2);
  EXPECT_EQ(m.poison_quarantined, 1);
  EXPECT_EQ(m.reconnects, 0);
  EXPECT_EQ(m.gaps_detected, 0);
  ASSERT_EQ(poison.size(), 1u);
  EXPECT_EQ(poison[0].seq, 1);
  EXPECT_EQ(poison[0].payload_bytes, kGarbage.size());
  EXPECT_FALSE(poison[0].error.empty());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].id, 1);
  EXPECT_EQ(got[1].id, 3);
}

TEST(FragmentSubscriberTest, NackRepairsAMissingFiller) {
  // The full NACK loop against a real server: a filler's fragments are
  // "lost" downstream of the subscriber, the store reports the dangling
  // hole, RepairMissing NACKs it upstream, the server re-sends the
  // original frames repeat-flagged, and the store converges to the
  // reference view.
  std::string ts_xml = xmark::AuctionTagStructureXml();
  stream::StreamServer source("auction", MustParseTs(ts_xml));
  stream::StreamHub reference;
  ASSERT_TRUE(reference.Subscribe(&source).ok());
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "auction";
  opts.repair_retry_interval = 30ms;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(10s));

  xmark::XMarkOptions gen;
  gen.scale = 0.0;
  auto doc = xmark::GenerateAuctionDoc(gen);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(source.PublishDocument(*doc.value()).ok());
  const int64_t last = server.next_seq() - 1;
  ASSERT_TRUE(sub.WaitForSeq(last, 30s));
  ASSERT_TRUE(sub.server_crc());

  // The victim: the first filler the root fragment's holes reference —
  // guaranteed to leave a dangling hole when its fragments go missing.
  std::vector<int64_t> root_holes;
  CollectHoleIds(*source.history_at(0).content, &root_holes);
  ASSERT_FALSE(root_holes.empty());
  const int64_t victim = root_holes[0];

  stream::StreamHub hub;
  auto store_r = hub.AddLocalStream("auction", MustParseTs(ts_xml));
  ASSERT_TRUE(store_r.ok());
  frag::FragmentStore* store = store_r.value();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  int filtered = 0;
  for (auto& f : got) {
    if (f.id == victim) {
      ++filtered;  // "lost" between transport and store
      continue;
    }
    ASSERT_TRUE(store->Insert(std::move(f)).ok());
  }
  ASSERT_GE(filtered, 1);
  auto missing = store->MissingFillers();
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], victim);

  auto sweep1 = sub.RepairMissing(*store);
  ASSERT_TRUE(sweep1.ok()) << sweep1.status().ToString();
  EXPECT_EQ(sweep1.value().missing, 1);
  EXPECT_EQ(sweep1.value().nacks_sent, 1);

  ASSERT_TRUE(PollFor(
      [&] {
        auto drained = sub.DrainInto(store);
        return drained.ok() && store->MissingFillers().empty();
      },
      10s));

  auto sweep2 = sub.RepairMissing(*store);
  ASSERT_TRUE(sweep2.ok());
  EXPECT_EQ(sweep2.value().missing, 0);
  EXPECT_EQ(sweep2.value().repaired_total, 1);
  EXPECT_EQ(sweep2.value().lost_total, 0);

  const frag::FragmentStore* ref = reference.store("auction");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(store->size(), ref->size());
  EXPECT_EQ(ViewOf(*store), ViewOf(*ref));
  auto m = sub.metrics();
  EXPECT_EQ(m.nacks_sent, 1);
  EXPECT_EQ(m.fillers_repaired, 1);
  EXPECT_EQ(m.fillers_lost, 0);
  EXPECT_GE(server.metrics().repeat_requests_in, 1);
  EXPECT_GE(server.metrics().repeats_out, 1);

  sub.Stop();
  server.Stop();
}

TEST(FragmentSubscriberTest, RepairBudgetExhaustionDegradesInsteadOfWedging) {
  // A server that never answers NACKs must not wedge the pipeline: after
  // the retry budget the filler is declared lost, and each HolePolicy
  // degrades the materialized view its own way.
  frag::TagStructure ts = MustParseTs(kPacketTs);
  const std::string ts_xml = ts.ToXml();
  auto listener = ListenOn(0);
  ASSERT_TRUE(listener.ok());
  auto port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());

  // One root fragment whose <packet> child (filler 5) never arrives.
  frag::Fragment root;
  root.id = 0;
  root.tsid = 1;
  root.valid_time = DateTime(1000);
  root.content = Node::Element("packets");
  root.content->AddChild(frag::MakeHole(5, 2));
  auto payload =
      frag::EncodeWirePayload(root, ts, frag::WireCodec::kPlainXml);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  std::vector<std::string> frames{MustEncode(
      {FrameType::kFragment, 0, 0, std::move(payload).MoveValue()})};

  int64_t replay = -7;
  std::thread deaf([&] {
    // Handshakes and serves the root, then swallows every NACK.
    replay = ServeOneSession(listener.value(), ts_xml, frames, {0},
                             kHelloFlagCrcFrames);
  });

  FragmentSubscriberOptions opts;
  opts.port = port.value();
  opts.stream = "pkts";
  opts.repair_retry_budget = 2;
  opts.repair_retry_interval = 30ms;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(0, 10s));
  ASSERT_TRUE(PollFor([&] { return sub.server_crc(); }, 5s));

  stream::StreamHub hub;
  auto store_r = hub.AddLocalStream("pkts", MustParseTs(ts_xml));
  ASSERT_TRUE(store_r.ok());
  frag::FragmentStore* store = store_r.value();
  ASSERT_TRUE(sub.DrainInto(store).ok());
  ASSERT_EQ(store->MissingFillers().size(), 1u);

  RepairSummary last_sweep;
  ASSERT_TRUE(PollFor(
      [&] {
        auto sweep = sub.RepairMissing(*store);
        if (!sweep.ok()) return false;
        last_sweep = sweep.value();
        return last_sweep.lost_total >= 1;
      },
      10s));
  const MetricsSnapshot m = sub.metrics();
  sub.Stop();
  listener.value().Shutdown();
  deaf.join();

  EXPECT_EQ(replay, -1);
  EXPECT_EQ(last_sweep.lost_total, 1);
  EXPECT_EQ(last_sweep.repaired_total, 0);
  EXPECT_EQ(m.nacks_sent, 2);  // exactly the budget
  EXPECT_EQ(m.fillers_lost, 1);
  EXPECT_EQ(m.fillers_repaired, 0);

  // Degraded-mode temporalization over the unrepairable store.
  frag::TemporalizeStats stats;
  auto omitted =
      frag::Temporalize(*store, false, xq::HolePolicy::kOmit, &stats);
  ASSERT_TRUE(omitted.ok()) << omitted.status().ToString();
  EXPECT_EQ(stats.unresolved_holes, 1);
  EXPECT_TRUE(omitted.value()->children().empty());

  EXPECT_FALSE(
      frag::Temporalize(*store, false, xq::HolePolicy::kFail).ok());

  stats = {};
  auto kept =
      frag::Temporalize(*store, false, xq::HolePolicy::kKeepHole, &stats);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  EXPECT_EQ(stats.unresolved_holes, 1);
  ASSERT_EQ(kept.value()->children().size(), 1u);
  const Node& hole = *kept.value()->children()[0];
  EXPECT_TRUE(frag::IsHoleElement(hole));
  auto hole_id = frag::HoleId(hole);
  ASSERT_TRUE(hole_id.ok());
  EXPECT_EQ(hole_id.value(), 5);
}

// ---- Chaos soak -------------------------------------------------------------

TEST(NetChaosTest, SoakConvergesToTheCleanViewThroughFaults) {
  // The headline robustness scenario: an XMark stream with hundreds of
  // updates served through a deterministic chaos link that drops,
  // duplicates, reorders, corrupts, and truncates. The subscriber must
  // survive every fault class and — with NACK repair for the fillers
  // withheld downstream — converge to a store byte-identical to a clean
  // in-process reference.
  std::string ts_xml = xmark::AuctionTagStructureXml();
  stream::StreamServer source("auction", MustParseTs(ts_xml));
  stream::StreamHub reference;
  ASSERT_TRUE(reference.Subscribe(&source).ok());

  FragmentServerOptions sopts;
  sopts.queue_capacity = 4096;
  sopts.heartbeat_interval = 100ms;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  ChaosLinkOptions chaos_opts;
  chaos_opts.upstream_port = server.port();
  chaos_opts.seed = 42;
  chaos_opts.faults.drop = 0.02;
  chaos_opts.faults.duplicate = 0.02;
  chaos_opts.faults.reorder = 0.02;
  chaos_opts.faults.corrupt = 0.02;
  chaos_opts.faults.truncate = 0.01;
  ChaosLink chaos(chaos_opts);
  ASSERT_TRUE(chaos.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = chaos.port();
  opts.stream = "auction";
  opts.backoff_initial = 10ms;
  opts.backoff_max = 100ms;
  opts.repair_retry_interval = 50ms;
  opts.repair_retry_budget = 50;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(30s));

  xmark::XMarkOptions gen;
  gen.scale = 0.0;
  auto doc = xmark::GenerateAuctionDoc(gen);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  ASSERT_TRUE(source.PublishDocument(*doc.value()).ok());

  // Victims: fillers the root references, withheld from the local store
  // downstream of the subscriber so only NACK repair can recover them.
  // They are excluded from the update mix so each has exactly one frame
  // and a repair is all-or-nothing: either the repeat lands intact or the
  // filler stays missing and is NACKed again (repair granularity is the
  // filler id — docs/ROBUSTNESS.md).
  std::vector<int64_t> root_holes;
  CollectHoleIds(*source.history_at(0).content, &root_holes);
  ASSERT_GE(root_holes.size(), 3u);
  std::vector<int64_t> victims(root_holes.begin(), root_holes.begin() + 3);
  auto is_victim = [&](int64_t id) {
    return std::find(victims.begin(), victims.end(), id) != victims.end();
  };

  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < source.history_size(); ++i) {
    const auto& f = source.history_at(i);
    const auto* tag = source.tag_structure().FindById(f.tsid);
    if (tag != nullptr && tag->fragmented() && !is_victim(f.id)) {
      candidates.push_back(i);
    }
  }
  ASSERT_FALSE(candidates.empty());

  constexpr int kUpdates = 400;
  Random rng(17);
  int64_t t =
      source.history_at(source.history_size() - 1).valid_time.seconds();
  for (int u = 0; u < kUpdates; ++u) {
    const auto& base = source.history_at(static_cast<int64_t>(
        candidates[rng.Uniform(candidates.size())]));
    frag::Fragment f;
    f.id = base.id;
    f.tsid = base.tsid;
    t += 1 + static_cast<int64_t>(rng.Uniform(30));
    f.valid_time = DateTime(t);
    f.content = base.content->Clone();
    f.content->SetAttr("rev", std::to_string(u + 1));
    ASSERT_TRUE(source.Publish(std::move(f)).ok());
  }
  const int64_t last = server.next_seq() - 1;
  ASSERT_TRUE(sub.WaitForSeq(last, 120s))
      << "stuck at seq " << sub.last_seq() << " of " << last;

  stream::StreamHub hub;
  auto store_r = hub.AddLocalStream("auction", MustParseTs(ts_xml));
  ASSERT_TRUE(store_r.ok());
  frag::FragmentStore* store = store_r.value();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  for (auto& f : got) {
    if (is_victim(f.id)) continue;  // "lost" downstream of the transport
    ASSERT_TRUE(store->Insert(std::move(f)).ok());
  }
  ASSERT_EQ(store->MissingFillers().size(), victims.size());

  // Repair loop: NACK, drain, re-check — chaos may eat repeats too, so
  // keep sweeping until every hole fills (the retry budget is generous).
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (!store->MissingFillers().empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << store->MissingFillers().size() << " fillers still missing";
    auto sweep = sub.RepairMissing(*store);
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    ASSERT_EQ(sweep.value().lost_total, 0) << "a filler ran out of budget";
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(sub.DrainInto(store).ok());
  }
  auto final_sweep = sub.RepairMissing(*store);
  ASSERT_TRUE(final_sweep.ok());
  EXPECT_EQ(final_sweep.value().missing, 0);
  EXPECT_GE(final_sweep.value().repaired_total,
            static_cast<int>(victims.size()));
  EXPECT_EQ(final_sweep.value().lost_total, 0);

  // Byte-identical convergence with the clean in-process reference.
  const frag::FragmentStore* ref = reference.store("auction");
  ASSERT_NE(ref, nullptr);
  EXPECT_EQ(store->size(), ref->size());
  EXPECT_EQ(ViewOf(*store), ViewOf(*ref));

  // The run actually exercised the fault paths.
  const MetricsSnapshot m = sub.metrics();
  EXPECT_GE(m.frames_corrupt, 1);
  EXPECT_GE(m.nacks_sent, static_cast<int64_t>(victims.size()));
  EXPECT_GE(m.fillers_repaired, static_cast<int64_t>(victims.size()));
  EXPECT_EQ(m.fillers_lost, 0);
  EXPECT_GE(m.reconnects, 1);
  EXPECT_GE(server.metrics().repeat_requests_in,
            static_cast<int64_t>(victims.size()));
  const ChaosStats cs = chaos.stats();
  EXPECT_GE(cs.corrupted, 1);
  EXPECT_GE(cs.dropped + cs.duplicated + cs.reordered + cs.corrupted +
                cs.truncated,
            10);

  sub.Stop();
  chaos.Stop();
  server.Stop();
}

// ---- Version-aware NACK repair ----------------------------------------------

TEST(FragmentSubscriberTest, VersionAwareNackFetchesOnlyMissingVersions) {
  // A filler with three versions, of which only the first survived the
  // trip into the store. MissingFillers() can't see it (the filler isn't
  // missing, just incomplete); RepairVersions NACKs it with the held
  // validTimes and the server re-sends exactly the two absent versions.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  opts.repair_retry_interval = 30ms;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(10s));

  for (int v = 0; v < 3; ++v) {
    ASSERT_TRUE(source.Publish(MakePacket(5, 100 + v * 100, v)).ok());
  }
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  ASSERT_TRUE(sub.server_crc());

  stream::StreamHub hub;
  auto store_r = hub.AddLocalStream("pkts", MustParseTs(kPacketTs));
  ASSERT_TRUE(store_r.ok());
  frag::FragmentStore* store = store_r.value();
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  ASSERT_EQ(got.size(), 3u);
  for (auto& f : got) {
    if (f.valid_time.seconds() != 100) continue;  // versions 2+3 "lost"
    ASSERT_TRUE(store->Insert(std::move(f)).ok());
  }
  ASSERT_EQ(store->VersionTimes(5), (std::vector<int64_t>{100}));
  ASSERT_TRUE(store->MissingFillers().empty());  // invisible to the sweep

  const int64_t replays_before = server.metrics().replays_served;
  ASSERT_TRUE(sub.RepairVersions(5, *store).ok());
  ASSERT_TRUE(PollFor(
      [&] {
        auto drained = sub.DrainInto(store);
        return drained.ok() && store->VersionTimes(5).size() == 3;
      },
      10s));
  EXPECT_EQ(store->VersionTimes(5),
            (std::vector<int64_t>{100, 200, 300}));
  EXPECT_EQ(store->size(), 3u);  // exactly the two absent versions arrived

  // The server filtered by the have-list: two repeats, not three, and the
  // repair never fell back to a full replay.
  EXPECT_EQ(server.metrics().repeats_out, 2);
  EXPECT_EQ(server.metrics().repeat_requests_in, 1);
  EXPECT_EQ(server.metrics().replays_served, replays_before);
  EXPECT_EQ(sub.metrics().nacks_sent, 1);

  // The next sweep observes the version count grew and closes the repair.
  auto sweep = sub.RepairMissing(*store);
  ASSERT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.value().repaired_total, 1);
  EXPECT_EQ(sweep.value().lost_total, 0);
  EXPECT_EQ(sub.metrics().fillers_repaired, 1);

  sub.Stop();
  server.Stop();
}

// ---- Control-plane robustness -----------------------------------------------

TEST(FragmentServerTest, MalformedControlPayloadsAreCountedAndDropped) {
  // A well-framed, checksum-valid control frame whose payload does not
  // decode must not kill the session (one buggy client frame would
  // otherwise take down a live subscription): the server counts it, drops
  // it, and keeps serving the same connection.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 7)).ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  auto send_all = [&](const std::string& bytes) {
    size_t off = 0;
    while (off < bytes.size()) {
      ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                         MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<size_t>(n);
    }
  };
  Hello hello;
  hello.stream_name = "pkts";
  send_all(MustEncode({FrameType::kHello, kHelloFlagCrcFrames, 0,
                       EncodeHello(hello)}));

  FrameReader reader;
  char buf[4096];
  auto read_frame = [&]() -> Frame {
    for (;;) {
      auto next = reader.Next();
      EXPECT_TRUE(next.ok());
      if (next.ok() && next.value().has_value()) return *next.value();
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      EXPECT_GT(n, 0) << "server closed the connection";
      if (n <= 0) return Frame{};
      reader.Feed(buf, static_cast<size_t>(n));
    }
  };
  ASSERT_EQ(read_frame().type, FrameType::kHello);

  // Two undecodable control payloads, post-handshake.
  send_all(MustEncode({FrameType::kReplayFrom, 0, 0, "zz"}));
  send_all(MustEncode({FrameType::kRepeatRequest, 0, 0, "short-bad"}));
  ASSERT_TRUE(PollFor(
      [&] { return server.metrics().bad_control_frames == 2; }, 5s));

  // The session survived: a valid replay on the same connection streams
  // the published fragment.
  send_all(MustEncode({FrameType::kReplayFrom, 0, 0, EncodeReplayFrom(-1)}));
  Frame frame;
  do {
    frame = read_frame();
  } while (frame.type == FrameType::kHeartbeat);
  EXPECT_EQ(frame.type, FrameType::kFragment);
  EXPECT_EQ(frame.seq, 0u);
  EXPECT_EQ(server.metrics().bad_control_frames, 2);

  ::close(fd);
  server.Stop();
}

// A root snapshot (filler 0) whose holes dangle to the packet fillers, so
// the store temporalizes into a complete document for ViewOf comparisons.
frag::Fragment MakeRoot(const std::vector<int64_t>& hole_ids) {
  frag::Fragment f;
  f.id = 0;
  f.tsid = 1;
  f.valid_time = DateTime(999);
  f.content = Node::Element("packets");
  for (int64_t id : hole_ids) f.content->AddChild(frag::MakeHole(id, 2));
  return f;
}

TEST(NetChaosTest, ControlPlaneChaosIsCountedAndSurvived) {
  // fault_control mangles the client→server direction: HELLOs, REPLAY_FROMs
  // and NACKs arrive with flipped payload bits. The server must count and
  // drop every mangled request without crashing or wedging the session,
  // and the subscriber's retry + catch-up machinery must still converge —
  // including NACK repair, whose REPEAT_REQUESTs roll against the same
  // corruption.
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.heartbeat_interval = 50ms;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());

  ChaosLinkOptions chaos_opts;
  chaos_opts.upstream_port = server.port();
  chaos_opts.seed = 7;
  chaos_opts.faults.control_corrupt = 0.45;
  chaos_opts.fault_control = true;
  ChaosLink chaos(chaos_opts);
  ASSERT_TRUE(chaos.Start().ok());

  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(1 + i % 2, 1000 + i * 10, i)).ok());
  }

  FragmentSubscriberOptions opts;
  opts.port = chaos.port();
  opts.stream = "pkts";
  opts.backoff_initial = 5ms;
  opts.backoff_max = 50ms;
  opts.repair_retry_interval = 20ms;
  opts.repair_retry_budget = 100;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  {
    const bool converged = sub.WaitForSeq(20, 60s);
    const MetricsSnapshot dm = sub.metrics();
    const ChaosStats dcs = chaos.stats();
    const MetricsSnapshot dsm = server.metrics();
    ASSERT_TRUE(converged)
        << "stuck at seq " << sub.last_seq() << " fatal="
        << sub.handshake_failed() << " reconnects=" << dm.reconnects
        << " handshake_failures=" << dm.handshake_failures
        << " replays=" << dm.replays_requested
        << " catchup=" << dm.catchup_replays
        << " liveness=" << dm.liveness_timeouts
        << " frames_in=" << dm.fragments_in
        << " | chaos conns=" << dcs.connections
        << " ctrl=" << dcs.control_frames << "/" << dcs.control_corrupted
        << " | srv hs_fail=" << dsm.handshake_failures
        << " corrupt=" << dsm.frames_corrupt
        << " bad_ctrl=" << dsm.bad_control_frames
        << " replays_served=" << dsm.replays_served;
  }

  // Withhold filler 2 downstream so only NACK repair can recover it.
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  for (auto& f : got) {
    if (f.id == 2) continue;
    ASSERT_TRUE(store.Insert(std::move(f)).ok());
  }
  ASSERT_EQ(store.MissingFillers().size(), 1u);
  const auto deadline = std::chrono::steady_clock::now() + 60s;
  while (!store.MissingFillers().empty()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "filler 2 still missing";
    auto sweep = sub.RepairMissing(store);
    ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
    ASSERT_EQ(sweep.value().lost_total, 0)
        << "repeat_requests_in=" << server.metrics().repeat_requests_in
        << " repeats_out=" << server.metrics().repeats_out
        << " bad_ctrl=" << server.metrics().bad_control_frames
        << " srv_corrupt=" << server.metrics().frames_corrupt
        << " nacks_sent=" << sub.metrics().nacks_sent
        << " connected=" << sub.connected()
        << " sub_frames_in=" << sub.metrics().frames_in
        << " sub_fragments_in=" << sub.metrics().fragments_in
        << " sub_corrupt=" << sub.metrics().frames_corrupt
        << " sub_gaps=" << sub.metrics().gaps_detected
        << " sub_reconnects=" << sub.metrics().reconnects
        << " sub_poison=" << sub.metrics().poison_quarantined;
    std::this_thread::sleep_for(20ms);
    ASSERT_TRUE(sub.DrainInto(&store).ok());
  }

  frag::FragmentStore ref(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(ref.Insert(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ref.Insert(MakePacket(1 + i % 2, 1000 + i * 10, i)).ok());
  }
  EXPECT_EQ(ViewOf(store), ViewOf(ref));

  // The run actually attacked the control plane, and the server absorbed
  // every mangled frame into a counter instead of dying: each corrupted
  // control frame surfaces as a checksum drop, an undecodable payload, or
  // a failed handshake.
  const ChaosStats cs = chaos.stats();
  EXPECT_GE(cs.control_frames, 2);
  EXPECT_GE(cs.control_corrupted, 1);
  const MetricsSnapshot sm = server.metrics();
  EXPECT_GE(sm.frames_corrupt + sm.bad_control_frames +
                sm.handshake_failures,
            1);

  // The server is still healthy: a clean direct subscriber converges.
  FragmentSubscriberOptions clean_opts;
  clean_opts.port = server.port();
  clean_opts.stream = "pkts";
  FragmentSubscriber clean(clean_opts);
  ASSERT_TRUE(clean.Start().ok());
  EXPECT_TRUE(clean.WaitForSeq(20, 10s));
  clean.Stop();

  sub.Stop();
  chaos.Stop();
  server.Stop();
}

// ---- Durability: restart, epoch reset, crash soak ---------------------------

namespace fs = std::filesystem;

class WalTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/xcql_net_wal_XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }
  void TearDown() override {
    WalHooks::Install(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string dir_;
};

TEST_F(WalTransportTest, ServerRestartFromWalResumesSubscribers) {
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  int64_t saved_last = -1;
  uint64_t saved_epoch = 0;

  // First life: durable server, four fragments, one subscriber.
  {
    WalRecovery rec;
    auto wal = Wal::Open(dir_ + "/wal", "pkts", kPacketTs, WalOptions{},
                         &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(rec.records.empty());
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    FragmentServerOptions sopts;
    sopts.wal = wal.value().get();
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(source.Publish(MakePacket(1 + i % 2, 1000 + i * 10, i))
                      .ok());
    }
    FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok());
    ASSERT_TRUE(sub.WaitForSeq(4, 10s));
    ASSERT_TRUE(sub.DrainInto(&store).ok());
    saved_last = sub.last_seq();
    saved_epoch = sub.server_epoch();
    EXPECT_EQ(saved_last, 4);
    EXPECT_EQ(saved_epoch, wal.value()->epoch());
    ASSERT_NE(saved_epoch, 0u);
    sub.Stop();
    server.Stop();
    ASSERT_TRUE(wal.value()->Close().ok());
  }

  // Second life: recover from disk, publish more, and a subscriber that
  // resumes from its persisted (last_seq, epoch) receives only the new
  // frames — no re-replay of what it already holds.
  {
    WalRecovery rec;
    auto wal = Wal::Open(dir_ + "/wal", "pkts", kPacketTs, WalOptions{},
                         &rec);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_EQ(rec.records.size(), 5u);
    ASSERT_EQ(rec.epoch, saved_epoch);
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    ASSERT_TRUE(RestoreStream(rec, &source).ok());
    FragmentServerOptions sopts;
    sopts.wal = wal.value().get();
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());
    for (int i = 4; i < 6; ++i) {
      ASSERT_TRUE(source.Publish(MakePacket(1 + i % 2, 1000 + i * 10, i))
                      .ok());
    }
    FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    opts.initial_last_seq = saved_last;
    opts.known_epoch = saved_epoch;
    FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok());
    ASSERT_TRUE(sub.WaitForSeq(6, 10s));
    EXPECT_EQ(sub.server_epoch(), saved_epoch);
    EXPECT_EQ(sub.metrics().epoch_resets, 0);
    EXPECT_EQ(sub.metrics().fragments_in, 2);  // seqs 5 and 6 only
    ASSERT_TRUE(sub.DrainInto(&store).ok());
    sub.Stop();
    server.Stop();
  }

  // The resumed store equals a clean single-life reference, byte for byte.
  frag::FragmentStore ref(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(ref.Insert(MakeRoot({1, 2})).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ref.Insert(MakePacket(1 + i % 2, 1000 + i * 10, i)).ok());
  }
  EXPECT_EQ(store.size(), ref.size());
  EXPECT_EQ(ViewOf(store), ViewOf(ref));
}

TEST_F(WalTransportTest, EpochChangeDiscardsResumeStateAndReplaysAll) {
  int64_t saved_last = -1;
  uint64_t saved_epoch = 0;
  {
    WalRecovery rec;
    auto wal = Wal::Open(dir_ + "/wal", "pkts", kPacketTs, WalOptions{},
                         &rec);
    ASSERT_TRUE(wal.ok());
    stream::StreamServer source("pkts", MustParseTs(kPacketTs));
    FragmentServerOptions sopts;
    sopts.wal = wal.value().get();
    FragmentServer server(&source, sopts);
    ASSERT_TRUE(server.Start().ok());
    ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 0)).ok());
    ASSERT_TRUE(source.Publish(MakePacket(1, 1010, 1)).ok());
    FragmentSubscriberOptions opts;
    opts.port = server.port();
    opts.stream = "pkts";
    FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok());
    ASSERT_TRUE(sub.WaitForSeq(1, 10s));
    saved_last = sub.last_seq();
    saved_epoch = sub.server_epoch();
    ASSERT_NE(saved_epoch, 0u);
    sub.Stop();
    server.Stop();
    ASSERT_TRUE(wal.value()->Close().ok());
  }

  // The data dir is wiped: a new epoch, a different history. A subscriber
  // resuming with the old (last_seq, epoch) must detect the reset and
  // restart from scratch instead of mis-resuming seq numbers into an
  // unrelated stream.
  std::error_code ec;
  fs::remove_all(dir_ + "/wal", ec);
  WalRecovery rec;
  auto wal = Wal::Open(dir_ + "/wal", "pkts", kPacketTs, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  ASSERT_NE(wal.value()->epoch(), saved_epoch);
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(9, 5000 + i * 10, 100 + i)).ok());
  }
  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  opts.initial_last_seq = saved_last;
  opts.known_epoch = saved_epoch;
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  // With the stale resume point discarded the full new history (3 frames,
  // seqs 0..2) replays; resuming from seq 1 would have delivered one.
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  EXPECT_EQ(sub.metrics().epoch_resets, 1);
  EXPECT_EQ(sub.metrics().fragments_in, 3);
  EXPECT_EQ(sub.server_epoch(), wal.value()->epoch());
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(sub.DrainInto(&store).ok());
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.VersionTimes(9), (std::vector<int64_t>{5000, 5010, 5020}));
  sub.Stop();
  server.Stop();
}

// A WAL append failure must not let durability end *silently*: the server
// keeps serving, but it retires the durable epoch for a freshly minted
// volatile one and restarts every subscriber on it. A resume point from
// the degraded run can then never splice into a post-restart stream whose
// WAL is missing the un-appended frames.
TEST_F(WalTransportTest, WalAppendFailureRetiresTheDurableEpoch) {
  WalRecovery rec;
  auto wal = Wal::Open(dir_ + "/wal", "pkts", kPacketTs, WalOptions{}, &rec);
  ASSERT_TRUE(wal.ok());
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  // This test is about the degrade protocol itself; with self-healing on,
  // the supervisor would re-arm the (healthy) disk before the assertions
  // run. The re-arm path is covered by disk_fault_test.cc.
  sopts.durability.self_heal = false;
  FragmentServer server(&source, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(source.Publish(MakeRoot({1, 2})).ok());
  ASSERT_TRUE(source.Publish(MakePacket(1, 1000, 0)).ok());
  ASSERT_TRUE(source.Publish(MakePacket(2, 1010, 1)).ok());

  FragmentSubscriberOptions opts;
  opts.port = server.port();
  opts.stream = "pkts";
  FragmentSubscriber sub(opts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(2, 10s));
  const uint64_t durable_epoch = server.epoch();
  ASSERT_EQ(durable_epoch, wal.value()->epoch());
  ASSERT_NE(durable_epoch, 0u);
  ASSERT_FALSE(server.wal_degraded());

  // Fail every append from here on (a closed WAL rejects appends the same
  // way a full disk would). The next publish ends durability.
  ASSERT_TRUE(wal.value()->Close().ok());
  ASSERT_TRUE(source.Publish(MakePacket(1, 1020, 2)).ok());
  ASSERT_TRUE(source.Publish(MakePacket(2, 1030, 3)).ok());

  // The degrade cut the connection; the subscriber reconnects, sees the
  // volatile epoch, discards its resume state, and replays everything.
  ASSERT_TRUE(sub.WaitForSeq(4, 10s));
  EXPECT_TRUE(server.wal_degraded());
  EXPECT_NE(server.epoch(), durable_epoch);
  EXPECT_NE(server.epoch(), 0u);
  EXPECT_EQ(sub.server_epoch(), server.epoch());
  EXPECT_GE(sub.metrics().epoch_resets, 1);
  EXPECT_GE(server.metrics().wal_append_failures, 1);

  // Delivery itself never degraded: the subscriber holds all five
  // fragments, including the two the WAL rejected.
  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(sub.DrainInto(&store).ok());
  frag::FragmentStore ref(MustParseTs(kPacketTs), "pkts");
  ASSERT_TRUE(ref.Insert(MakeRoot({1, 2})).ok());
  ASSERT_TRUE(ref.Insert(MakePacket(1, 1000, 0)).ok());
  ASSERT_TRUE(ref.Insert(MakePacket(2, 1010, 1)).ok());
  ASSERT_TRUE(ref.Insert(MakePacket(1, 1020, 2)).ok());
  ASSERT_TRUE(ref.Insert(MakePacket(2, 1030, 3)).ok());
  EXPECT_EQ(ViewOf(store), ViewOf(ref));
  sub.Stop();
  server.Stop();
}

// ---- Crash soak -------------------------------------------------------------

constexpr int kSoakRecords = 40;

frag::Fragment SoakFragment(int i) {
  // Record 0 is the root; after it, four fillers with ~ten versions each,
  // strictly increasing validTimes, padded so 512-byte WAL segments rotate
  // every couple of records.
  if (i == 0) return MakeRoot({10, 11, 12, 13});
  return MakePacket(10 + (i - 1) % 4, 1000 + i * 10, i, /*pad=*/100);
}

// The child's whole life: recover the WAL, serve, publish the rest of the
// workload — and die at `kill_point` (the `kill_at`th time it fires), if
// one is set. Exit codes: 43 = killed at the point, 0 = workload complete
// (waits for the parent's stop file), anything else = a real failure.
[[noreturn]] void RunSoakServer(const std::string& dir,
                                const char* kill_point, int kill_at) {
  if (kill_point != nullptr) {
    auto fired = std::make_shared<int>(0);
    std::string point = kill_point;
    WalHooks::Install([point, kill_at, fired](const char* p) {
      if (point == p && ++*fired >= kill_at) ::_exit(43);
    });
  }
  WalOptions wopts;
  wopts.fsync = FsyncPolicy::kAlways;
  wopts.segment_bytes = 512;
  wopts.checkpoint_every = 6;
  WalRecovery rec;
  auto wal = Wal::Open(dir + "/wal", "pkts", kPacketTs, wopts, &rec);
  if (!wal.ok()) ::_exit(99);
  auto ts = frag::TagStructure::Parse(kPacketTs);
  if (!ts.ok()) ::_exit(99);
  stream::StreamServer source("pkts", std::move(ts).MoveValue());
  if (!rec.records.empty() && !RestoreStream(rec, &source).ok()) ::_exit(98);
  FragmentServerOptions sopts;
  sopts.wal = wal.value().get();
  FragmentServer server(&source, sopts);
  if (!server.Start().ok()) ::_exit(97);
  // Announce the port atomically (write + rename) so the parent never
  // reads a half-written file.
  if (!WriteStringToFile(dir + "/port.tmp", std::to_string(server.port()))
           .ok()) {
    ::_exit(96);
  }
  if (::rename((dir + "/port.tmp").c_str(), (dir + "/port").c_str()) != 0) {
    ::_exit(96);
  }
  for (int64_t i = source.history_size(); i < kSoakRecords; ++i) {
    if (!source.Publish(SoakFragment(static_cast<int>(i))).ok()) ::_exit(95);
    std::this_thread::sleep_for(1ms);
  }
  WalHooks::Install(nullptr);
  (void)wal.value()->Sync();
  if (!WriteStringToFile(dir + "/complete", "done").ok()) ::_exit(94);
  for (int i = 0; i < 1000 && !fs::exists(dir + "/stop"); ++i) {
    std::this_thread::sleep_for(10ms);
  }
  ::_exit(0);
}

TEST_F(WalTransportTest, CrashSoakConvergesByteIdenticalAcrossKills) {
  // The server is killed over and over mid-stream — at every WAL crash
  // point in turn, plus raw SIGKILL rounds — and restarted from its data
  // dir each time. A per-round subscriber resumes from the previous
  // round's (last_seq, epoch); across all the carnage the accumulated
  // store must converge byte-identical to a clean single-run reference.
  struct Spec {
    const char* point;  // nullptr = SIGKILL round
    int at;
  };
  std::vector<Spec> specs;
  for (const char* p : WalHooks::Points()) {
    const bool is_append = std::string(p).rfind("append:", 0) == 0;
    specs.push_back({p, is_append ? 4 : 2});
  }
  specs.push_back({nullptr, 0});
  specs.push_back({nullptr, 0});

  frag::FragmentStore ref(MustParseTs(kPacketTs), "pkts");
  for (int i = 0; i < kSoakRecords; ++i) {
    ASSERT_TRUE(ref.Insert(SoakFragment(i)).ok());
  }

  frag::FragmentStore store(MustParseTs(kPacketTs), "pkts");
  int64_t saved_last = -1;
  uint64_t saved_epoch = 0;
  int64_t epoch_resets = 0;
  int kills = 0;
  bool complete = false;
  for (int round = 0; !complete; ++round) {
    ASSERT_LT(round, 60) << "soak failed to make progress; stuck at seq "
                         << saved_last;
    const Spec& spec = specs[static_cast<size_t>(round) % specs.size()];
    std::error_code ec;
    fs::remove(dir_ + "/port", ec);
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) RunSoakServer(dir_, spec.point, spec.at);  // never returns
    ASSERT_TRUE(PollFor([&] { return fs::exists(dir_ + "/port"); }, 10s));
    auto port_str = ReadFileToString(dir_ + "/port");
    ASSERT_TRUE(port_str.ok());

    FragmentSubscriberOptions opts;
    opts.port = static_cast<uint16_t>(std::atoi(port_str.value().c_str()));
    opts.stream = "pkts";
    opts.backoff_initial = 5ms;
    opts.backoff_max = 20ms;
    opts.initial_last_seq = saved_last;
    opts.known_epoch = saved_epoch;
    FragmentSubscriber sub(opts);
    ASSERT_TRUE(sub.Start().ok());
    (void)sub.WaitConnected(2s);  // best effort: the child may die first

    if (spec.point == nullptr) {
      // SIGKILL round: let it stream a moment, then pull the plug.
      std::this_thread::sleep_for(50ms);
      if (!fs::exists(dir_ + "/complete")) ::kill(pid, SIGKILL);
    }

    int status = 0;
    bool child_done = false;
    while (!child_done) {
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        child_done = true;
      } else if (fs::exists(dir_ + "/complete")) {
        // Final life: the whole workload is durable. Catch all the way
        // up, then release the child.
        EXPECT_TRUE(sub.WaitForSeq(kSoakRecords - 1, 30s))
            << "stuck at seq " << sub.last_seq();
        ASSERT_TRUE(WriteStringToFile(dir_ + "/stop", "").ok());
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        child_done = true;
      } else {
        std::this_thread::sleep_for(5ms);
      }
    }
    if (WIFEXITED(status)) {
      const int code = WEXITSTATUS(status);
      ASSERT_TRUE(code == 0 || code == 43) << "child failed, exit " << code;
      if (code == 0) complete = true;
      if (code == 43) ++kills;
    } else {
      ASSERT_TRUE(WIFSIGNALED(status));
      ++kills;
    }

    ASSERT_TRUE(sub.DrainInto(&store).ok());
    if (sub.last_seq() > saved_last) saved_last = sub.last_seq();
    if (sub.server_epoch() != 0) {
      if (saved_epoch == 0) saved_epoch = sub.server_epoch();
      // The data dir is never wiped, so the epoch must hold steady across
      // every crash and recovery.
      EXPECT_EQ(sub.server_epoch(), saved_epoch) << "round " << round;
    }
    epoch_resets += sub.metrics().epoch_resets;
    sub.Stop();
  }

  EXPECT_GE(kills, 5) << "the soak barely crashed anything";
  EXPECT_EQ(saved_last, kSoakRecords - 1);
  EXPECT_EQ(epoch_resets, 0);
  EXPECT_EQ(store.size(), ref.size());
  EXPECT_EQ(ViewOf(store), ViewOf(ref));
}

// ---- Event loop: fd hygiene, backends, encode-once fan-out ------------------

int CountOpenFds() {
  int n = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++n;
  }
  return n;
}

TEST(FrameCodecTest, SubscribeAndSkipToRoundTrip) {
  const std::vector<int> ids = {2, 4, 6};
  auto back = DecodeSubscribe(EncodeSubscribe(ids));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), ids);

  auto empty = DecodeSubscribe(EncodeSubscribe({}));
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  // The payload length must match the promised count exactly: truncated,
  // padded, and sub-header payloads are all parse errors, never misreads.
  const std::string wire = EncodeSubscribe(ids);
  EXPECT_FALSE(
      DecodeSubscribe(std::string_view(wire.data(), wire.size() - 2)).ok());
  EXPECT_FALSE(DecodeSubscribe(wire + "x").ok());
  EXPECT_FALSE(DecodeSubscribe("abc").ok());

  // SUBSCRIBE and SKIP_TO travel through the frame codec like any other
  // type; SKIP_TO spans [payload start, header seq].
  Frame sub{FrameType::kSubscribe, 0, 0, wire};
  Frame skip{FrameType::kSkipTo, 0, 123, EncodeSkipTo(120)};
  std::string bytes = MustEncode(sub) + MustEncode(skip);
  FrameReader reader;
  reader.Feed(bytes.data(), bytes.size());
  auto first = reader.Next();
  ASSERT_TRUE(first.ok() && first.value().has_value());
  EXPECT_EQ(first.value()->type, FrameType::kSubscribe);
  auto decoded = DecodeSubscribe(first.value()->payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), ids);
  auto second = reader.Next();
  ASSERT_TRUE(second.ok() && second.value().has_value());
  EXPECT_EQ(second.value()->type, FrameType::kSkipTo);
  EXPECT_EQ(second.value()->seq, 123);
  auto start = DecodeSkipTo(second.value()->payload);
  ASSERT_TRUE(start.ok());
  EXPECT_EQ(start.value(), 120);
  EXPECT_FALSE(DecodeSkipTo("short").ok());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(EventLoopServerTest, StopReleasesEveryFdAndSupportsRestart) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }

  // Everything the server opens — listener, epoll/poll set, wake pipe,
  // accepted connections — must be gone after Stop(), across restarts.
  const int baseline = CountOpenFds();
  for (int round = 0; round < 2; ++round) {
    FragmentServerOptions opts;
    opts.heartbeat_interval = 100ms;
    FragmentServer server(&source, opts);
    ASSERT_TRUE(server.Start().ok()) << "round " << round;

    FragmentSubscriberOptions sopts;
    sopts.port = server.port();
    sopts.stream = "pkts";
    FragmentSubscriber a(sopts), b(sopts), c(sopts);
    ASSERT_TRUE(a.Start().ok());
    ASSERT_TRUE(b.Start().ok());
    ASSERT_TRUE(c.Start().ok());
    ASSERT_TRUE(a.WaitForSeq(2, 10s));
    ASSERT_TRUE(b.WaitForSeq(2, 10s));
    ASSERT_TRUE(c.WaitForSeq(2, 10s));
    EXPECT_GT(CountOpenFds(), baseline);

    a.Stop();
    b.Stop();
    c.Stop();
    server.Stop();
    EXPECT_EQ(CountOpenFds(), baseline) << "round " << round;
  }
}

TEST(EventLoopServerTest, PollBackendServesEndToEnd) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));

#ifdef __linux__
  {
    // The default resolves to epoll on Linux.
    FragmentServer def(&source);
    ASSERT_TRUE(def.Start().ok());
    EXPECT_EQ(def.backend(), EventBackend::kEpoll);
    def.Stop();
  }
#endif

  // The portable poll(2) backend stays selectable and serves the same
  // protocol: replay, live delivery, heartbeats.
  FragmentServerOptions opts;
  opts.backend = EventBackend::kPoll;
  opts.heartbeat_interval = 100ms;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.backend(), EventBackend::kPoll);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }
  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  FragmentSubscriber sub(sopts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitForSeq(4, 10s));
  for (int i = 5; i < 10; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }
  ASSERT_TRUE(sub.WaitForSeq(9, 10s));
  EXPECT_EQ(sub.metrics().fragments_in, 10);

  sub.Stop();
  server.Stop();
}

TEST(EventLoopServerTest, FanOutAndReplayEncodeEachFragmentExactlyOnce) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServer server(&source);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kHistory = 40;
  for (int i = 0; i < kHistory; ++i) {
    ASSERT_TRUE(source.Publish(MakePacket(i + 1, 1000 + i, i)).ok());
  }

  // Six late joiners replay the full log; replay serves the refcounted
  // buffers encoded at publish time, so the encode count stays flat.
  constexpr int kSubs = 6;
  std::vector<std::unique_ptr<FragmentSubscriber>> subs;
  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "pkts";
  for (int i = 0; i < kSubs; ++i) {
    subs.push_back(std::make_unique<FragmentSubscriber>(sopts));
    ASSERT_TRUE(subs.back()->Start().ok());
  }
  for (auto& s : subs) ASSERT_TRUE(s->WaitForSeq(kHistory - 1, 10s));
  EXPECT_EQ(server.metrics().fragment_encodes, kHistory);

  // Live fan-out: one encoding shared by all six queues.
  constexpr int kLive = 10;
  for (int i = 0; i < kLive; ++i) {
    ASSERT_TRUE(
        source.Publish(MakePacket(kHistory + i + 1, 2000 + i, i)).ok());
  }
  for (auto& s : subs) {
    ASSERT_TRUE(s->WaitForSeq(kHistory + kLive - 1, 10s));
    EXPECT_EQ(s->metrics().fragments_in, kHistory + kLive);
  }
  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.fragment_encodes, kHistory + kLive);
  EXPECT_EQ(m.drops, 0);

  // Fully drained queues: per-connection conservation degenerates to
  // enqueued == sent.
  for (const auto& s : server.connection_stats()) {
    EXPECT_EQ(s.enqueued, s.sent + s.dropped + s.queue_depth);
  }

  for (auto& s : subs) s->Stop();
  server.Stop();
}

TEST(EventLoopServerTest, ConnectionChurnUnderConcurrentPublishIsClean) {
  stream::StreamServer source("pkts", MustParseTs(kPacketTs));
  FragmentServerOptions opts;
  opts.heartbeat_interval = 100ms;
  opts.queue_capacity = 4096;
  opts.slow_consumer = SlowConsumerPolicy::kDropOldest;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  // A publisher that never pauses while connections come and go — the
  // TSan target for the loop-thread / publisher / churner interleavings.
  std::atomic<bool> stop{false};
  std::atomic<int> published{0};
  std::thread pub([&] {
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++i;
      EXPECT_TRUE(source.Publish(MakePacket(i, 1000 + i, i)).ok());
      published.store(i, std::memory_order_relaxed);
      std::this_thread::sleep_for(500us);
    }
  });

  // 4 threads × 16 sessions = 64 connect/disconnect cycles, a mix of
  // filtered and unfiltered subscribers, a third of them severed rudely.
  std::vector<std::thread> churners;
  for (int t = 0; t < 4; ++t) {
    churners.emplace_back([&, t] {
      for (int round = 0; round < 16; ++round) {
        FragmentSubscriberOptions so;
        so.port = server.port();
        so.stream = "pkts";
        so.backoff_initial = 5ms;
        if ((round + t) % 2 == 0) so.filter_tsids = {2};
        FragmentSubscriber s(so);
        EXPECT_TRUE(s.Start().ok());
        s.WaitConnected(10s);
        std::this_thread::sleep_for(2ms);
        if (round % 3 == 0) s.KillConnection();
        s.Stop();
      }
    });
  }
  for (auto& t : churners) t.join();
  stop.store(true);
  pub.join();

  // The server shed every churned connection and still serves the whole
  // stream to a fresh subscriber.
  ASSERT_TRUE(PollFor([&] { return server.active_connections() == 0; }, 10s));
  const int total = published.load();
  ASSERT_GT(total, 0);
  FragmentSubscriberOptions so;
  so.port = server.port();
  so.stream = "pkts";
  FragmentSubscriber fin(so);
  ASSERT_TRUE(fin.Start().ok());
  ASSERT_TRUE(fin.WaitForSeq(total - 1, 30s));
  EXPECT_EQ(fin.metrics().fragments_in, total);
  for (const auto& s : server.connection_stats()) {
    EXPECT_EQ(s.enqueued, s.sent + s.dropped + s.queue_depth);
  }
  fin.Stop();
  server.Stop();
}

// ---- Per-tsid subscription filters ------------------------------------------

// A three-event schema so filters can carve disjoint slices of a stream.
constexpr const char* kFlowTs = R"(
<tag type="snapshot" id="1" name="flows">
  <tag type="event" id="2" name="tcp">
    <tag type="snapshot" id="3" name="port"/>
  </tag>
  <tag type="event" id="4" name="udp">
    <tag type="snapshot" id="5" name="port"/>
  </tag>
  <tag type="event" id="6" name="icmp">
    <tag type="snapshot" id="7" name="code"/>
  </tag>
</tag>)";

frag::Fragment MakeFlow(int tsid, int64_t id, int64_t t, int val) {
  const char* name = tsid == 2 ? "tcp" : tsid == 4 ? "udp" : "icmp";
  const char* field = tsid == 6 ? "code" : "port";
  frag::Fragment f;
  f.id = id;
  f.tsid = tsid;
  f.valid_time = DateTime(t);
  f.content = Node::Element(name);
  NodePtr child = Node::Element(field);
  child->AddChild(Node::Text(std::to_string(val)));
  f.content->AddChild(std::move(child));
  return f;
}

// The byte-level identity of one delivered fragment, for exact
// filtered-subsequence comparisons.
std::string FlowSig(const frag::Fragment& f) {
  return std::to_string(f.tsid) + "|" + std::to_string(f.id) + "|" +
         std::to_string(f.valid_time.seconds()) + "|" +
         SerializeXml(*f.content);
}

TEST(FilterTest, SubscriberFilterCarvesByteIdenticalSlice) {
  stream::StreamServer source("flows", MustParseTs(kFlowTs));
  FragmentServerOptions opts;
  opts.heartbeat_interval = 100ms;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::string> expect;  // the tcp slice, in stream order
  Random rng(7);
  int64_t next_id = 0;
  auto publish_mix = [&](int n) {
    for (int i = 0; i < n; ++i) {
      int tsid = 2 * (1 + static_cast<int>(rng.Uniform(3)));
      ++next_id;
      frag::Fragment f = MakeFlow(tsid, next_id, 1000 + next_id, i);
      if (tsid == 2) expect.push_back(FlowSig(f));
      EXPECT_TRUE(source.Publish(std::move(f)).ok());
    }
  };
  // Half the stream exists before the subscriber: the replay must honor
  // the filter too (SUBSCRIBE goes out before REPLAY_FROM).
  publish_mix(60);

  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "flows";
  sopts.filter_tsids = {2};
  FragmentSubscriber sub(sopts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(10s));
  EXPECT_TRUE(sub.server_filter());
  publish_mix(60);

  // SKIP_TO frames advance the contiguous prefix across the filtered-out
  // runs, so the subscriber reaches the stream head without the data.
  const int64_t last = server.next_seq() - 1;
  ASSERT_TRUE(sub.WaitForSeq(last, 30s))
      << "stuck at seq " << sub.last_seq() << " of " << last;

  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(FlowSig(got[i]), expect[i]) << "frame " << i;
  }

  EXPECT_GE(sub.metrics().skips_in, 1);
  const MetricsSnapshot m = server.metrics();
  EXPECT_EQ(m.frames_filtered, 120 - static_cast<int64_t>(expect.size()));
  EXPECT_GT(m.filtered_bytes_saved, 0);
  EXPECT_GE(m.skips_out, 1);
  auto stats = server.connection_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_TRUE(stats[0].filtered);

  sub.Stop();
  server.Stop();
}

TEST(FilterTest, EmptySubscribeClearsTheFilter) {
  // filter_tsids only ever *sets* a filter; this pins the protocol-level
  // clear against a raw session: SUBSCRIBE {2}, then SUBSCRIBE {}, then
  // everything flows again.
  stream::StreamServer source("flows", MustParseTs(kFlowTs));
  FragmentServerOptions opts;
  opts.heartbeat_interval = 100ms;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "flows";
  sopts.filter_tsids = {2};
  FragmentSubscriber sub(sopts);
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(10s));
  ASSERT_TRUE(PollFor(
      [&] {
        auto stats = server.connection_stats();
        return stats.size() == 1 && stats[0].filtered;
      },
      5s));
  sub.Stop();

  // Same port, no filter: the server must treat the fresh session clean.
  sopts.filter_tsids.clear();
  FragmentSubscriber open(sopts);
  ASSERT_TRUE(open.Start().ok());
  ASSERT_TRUE(open.WaitConnected(10s));
  for (int i = 0; i < 9; ++i) {
    int tsid = 2 * (1 + i % 3);
    ASSERT_TRUE(source.Publish(MakeFlow(tsid, i + 1, 1000 + i, i)).ok());
  }
  ASSERT_TRUE(open.WaitForSeq(8, 10s));
  EXPECT_EQ(open.metrics().fragments_in, 9);
  auto stats = server.connection_stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_FALSE(stats[0].filtered);

  open.Stop();
  server.Stop();
}

TEST(FilterTest, AutoFilterFromQueryRelevanceNarrowsDelivery) {
  stream::StreamServer source("flows", MustParseTs(kFlowTs));
  QueryChannel channel("flows", MustParseTs(kFlowTs));
  ASSERT_TRUE(channel.Open().ok());
  FragmentServerOptions opts;
  opts.query_channel = &channel;
  opts.heartbeat_interval = 100ms;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  // No static filter — the server derives one from the query: //tcp under
  // QaC+ compiles to tsid scans of the tcp subtree, so only {2,3} are
  // relevant and udp/icmp traffic never crosses the wire.
  FragmentSubscriberOptions sopts;
  sopts.port = server.port();
  sopts.stream = "flows";
  FragmentSubscriber sub(sopts);
  RemoteQuerySpec spec;
  spec.method = 2;  // lang::ExecMethod::kQaCPlus
  spec.flags = kQueryFlagAutoFilter;
  spec.text = "for $f in stream(\"flows\")//tcp return string($f/port)";
  auto token = sub.AddRemoteQuery(spec);
  ASSERT_TRUE(token.ok()) << token.status().ToString();
  ASSERT_TRUE(sub.Start().ok());
  ASSERT_TRUE(sub.WaitConnected(10s));
  ASSERT_TRUE(sub.WaitQueryActive(token.value(), 10s));
  ASSERT_TRUE(PollFor(
      [&] {
        auto stats = server.connection_stats();
        return stats.size() == 1 && stats[0].filtered;
      },
      5s));

  int tcp_count = 0;
  for (int i = 0; i < 30; ++i) {
    int tsid = 2 * (1 + i % 3);
    if (tsid == 2) ++tcp_count;
    ASSERT_TRUE(
        source.Publish(MakeFlow(tsid, i + 1, 1000 + i, 7000 + i)).ok());
  }
  const int64_t last = server.next_seq() - 1;
  ASSERT_TRUE(sub.WaitForSeq(last, 30s))
      << "stuck at seq " << sub.last_seq() << " of " << last;

  std::vector<frag::Fragment> got;
  sub.Drain(&got);
  ASSERT_EQ(got.size(), static_cast<size_t>(tcp_count));
  for (const auto& f : got) EXPECT_EQ(f.tsid, 2);
  EXPECT_GT(server.metrics().frames_filtered, 0);

  // The query results themselves are untouched by the transport filter.
  EXPECT_TRUE(sub.WaitForResultSeq(token.value(), 0, 10s));

  sub.Stop();
  server.Stop();
}

TEST(FilterTest, RandomizedFiltersSurviveChaosAndReconnects) {
  // N subscribers behind a faulty link, each with a random tsid filter,
  // two of them severed mid-stream: every one must converge to exactly
  // its filtered subsequence, byte-identical and in stream order.
  stream::StreamServer source("flows", MustParseTs(kFlowTs));
  FragmentServerOptions opts;
  opts.heartbeat_interval = 100ms;
  opts.queue_capacity = 4096;
  FragmentServer server(&source, opts);
  ASSERT_TRUE(server.Start().ok());

  ChaosLinkOptions copts;
  copts.upstream_port = server.port();
  copts.seed = 7;
  copts.faults.drop = 0.01;
  copts.faults.duplicate = 0.01;
  copts.faults.reorder = 0.01;
  copts.faults.corrupt = 0.01;
  ChaosLink chaos(copts);
  ASSERT_TRUE(chaos.Start().ok());

  constexpr int kSubs = 5;
  std::vector<std::unique_ptr<FragmentSubscriber>> subs;
  std::vector<std::vector<int>> filters;
  Random pick(99);
  for (int i = 0; i < kSubs; ++i) {
    std::vector<int> f;
    if (i == 0) {
      f = {2};  // always one single-slice subscriber...
    } else if (i > 1) {
      // ...one guaranteed-unfiltered one (i == 1), the rest random.
      for (int tsid : {2, 4, 6}) {
        if (pick.Uniform(2) == 1) f.push_back(tsid);
      }
    }
    filters.push_back(f);
    FragmentSubscriberOptions so;
    so.port = chaos.port();
    so.stream = "flows";
    so.backoff_initial = 10ms;
    so.backoff_max = 100ms;
    so.filter_tsids = f;
    subs.push_back(std::make_unique<FragmentSubscriber>(so));
    ASSERT_TRUE(subs[i]->Start().ok());
    ASSERT_TRUE(subs[i]->WaitConnected(30s));
  }

  std::vector<std::pair<int, std::string>> pub;  // (tsid, signature)
  Random rng(3);
  constexpr int kCount = 300;
  for (int i = 0; i < kCount; ++i) {
    int tsid = 2 * (1 + static_cast<int>(rng.Uniform(3)));
    frag::Fragment f =
        MakeFlow(tsid, i + 1, 1000 + i, static_cast<int>(rng.Uniform(1000)));
    pub.emplace_back(tsid, FlowSig(f));
    ASSERT_TRUE(source.Publish(std::move(f)).ok());
    // Rude mid-stream cuts: reconnect re-sends SUBSCRIBE before
    // REPLAY_FROM, so the resumed replay stays filtered.
    if (i == kCount / 3) subs[0]->KillConnection();
    if (i == (2 * kCount) / 3) subs[3]->KillConnection();
  }

  const int64_t last = server.next_seq() - 1;
  for (int i = 0; i < kSubs; ++i) {
    ASSERT_TRUE(subs[i]->WaitForSeq(last, 120s))
        << "sub " << i << " stuck at seq " << subs[i]->last_seq() << " of "
        << last;
  }

  for (int i = 0; i < kSubs; ++i) {
    std::vector<frag::Fragment> got;
    subs[i]->Drain(&got);
    std::vector<std::string> want;
    for (const auto& [tsid, sig] : pub) {
      if (filters[i].empty() ||
          std::find(filters[i].begin(), filters[i].end(), tsid) !=
              filters[i].end()) {
        want.push_back(sig);
      }
    }
    ASSERT_EQ(got.size(), want.size()) << "sub " << i;
    for (size_t j = 0; j < want.size(); ++j) {
      ASSERT_EQ(FlowSig(got[j]), want[j]) << "sub " << i << " frame " << j;
    }
  }

  // The two kills alone guarantee reconnect traffic; chaos usually adds
  // more. And the faults really fired.
  int64_t reconnects = 0;
  for (const auto& s : subs) reconnects += s->metrics().reconnects;
  EXPECT_GE(reconnects, 2);
  const ChaosStats cs = chaos.stats();
  EXPECT_GE(cs.dropped + cs.duplicated + cs.reordered + cs.corrupted, 1);

  for (auto& s : subs) s->Stop();
  chaos.Stop();
  server.Stop();
}

}  // namespace
}  // namespace xcql::net
