// Traffic control (paper §2, example 3): vehicle-based sensors report
// positions, road sensors report traffic speed, traffic lights report their
// status. When an ambulance approaches a light, a continuous coincidence
// query across the three streams emits a command to switch it to green at a
// time derived from the ambulance's distance and the road speed.
//
//   ./build/examples/traffic_control
#include <cstdio>

#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

constexpr const char* kVehicleTs = R"(
<tag type="snapshot" id="1" name="vehicles">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="vehicleID"/>
    <tag type="snapshot" id="4" name="type"/>
    <tag type="snapshot" id="5" name="location"/>
  </tag>
</tag>)";

constexpr const char* kRoadSensorTs = R"(
<tag type="snapshot" id="1" name="sensors">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="sensorID"/>
    <tag type="snapshot" id="4" name="location"/>
    <tag type="snapshot" id="5" name="speed"/>
  </tag>
</tag>)";

constexpr const char* kTrafficLightTs = R"(
<tag type="snapshot" id="1" name="lights">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="location"/>
    <tag type="snapshot" id="5" name="status"/>
  </tag>
</tag>)";

xcql::NodePtr Fields(const char* name,
                     std::initializer_list<std::pair<const char*,
                                                     std::string>> kv) {
  xcql::NodePtr e = xcql::Node::Element(name);
  for (const auto& [k, v] : kv) {
    xcql::NodePtr c = xcql::Node::Element(k);
    c->AddChild(xcql::Node::Text(v));
    e->AddChild(std::move(c));
  }
  return e;
}

}  // namespace

int main() {
  xcql::StreamManager mgr;
  if (!mgr.CreateStream("vehicle", kVehicleTs).ok() ||
      !mgr.CreateStream("road_sensor", kRoadSensorTs).ok() ||
      !mgr.CreateStream("traffic_light", kTrafficLightTs).ok()) {
    return 1;
  }
  xcql::stream::EventAppender vehicles(mgr.server("vehicle"), 0, 1,
                                       xcql::Node::Element("vehicles"));
  xcql::stream::EventAppender sensors(mgr.server("road_sensor"), 0, 1,
                                      xcql::Node::Element("sensors"));
  xcql::stream::EventAppender lights(mgr.server("traffic_light"), 0, 1,
                                     xcql::Node::Element("lights"));
  xcql::DateTime t0 = xcql::DateTime::Parse("2004-06-01T08:00:00").value();
  if (!vehicles.Flush(t0).ok() || !sensors.Flush(t0).ok() ||
      !lights.Flush(t0).ok()) {
    return 1;
  }
  mgr.clock().AdvanceTo(t0);

  // The paper's query: coincide vehicle reports with road-sensor and
  // traffic-light reports in the same instant window; the switch time adds
  // distance/speed seconds to the light's report time.
  const char* query = R"(
    for $v in stream("vehicle")//event,
        $r in stream("road_sensor")//event?[vtFrom($v), vtTo($v)],
        $t in stream("traffic_light")//event?[vtFrom($v), vtTo($v)]
    where distance($v/location, $r/location) < 0.1
      and distance($v/location, $t/location) < 10
      and $v/type = "ambulance"
    return
      <set_traffic_light ID="{$t/id/text()}">
        <status>green</status>
        <time>{vtFrom($t) + PT1S * (distance($v/location, $t/location)
               div $r/speed)}</time>
      </set_traffic_light>)";
  std::printf("continuous query:%s\n\n", query);

  auto qid = mgr.RegisterContinuousQuery(
      query, [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
        for (const auto& item : delta) {
          std::printf("  %s  ->  %s\n", at.ToString().c_str(),
                      xcql::RenderResult({item}).c_str());
        }
      });
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // The traffic light at (10, 0) reports red; road sensor at (2, 0)
  // measures 0.5 units/sec; an ambulance closes in along the x axis while a
  // regular car passes the same spot (and triggers nothing).
  auto tick = [&](int sec) -> bool {
    xcql::DateTime now = t0.Add(xcql::Duration::FromSeconds(sec));
    mgr.clock().AdvanceTo(now);
    return mgr.Tick().ok();
  };
  struct Report {
    int sec;
    const char* type;
    double x;
  };
  const Report reports[] = {
      {0, "car", 2.0}, {10, "ambulance", 2.03}, {20, "ambulance", 6.0}};
  for (const Report& r : reports) {
    xcql::DateTime now = t0.Add(xcql::Duration::FromSeconds(r.sec));
    std::string loc = xcql::StringPrintf("%.2f 0", r.x);
    std::printf("%s at x=%.2f (%s)\n", r.type, r.x, now.ToString().c_str());
    if (!vehicles
             .Append(Fields("event", {{"vehicleID", "V42"},
                                      {"type", r.type},
                                      {"location", loc}}),
                     now)
             .ok() ||
        !vehicles.Flush(now).ok()) {
      return 1;
    }
    if (!sensors
             .Append(Fields("event", {{"sensorID", "S7"},
                                      {"location", "2 0"},
                                      {"speed", "0.5"}}),
                     now)
             .ok() ||
        !sensors.Flush(now).ok()) {
      return 1;
    }
    if (!lights
             .Append(Fields("event", {{"id", "L1"},
                                      {"location", "10 0"},
                                      {"status", "red"}}),
                     now)
             .ok() ||
        !lights.Flush(now).ok()) {
      return 1;
    }
    if (!tick(r.sec)) return 1;
  }
  // Only the ambulance within 0.1 of the road sensor (x=2.03) commands the
  // light; the car has the wrong type, the second ambulance report is too
  // far from the sensor.
  return 0;
}
