// Quickstart: the paper's credit-card running example (§3.1–§6.1).
//
// Creates the "credit" stream from its Tag Structure, publishes the initial
// temporal document as fragments, streams the paper's filler 5 update
// (suspending a charge), and runs XCQL queries — showing the Fig. 3
// translation and the result under each execution method.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "core/stream_manager.h"

namespace {

constexpr const char* kTagStructure = R"(
<stream:structure>
  <tag type="snapshot" id="1" name="creditAccounts">
    <tag type="temporal" id="2" name="account">
      <tag type="snapshot" id="3" name="customer"/>
      <tag type="temporal" id="4" name="creditLimit"/>
      <tag type="event" id="5" name="transaction">
        <tag type="snapshot" id="6" name="vendor"/>
        <tag type="temporal" id="7" name="status"/>
        <tag type="snapshot" id="8" name="amount"/>
      </tag>
    </tag>
  </tag>
</stream:structure>)";

constexpr const char* kInitialDocument = R"(
<creditAccounts>
  <account id="1234" vtFrom="1998-10-10T12:20:22" vtTo="now">
    <customer>John Smith</customer>
    <creditLimit vtFrom="1998-10-10T12:20:22"
                 vtTo="2001-04-23T23:11:08">2000</creditLimit>
    <creditLimit vtFrom="2001-04-23T23:11:08" vtTo="now">5000</creditLimit>
    <transaction id="12345" vtFrom="2003-10-23T12:23:34"
                 vtTo="2003-10-23T12:23:34">
      <vendor>Southlake Pizza</vendor>
      <status vtFrom="2003-10-23T12:24:35" vtTo="now">charged</status>
      <amount>38.20</amount>
    </transaction>
    <transaction id="23456" vtFrom="2003-09-10T14:30:12"
                 vtTo="2003-09-10T14:30:12">
      <vendor>ResAris Contaceu</vendor>
      <status vtFrom="2003-09-10T14:30:13" vtTo="now">charged</status>
      <amount>1200</amount>
    </transaction>
  </account>
</creditAccounts>)";

void Show(xcql::StreamManager& mgr, const char* title, const char* query) {
  std::printf("--- %s ---\n%s\n", title, query);
  for (auto method : {xcql::lang::ExecMethod::kCaQ,
                      xcql::lang::ExecMethod::kQaC,
                      xcql::lang::ExecMethod::kQaCPlus}) {
    xcql::lang::ExecOptions opts;
    opts.method = method;
    auto r = mgr.QueryToString(query, opts);
    std::printf("  [%s] %s\n", xcql::lang::ExecMethodName(method),
                r.ok() ? r.value().c_str() : r.status().ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  xcql::StreamManager mgr;

  auto server = mgr.CreateStream("credit", kTagStructure);
  if (!server.ok()) {
    std::fprintf(stderr, "CreateStream: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  xcql::Status st = mgr.PublishDocumentXml("credit", kInitialDocument);
  if (!st.ok()) {
    std::fprintf(stderr, "PublishDocument: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "Published the initial document as %lld fragments (%lld bytes on the "
      "wire).\n\n",
      static_cast<long long>(server.value()->fragments_sent()),
      static_cast<long long>(server.value()->bytes_sent()));

  // Show the Fig. 3 translation of a path query.
  const char* path_query =
      "stream(\"credit\")/creditAccounts/account/transaction"
      "[status?[now] = \"charged\"]/vendor/text()";
  std::printf("--- Fig. 3 translation of ---\n%s\n", path_query);
  for (auto method :
       {xcql::lang::ExecMethod::kQaC, xcql::lang::ExecMethod::kQaCPlus}) {
    auto t = mgr.Translate(path_query, method);
    std::printf("  [%s]\n  %s\n", xcql::lang::ExecMethodName(method),
                t.ok() ? t.value().c_str() : t.status().ToString().c_str());
  }
  std::printf("\n");

  Show(mgr, "currently charged vendors", path_query);

  Show(mgr,
       "large charges, existential status (matches past versions too)",
       "stream(\"credit\")//transaction[amount > 1000]"
       "[status = \"charged\"]/vendor/text()");

  // Stream the paper's filler 5: the $1200 charge is suspended. An update
  // is just a new filler with the *same* filler id as the status it
  // replaces — find that id from transaction 23456's hole, as the paper's
  // event generator would ("the event generator retains the knowledge of
  // the fragments", §4.2).
  int64_t status_filler_id = -1;
  for (int64_t cand = 0; cand < 16 && status_filler_id < 0; ++cand) {
    auto versions = mgr.store("credit")->GetFillerVersions(cand, false);
    if (!versions.ok() || versions.value().empty()) continue;
    const xcql::Node& n = *versions.value().back();
    if (n.name() == "transaction" && n.FindAttr("id") != nullptr &&
        *n.FindAttr("id") == "23456") {
      xcql::NodePtr hole = n.FirstChildElement("hole");
      if (hole != nullptr) {
        status_filler_id = xcql::frag::HoleId(*hole).value();
      }
    }
  }
  std::printf(">>> streaming update: <status>suspended</status> into filler "
              "%lld (the paper's filler 5)\n\n",
              static_cast<long long>(status_filler_id));
  st = mgr.PublishFragmentXml(
      "credit",
      "<filler id=\"" + std::to_string(status_filler_id) +
          "\" tsid=\"7\" validTime=\"2003-11-01T10:12:56\">"
          "<status>suspended</status></filler>");
  if (!st.ok()) {
    std::fprintf(stderr, "PublishFragment: %s\n", st.ToString().c_str());
    return 1;
  }
  mgr.clock().AdvanceTo(
      xcql::DateTime::Parse("2003-11-02T00:00:00").value());

  Show(mgr, "large charges still charged *now* (filler 5 took effect)",
       "stream(\"credit\")//transaction[amount > 1000]"
       "[status?[now] = \"charged\"]/vendor/text()");

  Show(mgr, "status history of the suspended transaction",
       "for $s in stream(\"credit\")//transaction[@id = \"23456\"]/status "
       "return <was from=\"{string($s/@vtFrom)}\">{$s/text()}</was>");

  Show(mgr, "credit limit history via version projections",
       "for $a in stream(\"credit\")//account return "
       "<limits first=\"{$a/creditLimit#[1]/text()}\" "
       "current=\"{$a/creditLimit#[last]/text()}\"/>");

  return 0;
}
