// XMark demo: generates an auction document (paper §7), fragments it into
// the auction stream, shows the three translations of XMark Q5, and times
// Q1/Q2/Q5 under CaQ, QaC and QaC+ — a miniature of the paper's Figure 4.
//
//   ./build/examples/xmark_demo [scale]     (default scale 0.01)
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "core/stream_manager.h"
#include "xml/serializer.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.01;

  xcql::xmark::XMarkOptions gen_opts;
  gen_opts.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen_opts);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  std::string xml = xcql::SerializeXml(*doc.value());
  std::printf("generated auction document: scale %.3f, %.1f KB\n", scale,
              static_cast<double>(xml.size()) / 1024);

  xcql::StreamManager mgr;
  if (!mgr.CreateStream("auction", xcql::xmark::AuctionTagStructureXml())
           .ok()) {
    return 1;
  }
  xcql::Status st = mgr.PublishDocumentXml("auction", xml);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("fragmented into %lld fillers (%.1f KB on the wire)\n\n",
              static_cast<long long>(mgr.server("auction")->fragments_sent()),
              static_cast<double>(mgr.server("auction")->bytes_sent()) / 1024);

  // Show how Q5 is translated under each method (paper §7's example).
  std::string q5 = xcql::xmark::XMarkQueryText(xcql::xmark::XMarkQueryId::kQ5);
  std::printf("XMark Q5:\n%s\n\n", q5.c_str());
  for (auto method :
       {xcql::lang::ExecMethod::kQaC, xcql::lang::ExecMethod::kQaCPlus}) {
    auto t = mgr.Translate(q5, method);
    std::printf("[%s translation]\n%s\n\n",
                xcql::lang::ExecMethodName(method),
                t.ok() ? t.value().c_str() : t.status().ToString().c_str());
  }

  // Run all three queries under all three methods, timing each.
  std::printf("%-5s %-6s %12s   result\n", "query", "method", "time");
  for (auto q : xcql::xmark::AllXMarkQueries()) {
    for (auto method :
         {xcql::lang::ExecMethod::kQaCPlus, xcql::lang::ExecMethod::kQaC,
          xcql::lang::ExecMethod::kCaQ}) {
      xcql::lang::ExecOptions opts;
      opts.method = method;
      auto start = std::chrono::steady_clock::now();
      auto r = mgr.Query(xcql::xmark::XMarkQueryText(q), opts);
      auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::steady_clock::now() - start)
                         .count();
      std::string shown;
      if (!r.ok()) {
        shown = r.status().ToString();
      } else {
        shown = xcql::RenderResult(r.value());
        if (shown.size() > 60) shown = shown.substr(0, 57) + "...";
      }
      std::printf("%-5s %-6s %9lld us   %s\n",
                  xcql::xmark::XMarkQueryName(q),
                  xcql::lang::ExecMethodName(method),
                  static_cast<long long>(elapsed), shown.c_str());
    }
  }
  return 0;
}
