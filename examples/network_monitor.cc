// Network monitoring (paper §2, example 1): a backbone router streams SYN
// and ACK packets; a continuous query warns about packets that receive no
// acknowledgment within one minute.
//
//   ./build/examples/network_monitor
#include <cstdio>
#include <set>
#include <tuple>

#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

constexpr const char* kPacketTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
    <tag type="snapshot" id="5" name="srcPort"/>
    <tag type="snapshot" id="6" name="destIP"/>
    <tag type="snapshot" id="7" name="destPort"/>
  </tag>
</tag>)";

xcql::NodePtr Packet(int id, const std::string& src, int port,
                     bool is_ack) {
  xcql::NodePtr p = xcql::Node::Element("packet");
  auto text = [](const char* name, const std::string& value) {
    xcql::NodePtr e = xcql::Node::Element(name);
    e->AddChild(xcql::Node::Text(value));
    return e;
  };
  p->AddChild(text("id", std::to_string(id)));
  // ACKs flow back: the SYN's source becomes the ACK's destination.
  p->AddChild(text(is_ack ? "destIP" : "srcIP", src));
  p->AddChild(text(is_ack ? "destPort" : "srcPort", std::to_string(port)));
  return p;
}

}  // namespace

int main() {
  xcql::StreamManager mgr;
  if (!mgr.CreateStream("gsyn", kPacketTs).ok() ||
      !mgr.CreateStream("ack", kPacketTs).ok()) {
    return 1;
  }
  xcql::stream::EventAppender syn(mgr.server("gsyn"), 0, 1,
                                  xcql::Node::Element("packets"));
  xcql::stream::EventAppender ack(mgr.server("ack"), 0, 1,
                                  xcql::Node::Element("packets"));
  xcql::DateTime t0 = xcql::DateTime::Parse("2004-03-15T09:00:00").value();
  if (!syn.Flush(t0).ok() || !ack.Flush(t0).ok()) return 1;
  mgr.clock().AdvanceTo(t0);

  // The paper's query, with the guard that a packet's one-minute deadline
  // has actually passed (a continuous query can only report a missing ACK
  // once the window is over).
  const char* query = R"(
    for $s in stream("gsyn")//packet
    where vtFrom($s) + PT1M <= now
      and not(some $a in stream("ack")//packet
                   ?[vtFrom($s), vtFrom($s) + PT1M]
              satisfies $s/id = $a/id
                and $s/srcIP = $a/destIP
                and $s/srcPort = $a/destPort)
    return <warning>{ $s/id/text() }</warning>)";
  std::printf("continuous query:%s\n\n", query);

  auto qid = mgr.RegisterContinuousQuery(
      query, [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
        for (const auto& item : delta) {
          std::printf("  !! %s  unacknowledged SYN: packet id %s\n",
                      at.ToString().c_str(),
                      xcql::xq::AsNode(item)->StringValue().c_str());
        }
      });
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // Simulate 90 seconds of traffic: each second one SYN; 80% are
  // acknowledged 5–40 seconds later, the rest never.
  struct PendingAck {
    int at_offset;
    int id;
    std::string ip;
    int port;
    bool operator<(const PendingAck& o) const {
      return std::tie(at_offset, id) < std::tie(o.at_offset, o.id);
    }
  };
  xcql::Random rng(2004);
  std::set<PendingAck> pending;
  int next_id = 1000;
  for (int sec = 0; sec <= 180; ++sec) {
    xcql::DateTime now = t0.Add(xcql::Duration::FromSeconds(sec));
    if (sec <= 90) {
      int id = next_id++;
      std::string ip = xcql::StringPrintf("10.0.0.%d",
                                          static_cast<int>(rng.Uniform(32)));
      int port = 40000 + static_cast<int>(rng.Uniform(1000));
      if (!syn.Append(Packet(id, ip, port, false), now).ok()) return 1;
      if (rng.Bernoulli(0.8)) {
        pending.insert(
            {sec + 5 + static_cast<int>(rng.Uniform(36)), id, ip, port});
      } else {
        std::printf("   (packet %d will never be acked)\n", id);
      }
    }
    for (auto it = pending.begin();
         it != pending.end() && it->at_offset <= sec;) {
      if (!ack.Append(Packet(it->id, it->ip, it->port, true), now).ok()) {
        return 1;
      }
      it = pending.erase(it);
    }
    if (!syn.Flush(now).ok() || !ack.Flush(now).ok()) return 1;
    mgr.clock().AdvanceTo(now);
    if (sec % 10 == 0 && !mgr.Tick().ok()) return 1;
  }
  if (!mgr.Tick().ok()) return 1;
  return 0;
}
