// Stock monitor: the paper's introductory scenario — "a server may
// broadcast stock quotes and a client may evaluate a continuous query …
// that checks and warns on rapid changes in selected stock prices within a
// time period" (§1).
//
// Quotes stream as versions of per-symbol temporal `price` fragments; the
// continuous query compares each symbol's current price against its price
// window over the last two minutes and alerts on >5% swings.
//
//   ./build/examples/stock_monitor
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

constexpr const char* kQuotesTs = R"(
<tag type="snapshot" id="1" name="quotes">
  <tag type="temporal" id="2" name="stock">
    <tag type="snapshot" id="3" name="symbol"/>
    <tag type="temporal" id="4" name="price"/>
  </tag>
</tag>)";

// The initial finite document: one stock element per symbol with an
// opening price. Later quotes are new versions of each price filler.
constexpr const char* kOpening = R"(
<quotes>
  <stock id="ACME" vtFrom="2004-04-05T09:30:00" vtTo="now">
    <symbol>ACME</symbol>
    <price vtFrom="2004-04-05T09:30:00" vtTo="now">100.00</price>
  </stock>
  <stock id="GLOBEX" vtFrom="2004-04-05T09:30:00" vtTo="now">
    <symbol>GLOBEX</symbol>
    <price vtFrom="2004-04-05T09:30:00" vtTo="now">250.00</price>
  </stock>
  <stock id="INITECH" vtFrom="2004-04-05T09:30:00" vtTo="now">
    <symbol>INITECH</symbol>
    <price vtFrom="2004-04-05T09:30:00" vtTo="now">40.00</price>
  </stock>
</quotes>)";

}  // namespace

int main() {
  xcql::StreamManager mgr;
  if (!mgr.CreateStream("quotes", kQuotesTs).ok()) return 1;
  if (!mgr.PublishDocumentXml("quotes", kOpening).ok()) return 1;

  // Price filler ids from the deterministic fragmentation:
  // root 0; stocks 1..3; each stock's price follows its stock fragment.
  struct Symbol {
    const char* name;
    int64_t price_filler;
    double price;
  };
  Symbol symbols[] = {{"ACME", 0, 100.0},
                      {"GLOBEX", 0, 250.0},
                      {"INITECH", 0, 40.0}};
  // Identify each symbol's price filler through its stock fragment's hole
  // (the server-side generator "retains the knowledge of the fragments",
  // paper §4.2).
  for (int64_t cand = 0; cand < 16; ++cand) {
    auto versions = mgr.store("quotes")->GetFillerVersions(cand, false);
    if (!versions.ok() || versions.value().empty()) continue;
    const xcql::Node& n = *versions.value().back();
    if (n.name() != "stock") continue;
    const std::string* id = n.FindAttr("id");
    xcql::NodePtr hole;
    for (const auto& c : n.children()) {
      if (c->is_element() && c->name() == "hole") hole = c;
    }
    if (id == nullptr || hole == nullptr) continue;
    for (Symbol& s : symbols) {
      if (s.name == *id) {
        s.price_filler = xcql::frag::HoleId(*hole).value();
      }
    }
  }

  // Alert when a stock's price moved more than 5% within the last two
  // minutes: compare every pair of price versions valid in the window.
  const char* query = R"(
    for $s in stream("quotes")//stock
    let $w := $s/price?[now - PT2M, now]
    where some $a in $w, $b in $w
          satisfies $b/text() - $a/text() > $a/text() * 0.05
             or $a/text() - $b/text() > $a/text() * 0.05
    return <alert symbol="{$s/symbol/text()}"
                  current="{$s/price#[last]/text()}"/>)";
  std::printf("continuous query:%s\n\n", query);

  auto qid = mgr.RegisterContinuousQuery(
      query, [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
        for (const auto& item : delta) {
          std::printf("  !! %s  %s\n", at.ToString().c_str(),
                      xcql::RenderResult({item}).c_str());
        }
      });
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // Simulate the tape: mostly small moves; ACME spikes at 09:34.
  xcql::Random rng(42);
  xcql::DateTime t = xcql::DateTime::Parse("2004-04-05T09:30:00").value();
  for (int tick = 1; tick <= 12; ++tick) {
    t = t.Add(xcql::Duration::FromSeconds(30));
    for (Symbol& s : symbols) {
      double drift = (rng.NextDouble() - 0.5) * 0.01;  // ±0.5%
      if (tick == 8 && std::string(s.name) == "ACME") drift = 0.09;  // spike
      s.price *= 1.0 + drift;
      std::string filler = xcql::StringPrintf(
          "<filler id=\"%lld\" tsid=\"4\" validTime=\"%s\">"
          "<price>%.2f</price></filler>",
          static_cast<long long>(s.price_filler), t.ToString().c_str(),
          s.price);
      if (!mgr.PublishFragmentXml("quotes", filler).ok()) return 1;
    }
    std::printf("%s  ACME %.2f  GLOBEX %.2f  INITECH %.2f\n",
                t.ToString().c_str(), symbols[0].price, symbols[1].price,
                symbols[2].price);
    if (!mgr.Tick().ok()) return 1;
  }
  return 0;
}
