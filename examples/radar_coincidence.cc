// Radar coincidence (paper §2, example 2): two sweeping radars stream
// detection events; a continuous XCQL coincidence query joins the streams
// on frequency within a one-second window and triangulates vehicle
// positions as detections arrive.
//
//   ./build/examples/radar_coincidence
#include <cstdio>

#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

constexpr const char* kRadarTs = R"(
<tag type="snapshot" id="1" name="radar">
  <tag type="event" id="2" name="event">
    <tag type="snapshot" id="3" name="frequency"/>
    <tag type="snapshot" id="4" name="angle"/>
  </tag>
</tag>)";

xcql::NodePtr Detection(int frequency, double angle) {
  xcql::NodePtr ev = xcql::Node::Element("event");
  xcql::NodePtr f = xcql::Node::Element("frequency");
  f->AddChild(xcql::Node::Text(std::to_string(frequency)));
  ev->AddChild(std::move(f));
  xcql::NodePtr a = xcql::Node::Element("angle");
  a->AddChild(xcql::Node::Text(xcql::StringPrintf("%.1f", angle)));
  ev->AddChild(std::move(a));
  return ev;
}

}  // namespace

int main() {
  xcql::StreamManager mgr;
  for (const char* name : {"radar1", "radar2"}) {
    auto s = mgr.CreateStream(name, kRadarTs);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.status().ToString().c_str());
      return 1;
    }
  }

  // Both radars append detection events under their stream roots.
  xcql::stream::EventAppender radar1(mgr.server("radar1"), 0, 1,
                                     xcql::Node::Element("radar"));
  xcql::stream::EventAppender radar2(mgr.server("radar2"), 0, 1,
                                     xcql::Node::Element("radar"));
  xcql::DateTime t = xcql::DateTime::Parse("2004-05-01T10:00:00").value();
  if (!radar1.Flush(t).ok() || !radar2.Flush(t).ok()) return 1;
  mgr.clock().AdvanceTo(t);

  // The paper's coincidence query, verbatim.
  const char* query = R"(
    for $r in stream("radar1")//event,
        $s in stream("radar2")//event
             ?[vtFrom($r) - PT1S, vtTo($r) + PT1S]
    where $r/frequency = $s/frequency
    return <position freq="{$r/frequency/text()}">
             { triangulate($r/angle, $s/angle) }
           </position>)";
  std::printf("continuous query:%s\n\n", query);

  auto qid = mgr.RegisterContinuousQuery(
      query,
      [](const xcql::xq::Sequence& delta, xcql::DateTime at) {
        for (const auto& item : delta) {
          std::printf("  %s  ->  %s\n", at.ToString().c_str(),
                      xcql::RenderResult({item}).c_str());
        }
      });
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    return 1;
  }

  // Simulate: vehicles transmit on a frequency; each radar detects them a
  // moment apart. A distant detection (outside the 1-second window) and a
  // frequency-mismatched one produce no position fix.
  xcql::Random rng(7);
  struct Step {
    int radar;      // 1 or 2
    int frequency;  // MHz
    double angle;   // degrees from the baseline
    int at_offset;  // seconds after t
  };
  const Step steps[] = {
      {1, 101, 45.0, 0},  {2, 101, 45.0, 1},   // coincide: fix at (50,50)
      {1, 99, 30.0, 7},   {2, 99, 60.0, 30},   // 23s apart: no fix
      {1, 105, 50.0, 40}, {2, 106, 42.0, 40},  // frequency mismatch: no fix
      {1, 88, 63.4, 60},  {2, 88, 26.6, 61},   // coincide: fix at (20,40)
  };
  for (const Step& step : steps) {
    xcql::DateTime when =
        t.Add(xcql::Duration::FromSeconds(step.at_offset));
    xcql::stream::EventAppender& radar = step.radar == 1 ? radar1 : radar2;
    if (!radar.Append(Detection(step.frequency, step.angle), when).ok() ||
        !radar.Flush(when).ok()) {
      return 1;
    }
    std::printf("radar%d detects %d MHz at %.1f deg (%s)\n", step.radar,
                step.frequency, step.angle, when.ToString().c_str());
    mgr.clock().AdvanceTo(when);
    if (!mgr.Tick().ok()) return 1;
  }
  return 0;
}
