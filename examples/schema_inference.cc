// Schema inference and wire compression: given only a sample temporal
// document, infer the Tag Structure (which tags are snapshot / temporal /
// event), fragment the document with it, and compare plain vs compressed
// wire sizes (the paper's §4.1 tag-id abbreviation).
//
//   ./build/examples/schema_inference [document.xml]
#include <cstdio>

#include "common/file_util.h"
#include "frag/codec.h"
#include "frag/fragmenter.h"
#include "frag/infer.h"
#include "xml/parser.h"

namespace {

constexpr const char* kSampleDoc = R"(
<fleet>
  <truck id="T1" vtFrom="2004-01-01T06:00:00" vtTo="now">
    <plate>ABX-2041</plate>
    <route vtFrom="2004-01-01T06:00:00"
           vtTo="2004-01-01T12:00:00">north loop</route>
    <route vtFrom="2004-01-01T12:00:00" vtTo="now">harbor run</route>
    <ping vtFrom="2004-01-01T06:15:00" vtTo="2004-01-01T06:15:00">
      <location>12.1 4.7</location><fuel>93</fuel>
    </ping>
    <ping vtFrom="2004-01-01T07:15:00" vtTo="2004-01-01T07:15:00">
      <location>14.9 8.2</location><fuel>88</fuel>
    </ping>
  </truck>
  <truck id="T2" vtFrom="2004-01-01T06:30:00" vtTo="now">
    <plate>QRG-7333</plate>
    <route vtFrom="2004-01-01T06:30:00" vtTo="now">depot shuttle</route>
    <ping vtFrom="2004-01-01T06:45:00" vtTo="2004-01-01T06:45:00">
      <location>2.0 1.5</location><fuel>71</fuel>
    </ping>
  </truck>
</fleet>)";

}  // namespace

int main(int argc, char** argv) {
  std::string xml = kSampleDoc;
  if (argc > 1) {
    auto file = xcql::ReadFileToString(argv[1]);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    xml = file.value();
  }
  auto doc = xcql::ParseXml(xml);
  if (!doc.ok()) {
    std::fprintf(stderr, "parse: %s\n", doc.status().ToString().c_str());
    return 1;
  }

  auto ts = xcql::frag::InferTagStructure(*doc.value());
  if (!ts.ok()) {
    std::fprintf(stderr, "infer: %s\n", ts.status().ToString().c_str());
    return 1;
  }
  std::printf("inferred tag structure:\n%s\n\n", ts.value().ToXml().c_str());

  xcql::frag::Fragmenter fragmenter(&ts.value());
  auto frags = fragmenter.Split(*doc.value());
  if (!frags.ok()) {
    std::fprintf(stderr, "fragment: %s\n",
                 frags.status().ToString().c_str());
    return 1;
  }
  std::printf("fragmented into %zu fillers\n\n", frags.value().size());

  size_t plain = 0, compressed = 0;
  for (const auto& f : frags.value()) {
    std::string p = f.ToXml();
    auto c = xcql::frag::CompressFragment(f, ts.value());
    if (!c.ok()) {
      std::fprintf(stderr, "compress: %s\n", c.status().ToString().c_str());
      return 1;
    }
    plain += p.size();
    compressed += c.value().size();
  }
  std::printf("wire size: %zu bytes plain, %zu bytes with tag-id "
              "compression (%.1f%% saved)\n\n",
              plain, compressed,
              100.0 * (1.0 - static_cast<double>(compressed) /
                                 static_cast<double>(plain)));

  // Show one fragment in both forms.
  for (const auto& f : frags.value()) {
    if (f.content->name() != "ping") continue;
    auto c = xcql::frag::CompressFragment(f, ts.value());
    std::printf("plain:      %s\ncompressed: %s\n", f.ToXml().c_str(),
                c.value().c_str());
    break;
  }
  return 0;
}
