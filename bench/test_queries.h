// Shared corpus for the benchmark binaries: the credit-card schema/view of
// the paper's running example and the paper's queries over it.
#ifndef XCQL_BENCH_TEST_QUERIES_H_
#define XCQL_BENCH_TEST_QUERIES_H_

namespace xcql::bench {

inline constexpr const char* kCreditTagStructure = R"(
<stream:structure>
  <tag type="snapshot" id="1" name="creditAccounts">
    <tag type="temporal" id="2" name="account">
      <tag type="snapshot" id="3" name="customer"/>
      <tag type="temporal" id="4" name="creditLimit"/>
      <tag type="event" id="5" name="transaction">
        <tag type="snapshot" id="6" name="vendor"/>
        <tag type="temporal" id="7" name="status"/>
        <tag type="snapshot" id="8" name="amount"/>
      </tag>
    </tag>
  </tag>
</stream:structure>)";

struct NamedQuery {
  const char* name;
  const char* text;
};

inline constexpr NamedQuery kPaperQueries[] = {
    {"path",
     "stream(\"credit\")/creditAccounts/account/transaction/vendor/text()"},
    {"descendant", "stream(\"credit\")//transaction[amount > 1000]"},
    {"credit-q1",
     R"(for $a in stream("credit")/creditAccounts/account
        where sum($a/transaction?[2003-11-01,2003-12-01]
                  [status = "charged"]/amount) >= $a/creditLimit?[now]
        return <account>{attribute id {$a/@id}, $a/customer}</account>)"},
    {"credit-q2",
     R"(for $a in stream("credit")/creditAccounts/account
        where sum($a/transaction?[now - PT1H, now]
                  [status = "charged"]/amount) >=
              max($a/creditLimit?[now] * 0.9, 5000)
        return <alert><account id={$a/@id}>{$a/customer}</account></alert>)"},
    {"versions",
     "stream(\"credit\")//account/creditLimit#[1,10]"},
};

inline constexpr int kNumPaperQueries =
    sizeof(kPaperQueries) / sizeof(kPaperQueries[0]);

}  // namespace xcql::bench

#endif  // XCQL_BENCH_TEST_QUERIES_H_
