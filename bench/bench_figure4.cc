// Reproduces the paper's Figure 4: run time of XMark queries Q1, Q2 and Q5
// over auction documents at scaling factors 0.0 / 0.05 / 0.1, under the
// three execution methods:
//   CaQ  — construct (materialize the temporal view), then query;
//   QaC  — query the fragments, resolving holes with the linear
//          filler[@id=$fid] scan the paper's translation implies;
//   QaC+ — tsid-indexed access to only the fillers the query needs.
//
// The paper ran a Java translator on the Qizx XQuery processor on a 1.2GHz
// Pentium III; absolute times do not transfer. The reproduction target is
// the *shape*: QaC+ < QaC < CaQ at every size, with the gaps widening as
// documents grow and queries get more selective. Each row prints our
// measured time alongside the paper's reported value, and a final section
// checks the ordering/ratio claims.
//
//   ./build/bench/bench_figure4 [--quick]
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/string_util.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "xcql/executor.h"
#include "xml/serializer.h"
#include "xmark/generator.h"
#include "xmark/queries.h"

namespace {

using xcql::lang::ExecMethod;
using xcql::xmark::XMarkQueryId;

struct PaperRow {
  XMarkQueryId query;
  double scale;
  ExecMethod method;
  double paper_ms;
};

// The paper's Figure 4 (runtime column), keyed by (query, scale, method).
const PaperRow kPaperRows[] = {
    {XMarkQueryId::kQ1, 0.00, ExecMethod::kQaCPlus, 161},
    {XMarkQueryId::kQ1, 0.00, ExecMethod::kQaC, 190},
    {XMarkQueryId::kQ1, 0.00, ExecMethod::kCaQ, 320},
    {XMarkQueryId::kQ1, 0.05, ExecMethod::kQaCPlus, 1723},
    {XMarkQueryId::kQ1, 0.05, ExecMethod::kQaC, 49391},
    {XMarkQueryId::kQ1, 0.05, ExecMethod::kCaQ, 335843},
    {XMarkQueryId::kQ1, 0.10, ExecMethod::kQaCPlus, 3966},
    {XMarkQueryId::kQ1, 0.10, ExecMethod::kQaC, 197354},
    {XMarkQueryId::kQ1, 0.10, ExecMethod::kCaQ, 1799207},
    {XMarkQueryId::kQ2, 0.00, ExecMethod::kQaCPlus, 190},
    {XMarkQueryId::kQ2, 0.00, ExecMethod::kQaC, 200},
    {XMarkQueryId::kQ2, 0.00, ExecMethod::kCaQ, 341},
    {XMarkQueryId::kQ2, 0.05, ExecMethod::kQaCPlus, 4487},
    {XMarkQueryId::kQ2, 0.05, ExecMethod::kQaC, 45385},
    {XMarkQueryId::kQ2, 0.05, ExecMethod::kCaQ, 353248},
    {XMarkQueryId::kQ2, 0.10, ExecMethod::kQaCPlus, 8222},
    {XMarkQueryId::kQ2, 0.10, ExecMethod::kQaC, 199016},
    {XMarkQueryId::kQ2, 0.10, ExecMethod::kCaQ, 1859073},
    {XMarkQueryId::kQ5, 0.00, ExecMethod::kQaCPlus, 160},
    {XMarkQueryId::kQ5, 0.00, ExecMethod::kQaC, 201},
    {XMarkQueryId::kQ5, 0.00, ExecMethod::kCaQ, 310},
    {XMarkQueryId::kQ5, 0.05, ExecMethod::kQaCPlus, 1763},
    {XMarkQueryId::kQ5, 0.05, ExecMethod::kQaC, 19528},
    {XMarkQueryId::kQ5, 0.05, ExecMethod::kCaQ, 335382},
    {XMarkQueryId::kQ5, 0.10, ExecMethod::kQaCPlus, 3095},
    {XMarkQueryId::kQ5, 0.10, ExecMethod::kQaC, 110409},
    {XMarkQueryId::kQ5, 0.10, ExecMethod::kCaQ, 1886022},
};

double PaperMs(XMarkQueryId q, double scale, ExecMethod m) {
  for (const PaperRow& r : kPaperRows) {
    if (r.query == q && r.scale == scale && r.method == m) return r.paper_ms;
  }
  return -1;
}

struct Dataset {
  double scale;
  double plain_kb = 0;
  double fragmented_kb = 0;
  std::unique_ptr<xcql::frag::FragmentStore> store;
};

Dataset LoadDataset(double scale) {
  Dataset ds;
  ds.scale = scale;
  xcql::xmark::XMarkOptions gen;
  gen.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  if (!doc.ok()) {
    std::fprintf(stderr, "generate: %s\n", doc.status().ToString().c_str());
    std::exit(1);
  }
  ds.plain_kb =
      static_cast<double>(xcql::SerializeXml(*doc.value()).size()) / 1024;
  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  auto ts2 = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  xcql::frag::Fragmenter fragmenter(&ts.value());
  auto frags = fragmenter.Split(*doc.value());
  if (!frags.ok()) {
    std::fprintf(stderr, "fragment: %s\n", frags.status().ToString().c_str());
    std::exit(1);
  }
  for (const auto& f : frags.value()) {
    ds.fragmented_kb += static_cast<double>(f.ToXml().size()) / 1024;
  }
  ds.store = std::make_unique<xcql::frag::FragmentStore>(
      std::move(ts2).MoveValue(), "auction");
  if (!ds.store->InsertAll(std::move(frags).MoveValue()).ok()) {
    std::fprintf(stderr, "store insert failed\n");
    std::exit(1);
  }
  return ds;
}

// Times one execution.
std::pair<double, std::string> TimeOnce(xcql::lang::QueryExecutor& exec,
                                        XMarkQueryId q, ExecMethod m) {
  xcql::lang::ExecOptions opts;
  opts.method = m;
  // Figure 4 replicates the paper's cost model: QaC (and CaQ's
  // materialization) pay the linear filler[@id=$fid] scan. The engine
  // default is the hash index for every method, so request it explicitly.
  opts.linear_get_fillers = (m != ExecMethod::kQaCPlus);
  auto start = std::chrono::steady_clock::now();
  auto r = exec.Execute(xcql::xmark::XMarkQueryText(q), opts);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return {ms, std::to_string(r.value().size())};
}

// Warm-up run, then best of up to 5 runs (fewer once a run is slow), like
// the usual benchmarking practice for wall-clock medians of fast queries.
std::pair<double, std::string> TimeBest(xcql::lang::QueryExecutor& exec,
                                        XMarkQueryId q, ExecMethod m) {
  auto warm = TimeOnce(exec, q, m);
  if (warm.first > 2000) return warm;  // one run is representative enough
  int runs = warm.first > 100 ? 2 : 5;
  std::pair<double, std::string> best = warm;
  for (int i = 0; i < runs; ++i) {
    auto r = TimeOnce(exec, q, m);
    if (r.first < best.first) best = r;
  }
  return best;
}

std::string Kb(double kb) {
  if (kb >= 1024) return xcql::StringPrintf("%.1fMb", kb / 1024);
  return xcql::StringPrintf("%.1fKb", kb);
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  std::vector<double> scales = quick ? std::vector<double>{0.0, 0.01}
                                     : std::vector<double>{0.0, 0.05, 0.1};

  std::printf(
      "Figure 4 — XMark Q1/Q2/Q5 under QaC+/QaC/CaQ "
      "(paper values from a 1.2GHz P-III + Qizx; compare shapes, not "
      "magnitudes)\n\n");
  std::printf("%-5s %-9s %-11s %-6s %14s %14s %8s\n", "query", "file",
              "fragmented", "method", "measured", "paper", "results");

  struct Measured {
    XMarkQueryId q;
    double scale;
    ExecMethod m;
    double ms;
  };
  std::vector<Measured> all;

  for (double scale : scales) {
    Dataset ds = LoadDataset(scale);
    xcql::lang::QueryExecutor exec;
    if (!exec.RegisterStream(ds.store.get()).ok()) return 1;
    for (XMarkQueryId q : xcql::xmark::AllXMarkQueries()) {
      for (ExecMethod m :
           {ExecMethod::kQaCPlus, ExecMethod::kQaC, ExecMethod::kCaQ}) {
        auto [ms, digest] = TimeBest(exec, q, m);
        all.push_back({q, scale, m, ms});
        double paper = PaperMs(q, scale, m);
        std::printf("%-5s %-9s %-11s %-6s %12.2fms %12.0fms %8s\n",
                    xcql::xmark::XMarkQueryName(q), Kb(ds.plain_kb).c_str(),
                    Kb(ds.fragmented_kb).c_str(),
                    xcql::lang::ExecMethodName(m), ms,
                    paper, digest.c_str());
      }
    }
    std::printf("\n");
  }

  // Shape checks: for every (query, scale), QaC+ <= QaC <= CaQ, and the
  // CaQ/QaC+ gap grows with document size.
  std::printf("shape checks\n");
  bool ok = true;
  for (double scale : scales) {
    for (XMarkQueryId q : xcql::xmark::AllXMarkQueries()) {
      double t_plus = 0, t_qac = 0, t_caq = 0;
      for (const Measured& m : all) {
        if (m.q != q || m.scale != scale) continue;
        if (m.m == ExecMethod::kQaCPlus) t_plus = m.ms;
        if (m.m == ExecMethod::kQaC) t_qac = m.ms;
        if (m.m == ExecMethod::kCaQ) t_caq = m.ms;
      }
      bool ordered = t_plus <= t_qac && t_qac <= t_caq;
      std::printf("  %s scale %.2f: QaC+ %.2fms <= QaC %.2fms <= CaQ %.2fms "
                  "(QaC/QaC+ %.1fx, CaQ/QaC %.1fx) %s\n",
                  xcql::xmark::XMarkQueryName(q), scale, t_plus, t_qac, t_caq,
                  t_plus > 0 ? t_qac / t_plus : 0,
                  t_qac > 0 ? t_caq / t_qac : 0, ordered ? "OK" : "VIOLATED");
      if (!ordered && scale > 0) ok = false;
    }
  }
  std::printf("\noverall: %s\n", ok ? "shape reproduced" : "SHAPE VIOLATION");
  return ok ? 0 : 1;
}
