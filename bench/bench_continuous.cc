// Ablation C (paper §3): fragments are processed "as and when they arrive,
// without waiting to materialize". This harness drives the continuous
// engine with a growing transaction stream and reports per-tick
// re-evaluation latency and sustained event throughput as the store grows,
// for each execution method.
//
//   ./build/bench/bench_continuous
#include <chrono>
#include <cstdio>
#include <memory>

#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

constexpr const char* kCreditTs = R"(
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="snapshot" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>)";

xcql::NodePtr Transaction(xcql::Random* rng, int id) {
  xcql::NodePtr txn = xcql::Node::Element("transaction");
  txn->SetAttr("id", std::to_string(id));
  xcql::NodePtr vendor = xcql::Node::Element("vendor");
  vendor->AddChild(xcql::Node::Text(rng->Word(8)));
  txn->AddChild(std::move(vendor));
  xcql::NodePtr status = xcql::Node::Element("status");
  status->AddChild(
      xcql::Node::Text(rng->Bernoulli(0.95) ? "charged" : "denied"));
  txn->AddChild(std::move(status));
  xcql::NodePtr amount = xcql::Node::Element("amount");
  amount->AddChild(
      xcql::Node::Text(xcql::StringPrintf("%.2f", rng->NextDouble() * 900)));
  txn->AddChild(std::move(amount));
  return txn;
}

void RunMethod(xcql::lang::ExecMethod method, int batches, int batch_size) {
  xcql::StreamManager mgr;
  if (!mgr.CreateStream("credit", kCreditTs).ok()) std::exit(1);
  if (!mgr.PublishDocumentXml(
              "credit",
              R"(<creditAccounts>
                   <account id="1" vtFrom="2004-01-01T00:00:00" vtTo="now">
                     <customer>Streaming Sam</customer>
                     <creditLimit vtFrom="2004-01-01T00:00:00"
                                  vtTo="now">100000</creditLimit>
                   </account>
                 </creditAccounts>)")
           .ok()) {
    std::exit(1);
  }
  // Hang new transactions off the account fragment. The deterministic
  // fragmentation above yields filler ids root=0, account=1, creditLimit=2;
  // the maintained context payload must keep the account's existing
  // children (customer inline, creditLimit as its hole).
  xcql::NodePtr context = xcql::Node::Element("account");
  context->SetAttr("id", "1");
  xcql::NodePtr customer = xcql::Node::Element("customer");
  customer->AddChild(xcql::Node::Text("Streaming Sam"));
  context->AddChild(std::move(customer));
  context->AddChild(xcql::frag::MakeHole(2, 4));
  xcql::stream::EventAppender appender(mgr.server("credit"), 1, 2,
                                       std::move(context));
  // The paper's fraud-style window query: charges in the last hour.
  auto qid = mgr.RegisterContinuousQuery(
      "sum(stream(\"credit\")//account/transaction?[now - PT1H, now]"
      "[status = \"charged\"]/amount)",
      nullptr, {.method = method, .dedup = false});
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    std::exit(1);
  }

  xcql::Random rng(7);
  xcql::DateTime t = xcql::DateTime::Parse("2004-01-02T00:00:00").value();
  int next_id = 0;
  double total_tick_ms = 0;
  for (int b = 1; b <= batches; ++b) {
    for (int i = 0; i < batch_size; ++i) {
      t = t.Add(xcql::Duration::FromSeconds(2));
      if (!appender.Append(Transaction(&rng, next_id++), t).ok()) {
        std::exit(1);
      }
    }
    if (!appender.Flush(t).ok()) std::exit(1);
    mgr.clock().AdvanceTo(t);
    auto start = std::chrono::steady_clock::now();
    if (!mgr.Tick().ok()) std::exit(1);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    total_tick_ms += ms;
    if (b == 1 || b == batches / 2 || b == batches) {
      std::printf("  %-5s batch %3d: store=%5zu fragments, tick=%8.2fms\n",
                  xcql::lang::ExecMethodName(method), b,
                  mgr.store("credit")->size(), ms);
    }
  }
  double events = static_cast<double>(batches) * batch_size;
  std::printf(
      "  %-5s total: %d events, %.1f events/sec sustained (query "
      "re-evaluation only)\n\n",
      xcql::lang::ExecMethodName(method), batches * batch_size,
      total_tick_ms > 0 ? events / (total_tick_ms / 1000.0) : 0);
}

}  // namespace

// Incremental-mode ablation: the same detection query evaluated over the
// full history each tick versus restricted to fragments that arrived since
// the previous tick (`?[$since, now]`, the engine's watermark mode) — a
// lightweight stand-in for the operator scheduling the paper defers (§8).
void RunIncrementalAblation(int batches, int batch_size) {
  for (bool incremental : {false, true}) {
    xcql::StreamManager mgr;
    if (!mgr.CreateStream("credit", kCreditTs).ok()) std::exit(1);
    if (!mgr.PublishDocumentXml(
                "credit",
                R"(<creditAccounts>
                     <account id="1" vtFrom="2004-01-01T00:00:00" vtTo="now">
                       <customer>Streaming Sam</customer>
                       <creditLimit vtFrom="2004-01-01T00:00:00"
                                    vtTo="now">100000</creditLimit>
                     </account>
                   </creditAccounts>)")
             .ok()) {
      std::exit(1);
    }
    xcql::NodePtr context = xcql::Node::Element("account");
    context->SetAttr("id", "1");
    xcql::NodePtr customer = xcql::Node::Element("customer");
    customer->AddChild(xcql::Node::Text("Streaming Sam"));
    context->AddChild(std::move(customer));
    context->AddChild(xcql::frag::MakeHole(2, 4));
    xcql::stream::EventAppender appender(mgr.server("credit"), 1, 2,
                                         std::move(context));
    const char* query =
        incremental
            ? "for $t in stream(\"credit\")//transaction?[$since, now] "
              "where $t/amount > 800 return string($t/@id)"
            : "for $t in stream(\"credit\")//transaction "
              "where $t/amount > 800 return string($t/@id)";
    int64_t emitted = 0;
    auto qid = mgr.RegisterContinuousQuery(
        query,
        [&](const xcql::xq::Sequence& delta, xcql::DateTime) {
          emitted += static_cast<int64_t>(delta.size());
        },
        {.method = xcql::lang::ExecMethod::kQaCPlus,
         .dedup = true,
         .incremental = incremental});
    if (!qid.ok()) std::exit(1);

    xcql::Random rng(7);
    xcql::DateTime t = xcql::DateTime::Parse("2004-01-02T00:00:00").value();
    int next_id = 0;
    double total_ms = 0;
    double last_ms = 0;
    for (int b = 1; b <= batches; ++b) {
      for (int i = 0; i < batch_size; ++i) {
        t = t.Add(xcql::Duration::FromSeconds(2));
        if (!appender.Append(Transaction(&rng, next_id++), t).ok()) {
          std::exit(1);
        }
      }
      if (!appender.Flush(t).ok()) std::exit(1);
      mgr.clock().AdvanceTo(t);
      auto start = std::chrono::steady_clock::now();
      if (!mgr.Tick().ok()) std::exit(1);
      last_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
      total_ms += last_ms;
    }
    std::printf(
        "  %-11s detection query: %lld hits, total %8.2fms, final tick "
        "%6.2fms\n",
        incremental ? "incremental" : "full", static_cast<long long>(emitted),
        total_ms, last_ms);
  }
  std::printf("\n");
}

int main() {
  std::printf(
      "Continuous engine throughput: 1-hour sliding-window aggregate over "
      "an arriving transaction stream\n\n");
  constexpr int kBatches = 40;
  constexpr int kBatchSize = 25;
  RunMethod(xcql::lang::ExecMethod::kQaCPlus, kBatches, kBatchSize);
  RunMethod(xcql::lang::ExecMethod::kQaC, kBatches, kBatchSize);
  // CaQ re-materializes the whole view every tick — the paper's motivation
  // for processing fragments directly; fewer batches keep it bounded.
  RunMethod(xcql::lang::ExecMethod::kCaQ, kBatches / 4, kBatchSize);

  std::printf(
      "Watermark ablation: full re-evaluation vs ?[$since, now] "
      "incremental scans\n\n");
  RunIncrementalAblation(kBatches, kBatchSize);
  return 0;
}
