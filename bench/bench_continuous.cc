// Ablation C (paper §3): fragments are processed "as and when they arrive,
// without waiting to materialize". This harness drives the continuous
// engine with a growing transaction stream and reports per-tick
// re-evaluation latency and sustained event throughput as the store grows,
// for each execution method — plus the incremental-engine ablations:
// quiescent-stream tick latency (relevance skipping vs the seed's full
// re-evaluation), a mixed workload where only some queries are relevant
// to the arriving fragments, and a compiled-plan ablation (flat operator
// plan vs the tree-walking interpreter on identical workloads).
//
//   ./build/bench/bench_continuous [--quick] [--json]
//
// --quick shrinks every scenario for CI smoke runs; --json replaces the
// tables with one machine-readable object (see BENCH_continuous.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/string_util.h"
#include "core/stream_manager.h"

namespace {

bool g_json = false;

// One benchmark scenario flattened to numeric fields, dumped as JSON when
// --json is set.
struct ScenarioResult {
  std::string name;
  std::vector<std::pair<std::string, double>> nums;
};
std::vector<ScenarioResult> g_results;

void Record(std::string name,
            std::vector<std::pair<std::string, double>> nums) {
  g_results.push_back(ScenarioResult{std::move(name), std::move(nums)});
}

void PrintJson() {
  std::printf("{\n  \"bench\": \"bench_continuous\",\n  \"scenarios\": [\n");
  for (size_t i = 0; i < g_results.size(); ++i) {
    std::printf("    {\"name\": \"%s\"", g_results[i].name.c_str());
    for (const auto& [key, value] : g_results[i].nums) {
      std::printf(", \"%s\": %.6g", key.c_str(), value);
    }
    std::printf("}%s\n", i + 1 < g_results.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr const char* kCreditTs = R"(
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="snapshot" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>)";

constexpr const char* kSeedView = R"(<creditAccounts>
  <account id="1" vtFrom="2004-01-01T00:00:00" vtTo="now">
    <customer>Streaming Sam</customer>
    <creditLimit vtFrom="2004-01-01T00:00:00" vtTo="now">100000</creditLimit>
  </account>
</creditAccounts>)";

xcql::NodePtr Transaction(xcql::Random* rng, int id) {
  xcql::NodePtr txn = xcql::Node::Element("transaction");
  txn->SetAttr("id", std::to_string(id));
  xcql::NodePtr vendor = xcql::Node::Element("vendor");
  vendor->AddChild(xcql::Node::Text(rng->Word(8)));
  txn->AddChild(std::move(vendor));
  xcql::NodePtr status = xcql::Node::Element("status");
  status->AddChild(
      xcql::Node::Text(rng->Bernoulli(0.95) ? "charged" : "denied"));
  txn->AddChild(std::move(status));
  xcql::NodePtr amount = xcql::Node::Element("amount");
  amount->AddChild(
      xcql::Node::Text(xcql::StringPrintf("%.2f", rng->NextDouble() * 900)));
  txn->AddChild(std::move(amount));
  return txn;
}

// A manager with the credit stream, seed view, and an EventAppender
// hanging transactions off the account filler (ids root=0, account=1,
// creditLimit=2 from the deterministic fragmentation of kSeedView).
struct Harness {
  Harness() {
    if (!mgr.CreateStream("credit", kCreditTs).ok()) std::exit(1);
    if (!mgr.PublishDocumentXml("credit", kSeedView).ok()) std::exit(1);
    xcql::NodePtr context = xcql::Node::Element("account");
    context->SetAttr("id", "1");
    xcql::NodePtr customer = xcql::Node::Element("customer");
    customer->AddChild(xcql::Node::Text("Streaming Sam"));
    context->AddChild(std::move(customer));
    context->AddChild(xcql::frag::MakeHole(2, 4));
    appender = std::make_unique<xcql::stream::EventAppender>(
        mgr.server("credit"), 1, 2, std::move(context));
    t = xcql::DateTime::Parse("2004-01-02T00:00:00").value();
  }

  // Publishes n further versions of the creditLimit filler (id 2): a long
  // but quiet temporal history for queries that never touch transactions.
  void AddLimitVersions(int n) {
    for (int i = 0; i < n; ++i) {
      t = t.Add(xcql::Duration::FromSeconds(60));
      xcql::frag::Fragment f;
      f.id = 2;
      f.tsid = 4;
      f.valid_time = t;
      f.content = xcql::Node::Element("creditLimit");
      f.content->AddChild(xcql::Node::Text(std::to_string(50000 + i)));
      if (!mgr.server("credit")->Publish(std::move(f)).ok()) std::exit(1);
    }
    mgr.clock().AdvanceTo(t);
  }

  void AppendEvents(int n) {
    for (int i = 0; i < n; ++i) {
      t = t.Add(xcql::Duration::FromSeconds(2));
      if (!appender->Append(Transaction(&rng, next_id++), t).ok()) {
        std::exit(1);
      }
    }
    if (!appender->Flush(t).ok()) std::exit(1);
    mgr.clock().AdvanceTo(t);
  }

  xcql::StreamManager mgr;
  std::unique_ptr<xcql::stream::EventAppender> appender;
  xcql::Random rng{7};
  xcql::DateTime t;
  int next_id = 0;
};

struct Timed {
  double events = 0;
  double total_tick_ms = 0;
  double throughput = 0;
};

// Times the paper's fraud-style window query (charges in the last hour)
// over an arriving transaction stream. `use_compiled_plan` toggles the
// flat-plan tentpole against the reference tree-walking interpreter;
// `progress` (optional) labels per-batch progress lines.
Timed TimeWindowQuery(xcql::lang::ExecMethod method, bool use_compiled_plan,
                      int batches, int batch_size,
                      const char* progress = nullptr) {
  Harness h;
  auto qid = h.mgr.RegisterContinuousQuery(
      "sum(stream(\"credit\")//account/transaction?[now - PT1H, now]"
      "[status = \"charged\"]/amount)",
      nullptr,
      {.method = method, .dedup = false,
       .use_compiled_plan = use_compiled_plan});
  if (!qid.ok()) {
    std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
    std::exit(1);
  }

  Timed out;
  for (int b = 1; b <= batches; ++b) {
    h.AppendEvents(batch_size);
    auto start = std::chrono::steady_clock::now();
    if (!h.mgr.Tick().ok()) std::exit(1);
    double ms = MsSince(start);
    out.total_tick_ms += ms;
    if (!g_json && progress != nullptr &&
        (b == 1 || b == batches / 2 || b == batches)) {
      std::printf("  %-5s batch %3d: store=%5zu fragments, tick=%8.2fms\n",
                  progress, b, h.mgr.store("credit")->size(), ms);
    }
  }
  out.events = static_cast<double>(batches) * batch_size;
  out.throughput = out.total_tick_ms > 0
                       ? out.events / (out.total_tick_ms / 1000.0)
                       : 0;
  return out;
}

void RunMethod(xcql::lang::ExecMethod method, int batches, int batch_size) {
  Timed r = TimeWindowQuery(method, /*use_compiled_plan=*/true, batches,
                            batch_size, xcql::lang::ExecMethodName(method));
  if (!g_json) {
    std::printf(
        "  %-5s total: %d events, %.1f events/sec sustained (query "
        "re-evaluation only)\n\n",
        xcql::lang::ExecMethodName(method), batches * batch_size,
        r.throughput);
  }
  Record(std::string("throughput_") + xcql::lang::ExecMethodName(method),
         {{"events", r.events},
          {"total_tick_ms", r.total_tick_ms},
          {"avg_tick_ms", r.total_tick_ms / batches},
          {"events_per_sec", r.throughput}});
}

// Quiescent-stream ablation: a populated store, registered data-bounded
// queries, and ticks where nothing arrives. The seed engine re-evaluated
// every query anyway; relevance skipping makes these ticks O(#queries)
// stamp checks.
void RunQuiescent(xcql::stream::TickPolicy policy, const char* name,
                  int warm_events, int ticks) {
  Harness h;
  h.AppendEvents(warm_events);
  const struct {
    const char* text;
    xcql::lang::ExecMethod method;
  } kQueries[] = {
      {"for $t in stream(\"credit\")//transaction where $t/amount > 800 "
       "return string($t/@id)",
       xcql::lang::ExecMethod::kQaCPlus},
      {"for $t in stream(\"credit\")//transaction where $t/amount > 800 "
       "return string($t/@id)",
       xcql::lang::ExecMethod::kQaC},
      {"count(stream(\"credit\")//transaction)",
       xcql::lang::ExecMethod::kCaQ},
      {"for $t in stream(\"credit\")//transaction[status = \"denied\"] "
       "return string($t/@id)",
       xcql::lang::ExecMethod::kQaCPlus},
      {"for $l in stream(\"credit\")//creditLimit return string($l)",
       xcql::lang::ExecMethod::kQaCPlus},
      {"for $t in stream(\"credit\")//transaction where $t/amount > 890 "
       "return string($t/vendor)",
       xcql::lang::ExecMethod::kQaCPlus},
  };
  for (const auto& q : kQueries) {
    auto qid = h.mgr.RegisterContinuousQuery(
        q.text, nullptr,
        {.method = q.method, .dedup = true, .tick_policy = policy});
    if (!qid.ok()) {
      std::fprintf(stderr, "register: %s\n", qid.status().ToString().c_str());
      std::exit(1);
    }
  }
  if (!h.mgr.Tick().ok()) std::exit(1);  // initial evaluation, not timed
  auto& engine = h.mgr.continuous_engine();
  int64_t evals0 = engine.evaluations();
  double total_ms = 0;
  for (int i = 0; i < ticks; ++i) {
    h.mgr.clock().Advance(xcql::Duration::FromSeconds(60));
    auto start = std::chrono::steady_clock::now();
    if (!h.mgr.Tick().ok()) std::exit(1);
    total_ms += MsSince(start);
  }
  double avg = total_ms / ticks;
  if (!g_json) {
    std::printf(
        "  %-9s %3d quiescent ticks: avg %8.4fms/tick, %lld evaluations, "
        "%lld skips\n",
        name, ticks, avg,
        static_cast<long long>(engine.evaluations() - evals0),
        static_cast<long long>(engine.skips()));
  }
  Record(std::string("quiescent_") + name,
         {{"ticks", static_cast<double>(ticks)},
          {"store_fragments", static_cast<double>(h.mgr.store("credit")->size())},
          {"avg_tick_ms", avg},
          {"evaluations", static_cast<double>(engine.evaluations() - evals0)},
          {"skips", static_cast<double>(engine.skips())}});
}

// Mixed workload: transaction events keep arriving, but most registered
// queries watch the (quiet) creditLimit subtree — only the transaction
// queries are due each tick, and the due ones evaluate on the worker pool.
// Returns the average tick latency. `name == nullptr` runs silently
// without recording a scenario (used by the plan ablation below).
double RunMixed(xcql::stream::TickPolicy policy, int workers, const char* name,
                int batches, int batch_size, int limit_versions,
                bool use_compiled_plan = true) {
  Harness h;
  h.AddLimitVersions(limit_versions);
  const char* kRelevant[] = {
      "for $t in stream(\"credit\")//transaction where $t/amount > 800 "
      "return string($t/@id)",
      "for $t in stream(\"credit\")//transaction[status = \"denied\"] "
      "return string($t/@id)",
  };
  const char* kIrrelevant[] = {
      "for $l in stream(\"credit\")//creditLimit return string($l)",
      "for $l in stream(\"credit\")//creditLimit where $l > 50000 "
      "return string($l)",
      "count(stream(\"credit\")//creditLimit)",
      "for $l in stream(\"credit\")//creditLimit where $l > 99999 "
      "return string($l)",
  };
  for (const char* text : kRelevant) {
    if (!h.mgr
             .RegisterContinuousQuery(
                 text, nullptr,
                 {.method = xcql::lang::ExecMethod::kQaCPlus,
                  .dedup = true,
                  .tick_policy = policy,
                  .use_compiled_plan = use_compiled_plan})
             .ok()) {
      std::exit(1);
    }
  }
  for (const char* text : kIrrelevant) {
    if (!h.mgr
             .RegisterContinuousQuery(
                 text, nullptr,
                 {.method = xcql::lang::ExecMethod::kQaCPlus,
                  .dedup = true,
                  .tick_policy = policy,
                  .use_compiled_plan = use_compiled_plan})
             .ok()) {
      std::exit(1);
    }
  }
  auto& engine = h.mgr.continuous_engine();
  engine.set_workers(workers);
  double total_ms = 0;
  for (int b = 0; b < batches; ++b) {
    h.AppendEvents(batch_size);
    auto start = std::chrono::steady_clock::now();
    if (!h.mgr.Tick().ok()) std::exit(1);
    total_ms += MsSince(start);
  }
  double avg = total_ms / batches;
  if (name == nullptr) return avg;
  if (!g_json) {
    std::printf(
        "  %-9s %3d ticks x %d events: avg %8.3fms/tick, %lld evaluations, "
        "%lld skips, %d workers\n",
        name, batches, batch_size, avg,
        static_cast<long long>(engine.evaluations()),
        static_cast<long long>(engine.skips()), engine.workers());
  }
  Record(std::string("mixed_") + name,
         {{"ticks", static_cast<double>(batches)},
          {"events", static_cast<double>(batches) * batch_size},
          {"avg_tick_ms", avg},
          {"evaluations", static_cast<double>(engine.evaluations())},
          {"skips", static_cast<double>(engine.skips())},
          {"workers", static_cast<double>(workers)}});
  return avg;
}

// Tentpole ablation: every workload above now runs through the compiled
// flat-operator plan by default; this section re-times each execution
// method (and the mixed workload) with `use_compiled_plan` forced off, so
// the plan's contribution is separable from the cost-model change.
void RunPlanAblation(int batches, int batch_size, int limit_versions) {
  const struct {
    xcql::lang::ExecMethod method;
    int batches;
  } kMethods[] = {
      {xcql::lang::ExecMethod::kQaCPlus, batches},
      {xcql::lang::ExecMethod::kQaC, batches},
      // CaQ re-materializes the view every tick; keep it bounded as above.
      {xcql::lang::ExecMethod::kCaQ, std::max(batches / 4, 2)},
  };
  for (const auto& m : kMethods) {
    Timed compiled =
        TimeWindowQuery(m.method, /*use_compiled_plan=*/true, m.batches,
                        batch_size);
    Timed interpreted =
        TimeWindowQuery(m.method, /*use_compiled_plan=*/false, m.batches,
                        batch_size);
    double speedup = interpreted.throughput > 0
                         ? compiled.throughput / interpreted.throughput
                         : 0;
    if (!g_json) {
      std::printf(
          "  %-5s compiled %8.1f ev/s vs interpreted %8.1f ev/s "
          "(%.2fx)\n",
          xcql::lang::ExecMethodName(m.method), compiled.throughput,
          interpreted.throughput, speedup);
    }
    Record(std::string("compiled_vs_interpreted_") +
               xcql::lang::ExecMethodName(m.method),
           {{"events", compiled.events},
            {"compiled_events_per_sec", compiled.throughput},
            {"interpreted_events_per_sec", interpreted.throughput},
            {"speedup", speedup}});
  }
  double compiled_avg =
      RunMixed(xcql::stream::TickPolicy::kAuto, 3, nullptr, batches,
               batch_size, limit_versions, /*use_compiled_plan=*/true);
  double interpreted_avg =
      RunMixed(xcql::stream::TickPolicy::kAuto, 3, nullptr, batches,
               batch_size, limit_versions, /*use_compiled_plan=*/false);
  double speedup =
      compiled_avg > 0 ? interpreted_avg / compiled_avg : 0;
  if (!g_json) {
    std::printf(
        "  mixed compiled %8.3fms/tick vs interpreted %8.3fms/tick "
        "(%.2fx)\n\n",
        compiled_avg, interpreted_avg, speedup);
  }
  Record("compiled_vs_interpreted_mixed",
         {{"ticks", static_cast<double>(batches)},
          {"compiled_avg_tick_ms", compiled_avg},
          {"interpreted_avg_tick_ms", interpreted_avg},
          {"speedup", speedup}});
}

// Incremental-mode ablation: the same detection query evaluated over the
// full history each tick versus restricted to fragments that arrived since
// the previous tick (`?[$since, now]`, the engine's watermark mode) — a
// lightweight stand-in for the operator scheduling the paper defers (§8).
void RunIncrementalAblation(int batches, int batch_size) {
  for (bool incremental : {false, true}) {
    Harness h;
    const char* query =
        incremental
            ? "for $t in stream(\"credit\")//transaction?[$since, now] "
              "where $t/amount > 800 return string($t/@id)"
            : "for $t in stream(\"credit\")//transaction "
              "where $t/amount > 800 return string($t/@id)";
    int64_t emitted = 0;
    auto qid = h.mgr.RegisterContinuousQuery(
        query,
        [&](const xcql::xq::Sequence& delta, xcql::DateTime) {
          emitted += static_cast<int64_t>(delta.size());
        },
        {.method = xcql::lang::ExecMethod::kQaCPlus,
         .dedup = true,
         .incremental = incremental});
    if (!qid.ok()) std::exit(1);

    double total_ms = 0;
    double last_ms = 0;
    for (int b = 1; b <= batches; ++b) {
      h.AppendEvents(batch_size);
      auto start = std::chrono::steady_clock::now();
      if (!h.mgr.Tick().ok()) std::exit(1);
      last_ms = MsSince(start);
      total_ms += last_ms;
    }
    if (!g_json) {
      std::printf(
          "  %-11s detection query: %lld hits, total %8.2fms, final tick "
          "%6.2fms\n",
          incremental ? "incremental" : "full",
          static_cast<long long>(emitted), total_ms, last_ms);
    }
    Record(incremental ? "watermark_incremental" : "watermark_full",
           {{"hits", static_cast<double>(emitted)},
            {"total_ms", total_ms},
            {"final_tick_ms", last_ms}});
  }
  if (!g_json) std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) g_json = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int kBatches = quick ? 8 : 40;
  const int kBatchSize = quick ? 10 : 25;
  const int kQuiescentWarm = quick ? 100 : 500;
  const int kQuiescentTicks = quick ? 10 : 50;

  if (!g_json) {
    std::printf(
        "Continuous engine throughput: 1-hour sliding-window aggregate over "
        "an arriving transaction stream\n\n");
  }
  RunMethod(xcql::lang::ExecMethod::kQaCPlus, kBatches, kBatchSize);
  RunMethod(xcql::lang::ExecMethod::kQaC, kBatches, kBatchSize);
  // CaQ re-materializes the whole view every tick — the paper's motivation
  // for processing fragments directly; fewer batches keep it bounded.
  RunMethod(xcql::lang::ExecMethod::kCaQ, std::max(kBatches / 4, 2),
            kBatchSize);

  if (!g_json) {
    std::printf(
        "Quiescent stream: %d registered queries, no new fragments (seed = "
        "re-evaluate every tick, skipping = relevance stamps)\n\n",
        6);
  }
  RunQuiescent(xcql::stream::TickPolicy::kAlways, "seed", kQuiescentWarm,
               kQuiescentTicks);
  RunQuiescent(xcql::stream::TickPolicy::kAuto, "skipping", kQuiescentWarm,
               kQuiescentTicks);
  if (!g_json) std::printf("\n");

  if (!g_json) {
    std::printf(
        "Mixed workload: 2 transaction queries + 4 queries over a long but "
        "quiet creditLimit history, transaction events arriving every "
        "tick\n\n");
  }
  const int kLimitVersions = quick ? 60 : 400;
  RunMixed(xcql::stream::TickPolicy::kAlways, 0, "seed", kBatches, kBatchSize,
           kLimitVersions);
  RunMixed(xcql::stream::TickPolicy::kAuto, 3, "optimized", kBatches,
           kBatchSize, kLimitVersions);
  if (!g_json) std::printf("\n");

  if (!g_json) {
    std::printf(
        "Compiled-plan ablation: same workloads with the flat operator "
        "plan (default) vs the tree-walking interpreter\n\n");
  }
  RunPlanAblation(kBatches, kBatchSize, kLimitVersions);

  if (!g_json) {
    std::printf(
        "Watermark ablation: full re-evaluation vs ?[$since, now] "
        "incremental scans\n\n");
  }
  RunIncrementalAblation(kBatches, kBatchSize);

  if (g_json) PrintJson();
  return 0;
}
