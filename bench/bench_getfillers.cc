// Ablation A (paper §8 future work): hole/filler resolution as a join.
// The paper's QaC translation implies a linear filler[@id=$fid] scan per
// get_fillers call; the paper conjectures it could be optimized by turning
// the hole-id → filler-id matching into a join. This benchmark measures
// the three access paths of the fragment store as the stream grows:
//   GetFillers/linear  — the paper-faithful scan (O(total fragments))
//   GetFillers/indexed — hash index on filler id (the conjectured join)
//   TsidScan           — the QaC+ index over all fillers of one tag
#include <benchmark/benchmark.h>

#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "xmark/generator.h"

namespace {

using xcql::frag::FragmentStore;

// One store per scale, shared across benchmark registrations.
FragmentStore* StoreForScale(double scale) {
  static std::map<double, std::unique_ptr<FragmentStore>>* stores =
      new std::map<double, std::unique_ptr<FragmentStore>>();
  auto it = stores->find(scale);
  if (it != stores->end()) return it->second.get();
  xcql::xmark::XMarkOptions gen;
  gen.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  auto ts2 = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  xcql::frag::Fragmenter fragmenter(&ts.value());
  auto frags = fragmenter.Split(*doc.value());
  auto store = std::make_unique<FragmentStore>(std::move(ts2).MoveValue(),
                                               "auction");
  (void)store->InsertAll(std::move(frags).MoveValue());
  FragmentStore* raw = store.get();
  (*stores)[scale] = std::move(store);
  return raw;
}

double ScaleForState(const benchmark::State& state) {
  return static_cast<double>(state.range(0)) / 1000.0;
}

void BM_GetFillersLinear(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  // Resolve a mid-stream filler id (a person), the paper's common case.
  int64_t id = static_cast<int64_t>(store->size()) / 2;
  for (auto _ : state) {
    auto versions = store->GetFillerVersions(id, /*linear=*/true);
    benchmark::DoNotOptimize(versions);
  }
  state.counters["fragments"] = static_cast<double>(store->size());
}

void BM_GetFillersIndexed(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  int64_t id = static_cast<int64_t>(store->size()) / 2;
  for (auto _ : state) {
    auto versions = store->GetFillerVersions(id, /*linear=*/false);
    benchmark::DoNotOptimize(versions);
  }
  state.counters["fragments"] = static_cast<double>(store->size());
}

void BM_TsidScanClosedAuctions(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  for (auto _ : state) {
    auto wrappers = store->GetFillersByTsid(603);
    benchmark::DoNotOptimize(wrappers);
  }
  state.counters["fillers"] =
      static_cast<double>(store->CountIdsWithTsid(603));
}

}  // namespace

// range(0) is the scale ×1000: 0, 10, 50 → scales 0.0, 0.01, 0.05.
BENCHMARK(BM_GetFillersLinear)->Arg(0)->Arg(10)->Arg(50);
BENCHMARK(BM_GetFillersIndexed)->Arg(0)->Arg(10)->Arg(50);
BENCHMARK(BM_TsidScanClosedAuctions)->Arg(0)->Arg(10)->Arg(50);

BENCHMARK_MAIN();
