// Ablation B (paper §1): "it is essential that a server does a reasonable
// fragmentation of data to accommodate future updates with minimal
// overhead". The same credit-card data is fragmented at three
// granularities; for each we report the stream layout, the wire cost of
// one status update (= the size of the fragment that must be
// retransmitted, since a fragment is the unit of update), and query time.
//
//   coarse — only account fragments        (update ⇒ resend the account)
//   medium — account + transaction         (update ⇒ resend the transaction)
//   fine   — the paper's §4.1 layout       (update ⇒ resend just the status)
//
//   ./build/bench/bench_granularity
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/string_util.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "xcql/executor.h"
#include "xml/serializer.h"

namespace {

using xcql::frag::FragmentStore;

struct Granularity {
  const char* name;
  const char* tag_structure;
};

const Granularity kGranularities[] = {
    {"coarse", R"(
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="snapshot" id="4" name="creditLimit"/>
    <tag type="snapshot" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="snapshot" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>)"},
    {"medium", R"(
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="snapshot" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="snapshot" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>)"},
    {"fine", R"(
<tag type="snapshot" id="1" name="creditAccounts">
  <tag type="temporal" id="2" name="account">
    <tag type="snapshot" id="3" name="customer"/>
    <tag type="temporal" id="4" name="creditLimit"/>
    <tag type="event" id="5" name="transaction">
      <tag type="snapshot" id="6" name="vendor"/>
      <tag type="temporal" id="7" name="status"/>
      <tag type="snapshot" id="8" name="amount"/>
    </tag>
  </tag>
</tag>)"},
};

// Builds a synthetic credit document: `accounts` accounts with ~20
// transactions each, single status per transaction (comparable under all
// three granularities).
xcql::NodePtr BuildDoc(int accounts) {
  xcql::Random rng(99);
  xcql::NodePtr root = xcql::Node::Element("creditAccounts");
  int64_t t = 1000000;
  auto time = [&]() {
    t += 60 + static_cast<int64_t>(rng.Uniform(2000));
    return xcql::DateTime(t).ToString();
  };
  for (int a = 0; a < accounts; ++a) {
    xcql::NodePtr account = xcql::Node::Element("account");
    account->SetAttr("id", std::to_string(1000 + a));
    std::string opened = time();
    account->SetAttr("vtFrom", opened);
    account->SetAttr("vtTo", "now");
    xcql::NodePtr customer = xcql::Node::Element("customer");
    customer->AddChild(xcql::Node::Text(rng.Word(6) + " " + rng.Word(8)));
    account->AddChild(std::move(customer));
    xcql::NodePtr limit = xcql::Node::Element("creditLimit");
    limit->SetAttr("vtFrom", opened);
    limit->SetAttr("vtTo", "now");
    limit->AddChild(
        xcql::Node::Text(std::to_string(1000 * rng.UniformRange(1, 9))));
    account->AddChild(std::move(limit));
    for (int k = 0; k < 20; ++k) {
      xcql::NodePtr txn = xcql::Node::Element("transaction");
      txn->SetAttr("id", std::to_string(a * 1000 + k));
      std::string when = time();
      txn->SetAttr("vtFrom", when);
      txn->SetAttr("vtTo", when);
      xcql::NodePtr vendor = xcql::Node::Element("vendor");
      vendor->AddChild(xcql::Node::Text(rng.Word(8) + " " + rng.Word(5)));
      txn->AddChild(std::move(vendor));
      xcql::NodePtr status = xcql::Node::Element("status");
      status->SetAttr("vtFrom", when);
      status->SetAttr("vtTo", "now");
      status->AddChild(
          xcql::Node::Text(rng.Bernoulli(0.9) ? "charged" : "denied"));
      txn->AddChild(std::move(status));
      xcql::NodePtr amount = xcql::Node::Element("amount");
      amount->AddChild(xcql::Node::Text(
          xcql::StringPrintf("%.2f", rng.NextDouble() * 2000)));
      txn->AddChild(std::move(amount));
      account->AddChild(std::move(txn));
    }
    root->AddChild(std::move(account));
  }
  return root;
}

// Strips vtFrom/vtTo below fragmentation level: snapshot elements must not
// carry lifespan attributes (their type has no temporal dimension).
void StripSnapshotLifespans(xcql::Node* node,
                            const xcql::frag::TagNode* tag) {
  for (const xcql::NodePtr& c : node->children()) {
    if (!c->is_element()) continue;
    const xcql::frag::TagNode* ctag = tag->Child(c->name());
    if (ctag == nullptr) continue;
    if (!ctag->fragmented()) {
      c->RemoveAttr("vtFrom");
      c->RemoveAttr("vtTo");
    }
    StripSnapshotLifespans(c.get(), ctag);
  }
}

}  // namespace

int main() {
  constexpr int kAccounts = 200;
  std::printf(
      "Granularity ablation: %d accounts x 20 transactions, one status "
      "update\n\n",
      kAccounts);
  std::printf("%-7s %10s %12s %16s %18s %14s\n", "layout", "fragments",
              "stream(KB)", "update-cost(B)", "query(QaC+ ms)",
              "query(QaC ms)");

  for (const Granularity& g : kGranularities) {
    auto ts_for_strip = xcql::frag::TagStructure::Parse(g.tag_structure);
    auto ts_for_frag = xcql::frag::TagStructure::Parse(g.tag_structure);
    auto ts_for_store = xcql::frag::TagStructure::Parse(g.tag_structure);
    if (!ts_for_frag.ok() || !ts_for_store.ok() || !ts_for_strip.ok()) {
      std::fprintf(stderr, "%s\n", ts_for_frag.status().ToString().c_str());
      return 1;
    }
    xcql::NodePtr doc = BuildDoc(kAccounts);
    StripSnapshotLifespans(doc.get(), ts_for_strip.value().root());

    xcql::frag::Fragmenter fragmenter(&ts_for_frag.value());
    auto frags = fragmenter.Split(*doc);
    if (!frags.ok()) {
      std::fprintf(stderr, "%s\n", frags.status().ToString().c_str());
      return 1;
    }
    double stream_kb = 0;
    // The wire cost of updating one status: the smallest retransmittable
    // fragment containing a status element (a fragment is the unit of
    // update — one cannot replace part of a filler).
    size_t update_bytes = 0;
    for (const auto& f : frags.value()) {
      std::string xml = f.ToXml();
      stream_kb += static_cast<double>(xml.size()) / 1024;
      bool has_status = xml.find("<status") != std::string::npos ||
                        xml.find("status>") != std::string::npos;
      if (has_status && (update_bytes == 0 || xml.size() < update_bytes)) {
        update_bytes = xml.size();
      }
    }
    size_t nfrags = frags.value().size();

    auto store = std::make_unique<FragmentStore>(
        std::move(ts_for_store).MoveValue(), "credit");
    if (!store->InsertAll(std::move(frags).MoveValue()).ok()) return 1;
    xcql::lang::QueryExecutor exec;
    if (!exec.RegisterStream(store.get()).ok()) return 1;

    const char* query =
        "count(stream(\"credit\")//transaction[amount > 1500]"
        "[status = \"charged\"])";
    auto time_query = [&](xcql::lang::ExecMethod m) {
      xcql::lang::ExecOptions opts;
      opts.method = m;
      // This benchmark studies how granularity moves the paper's QaC cost,
      // which comes from the linear filler scan — keep the paper cost model
      // now that the engine defaults to indexed lookup.
      opts.linear_get_fillers = (m != xcql::lang::ExecMethod::kQaCPlus);
      double best = 1e18;
      for (int run = 0; run < 3; ++run) {
        auto start = std::chrono::steady_clock::now();
        auto r = exec.Execute(query, opts);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
        if (!r.ok()) {
          std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
          std::exit(1);
        }
        if (run > 0 || ms > 2000) best = std::min(best, ms);
        if (ms > 2000) break;  // slow runs are representative already
      }
      return best;
    };
    double qacp_ms = time_query(xcql::lang::ExecMethod::kQaCPlus);
    double qac_ms = time_query(xcql::lang::ExecMethod::kQaC);

    std::printf("%-7s %10zu %12.1f %16zu %18.2f %14.2f\n", g.name, nfrags,
                stream_kb, update_bytes, qacp_ms, qac_ms);
  }
  std::printf(
      "\nFiner fragmentation shrinks the unit of update by orders of "
      "magnitude at a modest stream-size overhead (the paper's §1 "
      "trade-off).\n");
  return 0;
}
