// Ablation E (paper §5/§5.1): cost of reconstructing the full temporal
// view from fragments — the first stage of every CaQ execution — comparing
// the generic recursive temporalize with the paper-faithful linear filler
// lookup, the hash-indexed variant, and the schema-driven reconstruction
// generated from the Tag Structure.
#include <benchmark/benchmark.h>

#include "frag/assembler.h"
#include "frag/fragment_store.h"
#include "frag/fragmenter.h"
#include "xmark/generator.h"

namespace {

using xcql::frag::FragmentStore;

FragmentStore* StoreForScale(double scale) {
  static std::map<double, std::unique_ptr<FragmentStore>>* stores =
      new std::map<double, std::unique_ptr<FragmentStore>>();
  auto it = stores->find(scale);
  if (it != stores->end()) return it->second.get();
  xcql::xmark::XMarkOptions gen;
  gen.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  auto ts2 = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  xcql::frag::Fragmenter fragmenter(&ts.value());
  auto frags = fragmenter.Split(*doc.value());
  auto store = std::make_unique<FragmentStore>(std::move(ts2).MoveValue(),
                                               "auction");
  (void)store->InsertAll(std::move(frags).MoveValue());
  FragmentStore* raw = store.get();
  (*stores)[scale] = std::move(store);
  return raw;
}

double ScaleForState(const benchmark::State& state) {
  return static_cast<double>(state.range(0)) / 1000.0;
}

void BM_TemporalizeLinear(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  for (auto _ : state) {
    auto view = xcql::frag::Temporalize(*store, /*linear_scan=*/true);
    benchmark::DoNotOptimize(view);
  }
  state.counters["fragments"] = static_cast<double>(store->size());
}

void BM_TemporalizeIndexed(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  for (auto _ : state) {
    auto view = xcql::frag::Temporalize(*store, /*linear_scan=*/false);
    benchmark::DoNotOptimize(view);
  }
  state.counters["fragments"] = static_cast<double>(store->size());
}

void BM_TemporalizeSchemaDriven(benchmark::State& state) {
  FragmentStore* store = StoreForScale(ScaleForState(state));
  for (auto _ : state) {
    auto view = xcql::frag::TemporalizeSchemaDriven(*store);
    benchmark::DoNotOptimize(view);
  }
  state.counters["fragments"] = static_cast<double>(store->size());
}

}  // namespace

// range(0) is the scale ×1000. The linear variant is quadratic in stream
// size, so it stops one scale earlier.
BENCHMARK(BM_TemporalizeLinear)->Arg(0)->Arg(10)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemporalizeIndexed)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TemporalizeSchemaDriven)
    ->Arg(0)
    ->Arg(10)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
