// Ablation D: XCQL parse + Fig. 3 translation overhead. The translation is
// performed once per registered query, so it must be negligible next to
// execution; this benchmark measures parse and translate cost for the
// paper's queries under each method.
#include <benchmark/benchmark.h>

#include "test_queries.h"
#include "xcql/translator.h"
#include "xq/parser.h"

namespace {

const xcql::frag::TagStructure& CreditTs() {
  static xcql::frag::TagStructure* ts = [] {
    auto r = xcql::frag::TagStructure::Parse(xcql::bench::kCreditTagStructure);
    return new xcql::frag::TagStructure(std::move(r).MoveValue());
  }();
  return *ts;
}

void BM_ParseQuery(benchmark::State& state) {
  const char* query =
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].text;
  for (auto _ : state) {
    auto prog = xcql::xq::ParseQuery(query);
    benchmark::DoNotOptimize(prog);
  }
  state.SetLabel(
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].name);
}

void BM_TranslateQaC(benchmark::State& state) {
  const char* query =
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].text;
  auto prog = xcql::xq::ParseQuery(query);
  std::map<std::string, const xcql::frag::TagStructure*> schemas;
  schemas["credit"] = &CreditTs();
  xcql::lang::Translator tr(schemas, xcql::lang::ExecMethod::kQaC);
  for (auto _ : state) {
    auto out = tr.Translate(prog.value());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].name);
}

void BM_TranslateQaCPlus(benchmark::State& state) {
  const char* query =
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].text;
  auto prog = xcql::xq::ParseQuery(query);
  std::map<std::string, const xcql::frag::TagStructure*> schemas;
  schemas["credit"] = &CreditTs();
  xcql::lang::Translator tr(schemas, xcql::lang::ExecMethod::kQaCPlus);
  for (auto _ : state) {
    auto out = tr.Translate(prog.value());
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(
      xcql::bench::kPaperQueries[static_cast<size_t>(state.range(0))].name);
}

}  // namespace

BENCHMARK(BM_ParseQuery)->DenseRange(0, xcql::bench::kNumPaperQueries - 1);
BENCHMARK(BM_TranslateQaC)->DenseRange(0, xcql::bench::kNumPaperQueries - 1);
BENCHMARK(BM_TranslateQaCPlus)
    ->DenseRange(0, xcql::bench::kNumPaperQueries - 1);

BENCHMARK_MAIN();
