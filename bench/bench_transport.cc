// Transport ablation: throughput and wire cost of the networked fragment
// transport (src/net/) over loopback TCP, plain XML vs §4.1 tag-compressed
// frames, across three XMark document granularities. Each iteration
// publishes a batch of update fragments through a StreamServer fronted by
// a FragmentServer and waits until a FragmentSubscriber has decoded every
// one — i.e. it measures the full pipeline: encode, frame, TCP, deframe,
// decode.
//
//   ./build/bench/bench_transport [--benchmark_format=json]
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "common/random.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "stream/transport.h"
#include "xmark/generator.h"

namespace {

using namespace std::chrono_literals;

void BM_Transport(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  const bool compressed = state.range(1) != 0;

  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  if (!ts.ok()) {
    state.SkipWithError(ts.status().ToString().c_str());
    return;
  }
  xcql::stream::StreamServer source("auction", std::move(ts).MoveValue());
  if (compressed) source.EnableWireCompression();
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 2048;
  xcql::net::FragmentServer server(&source, server_opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.port = server.port();
  sub_opts.stream = "auction";
  sub_opts.codec = compressed ? xcql::frag::WireCodec::kTagCompressed
                              : xcql::frag::WireCodec::kPlainXml;
  xcql::net::FragmentSubscriber sub(sub_opts);
  if (!sub.Start().ok() || !sub.WaitConnected(10s)) {
    state.SkipWithError("subscriber failed to connect");
    return;
  }

  xcql::xmark::XMarkOptions gen;
  gen.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  if (!doc.ok() || !source.PublishDocument(*doc.value()).ok()) {
    state.SkipWithError("document publish failed");
    return;
  }
  const int64_t doc_frags = source.history_size();
  sub.WaitForSeq(server.next_seq() - 1, 60s);

  // Updates replace random fragmented fillers of the initial document.
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < doc_frags; ++i) {
    const auto* tag =
        source.tag_structure().FindById(source.history_at(i).tsid);
    if (tag != nullptr && tag->fragmented()) candidates.push_back(i);
  }
  xcql::Random rng(5);
  int64_t t = source.history_at(doc_frags - 1).valid_time.seconds();
  int rev = 0;

  constexpr int kBatch = 200;
  std::vector<xcql::frag::Fragment> sink;
  for (auto _ : state) {
    const int64_t target = server.next_seq() + kBatch - 1;
    for (int k = 0; k < kBatch; ++k) {
      const auto& base = source.history_at(static_cast<int64_t>(
          candidates[rng.Uniform(candidates.size())]));
      xcql::frag::Fragment f;
      f.id = base.id;
      f.tsid = base.tsid;
      t += 1 + static_cast<int64_t>(rng.Uniform(30));
      f.valid_time = xcql::DateTime(t);
      f.content = base.content->Clone();
      f.content->SetAttr("rev", std::to_string(++rev));
      if (!source.Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    if (!sub.WaitForSeq(target, 60s)) {
      state.SkipWithError("subscriber fell behind");
      return;
    }
    sink.clear();
    sub.Drain(&sink);
  }

  state.SetItemsProcessed(state.iterations() * kBatch);
  auto m = sub.metrics();
  if (m.fragments_in > 0) {
    state.counters["wire_bytes_per_frag"] =
        static_cast<double>(m.bytes_in) /
        static_cast<double>(m.fragments_in);
  }
  state.counters["doc_fragments"] = static_cast<double>(doc_frags);
  sub.Stop();
  server.Stop();
}

}  // namespace

// scale_permille: XMark scale factor x1000 (0 = minimal document);
// compressed: 0 = plain XML payloads, 1 = §4.1 tag-compressed payloads.
// Fixed iteration count keeps the replayable frame log (which grows with
// every published update) bounded.
BENCHMARK(BM_Transport)
    ->ArgNames({"scale_permille", "compressed"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(8);

BENCHMARK_MAIN();
