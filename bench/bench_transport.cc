// Transport ablation: throughput and wire cost of the networked fragment
// transport (src/net/) over loopback TCP, plain XML vs §4.1 tag-compressed
// frames, across three XMark document granularities. Each iteration
// publishes a batch of update fragments through a StreamServer fronted by
// a FragmentServer and waits until a FragmentSubscriber has decoded every
// one — i.e. it measures the full pipeline: encode, frame, TCP, deframe,
// decode.
//
//   ./build/bench/bench_transport [--benchmark_format=json]
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/io_env.h"
#include "common/random.h"
#include "frag/fragment_store.h"
#include "net/chaos.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/query_channel.h"
#include "net/server.h"
#include "net/subscriber.h"
#include "net/wal.h"
#include "stream/clock.h"
#include "stream/continuous.h"
#include "stream/registry.h"
#include "stream/transport.h"
#include "xmark/generator.h"

namespace {

using namespace std::chrono_literals;

void BM_Transport(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 1000.0;
  const bool compressed = state.range(1) != 0;

  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  if (!ts.ok()) {
    state.SkipWithError(ts.status().ToString().c_str());
    return;
  }
  xcql::stream::StreamServer source("auction", std::move(ts).MoveValue());
  if (compressed) source.EnableWireCompression();
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 2048;
  xcql::net::FragmentServer server(&source, server_opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.port = server.port();
  sub_opts.stream = "auction";
  sub_opts.codec = compressed ? xcql::frag::WireCodec::kTagCompressed
                              : xcql::frag::WireCodec::kPlainXml;
  xcql::net::FragmentSubscriber sub(sub_opts);
  if (!sub.Start().ok() || !sub.WaitConnected(10s)) {
    state.SkipWithError("subscriber failed to connect");
    return;
  }

  xcql::xmark::XMarkOptions gen;
  gen.scale = scale;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  if (!doc.ok() || !source.PublishDocument(*doc.value()).ok()) {
    state.SkipWithError("document publish failed");
    return;
  }
  const int64_t doc_frags = source.history_size();
  sub.WaitForSeq(server.next_seq() - 1, 60s);

  // Updates replace random fragmented fillers of the initial document.
  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < doc_frags; ++i) {
    const auto* tag =
        source.tag_structure().FindById(source.history_at(i).tsid);
    if (tag != nullptr && tag->fragmented()) candidates.push_back(i);
  }
  xcql::Random rng(5);
  int64_t t = source.history_at(doc_frags - 1).valid_time.seconds();
  int rev = 0;

  constexpr int kBatch = 200;
  std::vector<xcql::frag::Fragment> sink;
  for (auto _ : state) {
    const int64_t target = server.next_seq() + kBatch - 1;
    for (int k = 0; k < kBatch; ++k) {
      const auto& base = source.history_at(static_cast<int64_t>(
          candidates[rng.Uniform(candidates.size())]));
      xcql::frag::Fragment f;
      f.id = base.id;
      f.tsid = base.tsid;
      t += 1 + static_cast<int64_t>(rng.Uniform(30));
      f.valid_time = xcql::DateTime(t);
      f.content = base.content->Clone();
      f.content->SetAttr("rev", std::to_string(++rev));
      if (!source.Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    if (!sub.WaitForSeq(target, 60s)) {
      state.SkipWithError("subscriber fell behind");
      return;
    }
    sink.clear();
    sub.Drain(&sink);
  }

  state.SetItemsProcessed(state.iterations() * kBatch);
  auto m = sub.metrics();
  if (m.fragments_in > 0) {
    state.counters["wire_bytes_per_frag"] =
        static_cast<double>(m.bytes_in) /
        static_cast<double>(m.fragments_in);
  }
  state.counters["doc_fragments"] = static_cast<double>(doc_frags);
  sub.Stop();
  server.Stop();
}

void CollectHoleIds(const xcql::Node& n, std::vector<int64_t>* out) {
  if (xcql::frag::IsHoleElement(n)) {
    auto id = xcql::frag::HoleId(n);
    if (id.ok()) out->push_back(id.value());
    return;
  }
  for (const auto& c : n.children()) CollectHoleIds(*c, out);
}

// Same pipeline as BM_Transport, but routed through a ChaosLink that drops
// and corrupts data-plane frames at the configured loss rate. The timed
// loop measures end-to-end recovery: every published batch must fully
// arrive despite faults (via CRC rejection, reconnect + REPLAY_FROM, and
// heartbeat-lag catch-up). After the loop, two fillers are withheld from
// the local store and recovered via the NACK/repeat path; the repair
// round-trip is reported as `repair_ms`.
void BM_TransportChaos(benchmark::State& state) {
  const double loss = static_cast<double>(state.range(0)) / 1000.0;

  auto ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  auto store_ts = xcql::frag::TagStructure::Parse(
      xcql::xmark::AuctionTagStructureXml());
  if (!ts.ok() || !store_ts.ok()) {
    state.SkipWithError(ts.status().ToString().c_str());
    return;
  }
  xcql::stream::StreamServer source("auction", std::move(ts).MoveValue());
  source.EnableWireCompression();
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 4096;
  server_opts.heartbeat_interval = std::chrono::milliseconds(100);
  xcql::net::FragmentServer server(&source, server_opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  xcql::net::ChaosLinkOptions chaos_opts;
  chaos_opts.upstream_port = server.port();
  chaos_opts.seed = 42 + static_cast<uint64_t>(state.range(0));
  chaos_opts.faults.drop = loss / 2;
  chaos_opts.faults.corrupt = loss / 2;
  xcql::net::ChaosLink chaos(chaos_opts);
  if (!chaos.Start().ok()) {
    state.SkipWithError("chaos link failed to start");
    return;
  }

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.port = chaos.port();
  sub_opts.stream = "auction";
  sub_opts.codec = xcql::frag::WireCodec::kTagCompressed;
  sub_opts.backoff_initial = std::chrono::milliseconds(10);
  sub_opts.backoff_max = std::chrono::milliseconds(200);
  sub_opts.repair_retry_interval = std::chrono::milliseconds(25);
  sub_opts.repair_retry_budget = 100;
  xcql::net::FragmentSubscriber sub(sub_opts);
  if (!sub.Start().ok() || !sub.WaitConnected(10s)) {
    state.SkipWithError("subscriber failed to connect");
    return;
  }

  xcql::xmark::XMarkOptions gen;
  gen.scale = 0.0;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  if (!doc.ok() || !source.PublishDocument(*doc.value()).ok()) {
    state.SkipWithError("document publish failed");
    return;
  }
  const int64_t doc_frags = source.history_size();
  if (!sub.WaitForSeq(server.next_seq() - 1, 60s)) {
    state.SkipWithError("initial document never converged");
    return;
  }

  // Two hole referents become NACK-repair victims: withheld from the local
  // store and excluded from the update workload (repair is filler-id
  // granular, so a victim must be recoverable in one repeat).
  std::vector<int64_t> hole_ids;
  for (int64_t i = 0; i < doc_frags; ++i) {
    CollectHoleIds(*source.history_at(i).content, &hole_ids);
  }
  std::sort(hole_ids.begin(), hole_ids.end());
  hole_ids.erase(std::unique(hole_ids.begin(), hole_ids.end()),
                 hole_ids.end());
  if (hole_ids.size() < 2) {
    state.SkipWithError("document too small for repair victims");
    return;
  }
  const std::vector<int64_t> victims(hole_ids.begin(),
                                     hole_ids.begin() + 2);
  auto is_victim = [&](int64_t id) {
    return std::find(victims.begin(), victims.end(), id) != victims.end();
  };

  xcql::frag::FragmentStore store(std::move(store_ts).MoveValue(),
                                  "auction");
  std::vector<xcql::frag::Fragment> sink;
  auto drain_filtered = [&] {
    sink.clear();
    sub.Drain(&sink);
    for (auto& f : sink) {
      if (!is_victim(f.id)) (void)store.Insert(std::move(f));
    }
  };
  drain_filtered();

  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < doc_frags; ++i) {
    const auto& base = source.history_at(i);
    const auto* tag = source.tag_structure().FindById(base.tsid);
    if (tag != nullptr && tag->fragmented() && !is_victim(base.id)) {
      candidates.push_back(i);
    }
  }
  xcql::Random rng(7);
  int64_t t = source.history_at(doc_frags - 1).valid_time.seconds();
  int rev = 0;

  constexpr int kBatch = 100;
  for (auto _ : state) {
    const int64_t target = server.next_seq() + kBatch - 1;
    for (int k = 0; k < kBatch; ++k) {
      const auto& base = source.history_at(static_cast<int64_t>(
          candidates[rng.Uniform(candidates.size())]));
      xcql::frag::Fragment f;
      f.id = base.id;
      f.tsid = base.tsid;
      t += 1 + static_cast<int64_t>(rng.Uniform(30));
      f.valid_time = xcql::DateTime(t);
      f.content = base.content->Clone();
      f.content->SetAttr("rev", std::to_string(++rev));
      if (!source.Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    if (!sub.WaitForSeq(target, 60s)) {
      state.SkipWithError("subscriber never recovered the batch");
      return;
    }
    drain_filtered();
  }

  // NACK-repair round-trip: the store is missing exactly the victims;
  // sweep until the repeats land.
  const auto repair_start = std::chrono::steady_clock::now();
  const auto repair_deadline = repair_start + 30s;
  while (!store.MissingFillers().empty() &&
         std::chrono::steady_clock::now() < repair_deadline) {
    auto sweep = sub.RepairMissing(store);
    if (!sweep.ok()) {
      state.SkipWithError(sweep.status().ToString().c_str());
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (void)sub.DrainInto(&store);
  }
  const double repair_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - repair_start)
          .count();
  if (!store.MissingFillers().empty()) {
    state.SkipWithError("repair never converged");
    return;
  }
  // One more sweep so the repaired fillers are accounted (a filler counts
  // as repaired on the first sweep that finds it no longer missing).
  (void)sub.RepairMissing(store);

  state.SetItemsProcessed(state.iterations() * kBatch);
  auto m = sub.metrics();
  auto cs = chaos.stats();
  state.counters["repair_ms"] = repair_ms;
  state.counters["fillers_repaired"] = static_cast<double>(
      m.fillers_repaired);
  state.counters["nacks_sent"] = static_cast<double>(m.nacks_sent);
  state.counters["reconnects"] = static_cast<double>(m.reconnects);
  state.counters["frames_corrupt"] = static_cast<double>(m.frames_corrupt);
  state.counters["catchup_replays"] = static_cast<double>(
      m.catchup_replays);
  state.counters["faults_injected"] = static_cast<double>(
      cs.dropped + cs.duplicated + cs.reordered + cs.corrupted +
      cs.truncated);
  sub.Stop();
  chaos.Stop();
  server.Stop();
}

// The --restart scenario (select with --benchmark_filter=Restart):
// crash/recovery latency of a WAL-backed server. Each timed iteration
// publishes a batch (durable, fsync=always), kills the server before the
// subscriber has converged, recovers the stream from disk (Wal::Open
// replay + RestoreStream), restarts on the same port, and waits until the
// subscriber's reconnect + REPLAY_FROM has caught back up to the pre-kill
// frontier. With fsync=always the on-disk state after Close() is
// byte-identical to a SIGKILL taken after the final append, so this
// measures the crash path without forking. `recover_ms` / `catchup_ms`
// split the cycle; `wal_records` is the history length the final recovery
// replayed (growing each iteration — checkpoints bound the replayed tail).
void BM_TransportRestart(benchmark::State& state) {
  const int64_t checkpoint_every = state.range(0);

  char tmpl[] = "/tmp/xcql_bench_wal_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string root = tmpl;
  const std::string dir = root + "/wal";
  const std::string ts_xml = xcql::xmark::AuctionTagStructureXml();

  xcql::net::WalOptions wal_opts;
  wal_opts.fsync = xcql::net::FsyncPolicy::kAlways;
  wal_opts.checkpoint_every = checkpoint_every;

  struct Life {
    std::unique_ptr<xcql::net::Wal> wal;
    std::unique_ptr<xcql::stream::StreamServer> source;
    std::unique_ptr<xcql::net::FragmentServer> server;
  };
  auto start_life = [&](uint16_t port, xcql::net::WalRecovery* rec) {
    Life life;
    auto wal = xcql::net::Wal::Open(dir, "auction", ts_xml, wal_opts, rec);
    if (!wal.ok()) return life;
    life.wal = std::move(wal).MoveValue();
    auto ts = xcql::frag::TagStructure::Parse(ts_xml);
    if (!ts.ok()) return Life{};
    life.source = std::make_unique<xcql::stream::StreamServer>(
        "auction", std::move(ts).MoveValue());
    if (!rec->records.empty() &&
        !xcql::net::RestoreStream(*rec, life.source.get()).ok()) {
      return Life{};
    }
    xcql::net::FragmentServerOptions server_opts;
    server_opts.port = port;
    server_opts.queue_capacity = 4096;
    server_opts.wal = life.wal.get();
    life.server = std::make_unique<xcql::net::FragmentServer>(
        life.source.get(), server_opts);
    if (!life.server->Start().ok()) return Life{};
    return life;
  };

  xcql::net::WalRecovery rec;
  Life life = start_life(0, &rec);
  if (!life.server) {
    state.SkipWithError("initial life failed to start");
    return;
  }
  const uint16_t port = life.server->port();

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.port = port;
  sub_opts.stream = "auction";
  sub_opts.backoff_initial = std::chrono::milliseconds(10);
  sub_opts.backoff_max = std::chrono::milliseconds(100);
  xcql::net::FragmentSubscriber sub(sub_opts);
  if (!sub.Start().ok() || !sub.WaitConnected(10s)) {
    state.SkipWithError("subscriber failed to connect");
    return;
  }

  xcql::xmark::XMarkOptions gen;
  gen.scale = 0.0;
  auto doc = xcql::xmark::GenerateAuctionDoc(gen);
  if (!doc.ok() || !life.source->PublishDocument(*doc.value()).ok()) {
    state.SkipWithError("document publish failed");
    return;
  }
  const int64_t doc_frags = life.source->history_size();
  if (!sub.WaitForSeq(life.server->next_seq() - 1, 60s)) {
    state.SkipWithError("initial document never converged");
    return;
  }

  std::vector<int64_t> candidates;
  for (int64_t i = 0; i < doc_frags; ++i) {
    const auto* tag = life.source->tag_structure().FindById(
        life.source->history_at(i).tsid);
    if (tag != nullptr && tag->fragmented()) candidates.push_back(i);
  }
  xcql::Random rng(11);
  int64_t t = life.source->history_at(doc_frags - 1).valid_time.seconds();
  int rev = 0;

  constexpr int kBatch = 200;
  double recover_ms_total = 0;
  double catchup_ms_total = 0;
  int64_t wal_records = 0;
  std::vector<xcql::frag::Fragment> sink;
  for (auto _ : state) {
    for (int k = 0; k < kBatch; ++k) {
      const auto& base = life.source->history_at(static_cast<int64_t>(
          candidates[rng.Uniform(candidates.size())]));
      xcql::frag::Fragment f;
      f.id = base.id;
      f.tsid = base.tsid;
      t += 1 + static_cast<int64_t>(rng.Uniform(30));
      f.valid_time = xcql::DateTime(t);
      f.content = base.content->Clone();
      f.content->SetAttr("rev", std::to_string(++rev));
      if (!life.source->Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    // Kill the server with the batch durable but (mostly) undelivered.
    const int64_t frontier = life.server->next_seq() - 1;
    life.server->Stop();
    life.server.reset();
    life.source.reset();
    (void)life.wal->Close();
    life.wal.reset();

    const auto t0 = std::chrono::steady_clock::now();
    rec = xcql::net::WalRecovery();
    life = start_life(port, &rec);
    if (!life.server) {
      state.SkipWithError("recovered life failed to start");
      return;
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (!sub.WaitForSeq(frontier, 60s)) {
      state.SkipWithError("subscriber never caught up after restart");
      return;
    }
    const auto t2 = std::chrono::steady_clock::now();
    recover_ms_total +=
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    catchup_ms_total +=
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    wal_records = static_cast<int64_t>(rec.records.size());
    if (rec.report.torn_tail) {
      state.SkipWithError("unexpected torn tail on a synced close");
      return;
    }
    sink.clear();
    sub.Drain(&sink);
  }

  state.SetItemsProcessed(state.iterations() * kBatch);
  const double iters = static_cast<double>(state.iterations());
  state.counters["recover_ms"] = recover_ms_total / iters;
  state.counters["catchup_ms"] = catchup_ms_total / iters;
  state.counters["wal_records"] = static_cast<double>(wal_records);
  state.counters["reconnects"] =
      static_cast<double>(sub.metrics().reconnects);
  state.counters["epoch_resets"] =
      static_cast<double>(sub.metrics().epoch_resets);

  sub.Stop();
  if (life.server) life.server->Stop();
  life.server.reset();
  life.source.reset();
  if (life.wal) (void)life.wal->Close();
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
}

// The remote-query ablation (protocol v3): one continuous query, eight
// consumers. server_side=1 registers the query once in the server's
// QueryChannel — one evaluation per tick, RESULT frames fanned out —
// while each subscriber merely decodes deltas. server_side=0 is the
// pre-v3 architecture: every subscriber pulls the raw fragment stream
// and runs its own ContinuousQueryEngine, so the same query evaluates
// eight times per tick. Each timed iteration publishes a batch and waits
// until all eight consumers hold the batch's full delta stream; the gap
// between the two modes is the evaluate-once dividend.
void BM_TransportQueryFanout(benchmark::State& state) {
  const bool server_side = state.range(0) != 0;
  constexpr int kSubs = 8;
  constexpr int kBatch = 100;
  constexpr const char* kTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
    <tag type="snapshot" id="4" name="srcIP"/>
  </tag>
</tag>)";
  constexpr const char* kQuery =
      "for $p in stream(\"pkts\")//packet return string($p/id)";

  auto parse_ts = [&] {
    auto r = xcql::frag::TagStructure::Parse(kTs);
    return std::move(r).MoveValue();
  };
  xcql::stream::StreamServer source("pkts", parse_ts());
  xcql::net::QueryChannel channel("pkts", parse_ts());
  if (!channel.Open().ok()) {
    state.SkipWithError("channel failed to open");
    return;
  }
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 4096;
  if (server_side) server_opts.query_channel = &channel;
  xcql::net::FragmentServer server(&source, server_opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  // Client-side consumers each own a full local engine; server-side ones
  // only track their remote token.
  struct Consumer {
    std::unique_ptr<xcql::net::FragmentSubscriber> sub;
    uint32_t token = 0;
    // client-side only:
    std::unique_ptr<xcql::stream::StreamHub> hub;
    std::unique_ptr<xcql::stream::SimClock> clock;
    std::unique_ptr<xcql::stream::ContinuousQueryEngine> engine;
    xcql::frag::FragmentStore* store = nullptr;
    int64_t deltas = 0;
  };
  std::vector<Consumer> consumers(kSubs);
  for (auto& c : consumers) {
    xcql::net::FragmentSubscriberOptions sub_opts;
    sub_opts.port = server.port();
    sub_opts.stream = "pkts";
    c.sub = std::make_unique<xcql::net::FragmentSubscriber>(sub_opts);
    if (server_side) {
      xcql::net::RemoteQuerySpec spec;
      spec.text = kQuery;
      spec.method =
          static_cast<uint8_t>(xcql::lang::ExecMethod::kQaCPlus);
      auto token = c.sub->AddRemoteQuery(spec);
      if (!token.ok()) {
        state.SkipWithError("AddRemoteQuery failed");
        return;
      }
      c.token = token.value();
    } else {
      c.hub = std::make_unique<xcql::stream::StreamHub>();
      c.clock = std::make_unique<xcql::stream::SimClock>();
      auto store = c.hub->AddLocalStream("pkts", parse_ts());
      if (!store.ok()) {
        state.SkipWithError("AddLocalStream failed");
        return;
      }
      c.store = store.value();
      c.engine = std::make_unique<xcql::stream::ContinuousQueryEngine>(
          c.hub.get(), c.clock.get());
      auto* deltas = &c.deltas;
      auto id = c.engine->RegisterDelta(
          kQuery,
          [deltas](const xcql::xq::Sequence&,
                   const std::vector<std::string>&,
                   xcql::DateTime) { ++*deltas; },
          {});
      if (!id.ok()) {
        state.SkipWithError("RegisterDelta failed");
        return;
      }
    }
    if (!c.sub->Start().ok() || !c.sub->WaitConnected(10s)) {
      state.SkipWithError("subscriber failed to connect");
      return;
    }
    if (server_side && !c.sub->WaitQueryActive(c.token, 10s)) {
      state.SkipWithError("remote query never activated");
      return;
    }
  }

  // Root first, so packet fillers splice under it; it emits no delta.
  xcql::frag::Fragment root;
  root.id = 0;
  root.tsid = 1;
  root.valid_time = xcql::DateTime(999);
  root.content = xcql::Node::Element("packets");
  if (!source.Publish(std::move(root)).ok()) {
    state.SkipWithError("root publish failed");
    return;
  }

  xcql::Random rng(13);
  int64_t t = 1000;
  int next_val = 0;
  std::vector<xcql::frag::Fragment> sink;
  std::vector<xcql::net::RemoteQueryResult> results;
  for (auto _ : state) {
    for (int k = 0; k < kBatch; ++k) {
      xcql::frag::Fragment f;
      f.id = 1 + static_cast<int64_t>(rng.Uniform(16));
      f.tsid = 2;
      t += 1 + static_cast<int64_t>(rng.Uniform(9));
      f.valid_time = xcql::DateTime(t);
      f.content = xcql::Node::Element("packet");
      xcql::NodePtr pid = xcql::Node::Element("id");
      pid->AddChild(xcql::Node::Text(std::to_string(++next_val)));
      f.content->AddChild(std::move(pid));
      if (!source.Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    // Every distinct packet value is one delta; the root tick emits none.
    const int64_t result_target = next_val - 1;
    const int64_t frag_target = server.next_seq() - 1;
    for (auto& c : consumers) {
      if (server_side) {
        if (!c.sub->WaitForResultSeq(c.token, result_target, 60s)) {
          state.SkipWithError("result stream fell behind");
          return;
        }
        results.clear();
        c.sub->DrainResults(&results);
      } else {
        if (!c.sub->WaitForSeq(frag_target, 60s)) {
          state.SkipWithError("fragment stream fell behind");
          return;
        }
        sink.clear();
        c.sub->Drain(&sink);
        for (auto& f : sink) {
          c.hub->OnFragment("pkts", f);
          c.clock->AdvanceTo(c.store->max_valid_time());
          if (!c.engine->Tick().ok()) {
            state.SkipWithError("client tick failed");
            return;
          }
        }
        if (c.deltas != next_val) {
          state.SkipWithError("client-side delta stream diverged");
          return;
        }
      }
    }
  }

  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["subscribers"] = kSubs;
  if (server_side) {
    // One evaluation's frames, fanned out: log size vs frames sent.
    state.counters["result_frames_logged"] =
        static_cast<double>(channel.stats().result_frames);
    state.counters["result_frames_sent"] =
        static_cast<double>(server.metrics().result_frames_out);
  } else {
    int64_t evals = 0;
    for (auto& c : consumers) evals += c.engine->evaluations();
    state.counters["client_evaluations"] = static_cast<double>(evals);
  }
  for (auto& c : consumers) c.sub->Stop();
  server.Stop();
}

// ---- Retention (bounded-memory forever-run) --------------------------------
//
// The same publish→deliver pipeline with the retention driver active
// (docs/RETENTION.md): a registered continuous query with a sliding
// 600-second observable window, a frame-count window on the log, version
// windows on the fragment stores, and bounded result logs. retain_frames=0
// is the unbounded baseline. The emitted counters land in
// BENCH_transport.json: `frame_log_bytes` / `fragment_store_bytes` /
// `retention_floor_seq` show the steady state, `frames_retired` /
// `result_log_trimmed` the cumulative GC volume.

constexpr const char* kRetentionTs = R"(
<tag type="snapshot" id="1" name="packets">
  <tag type="event" id="2" name="packet">
    <tag type="snapshot" id="3" name="id"/>
  </tag>
</tag>)";
// Sliding window: the projection's static lower bound (now - 600s) is what
// lang::AnalyzeRelevance turns into the query's observable window, so
// retention may compact everything older.
constexpr const char* kRetentionQuery =
    "for $p in stream(\"pkts\")//packet?[now - \"PT600S\", now] "
    "return string($p/id)";

xcql::frag::TagStructure ParseRetentionTs() {
  auto r = xcql::frag::TagStructure::Parse(kRetentionTs);
  return std::move(r).MoveValue();
}

void BM_TransportRetention(benchmark::State& state) {
  const int64_t retain_frames = state.range(0);
  constexpr int kBatch = 256;

  xcql::stream::StreamServer source("pkts", ParseRetentionTs());
  xcql::net::QueryChannel channel("pkts", ParseRetentionTs());
  if (!channel.Open().ok()) {
    state.SkipWithError("channel failed to open");
    return;
  }
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 4096;
  server_opts.query_channel = &channel;
  if (retain_frames > 0) {
    server_opts.retention.max_frames = retain_frames;
    server_opts.retention.max_versions = 4;
    server_opts.retention.max_results = 512;
    server_opts.retention.check_every = 64;
  }
  xcql::net::FragmentServer server(&source, server_opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  xcql::net::FragmentSubscriberOptions sub_opts;
  sub_opts.port = server.port();
  sub_opts.stream = "pkts";
  xcql::net::FragmentSubscriber sub(sub_opts);
  xcql::net::RemoteQuerySpec spec;
  spec.text = kRetentionQuery;
  spec.method = static_cast<uint8_t>(xcql::lang::ExecMethod::kQaCPlus);
  auto token = sub.AddRemoteQuery(spec);
  if (!token.ok()) {
    state.SkipWithError("AddRemoteQuery failed");
    return;
  }
  if (!sub.Start().ok() || !sub.WaitConnected(10s)) {
    state.SkipWithError("subscriber failed to connect");
    return;
  }
  if (!sub.WaitQueryActive(token.value(), 10s)) {
    state.SkipWithError("remote query never activated");
    return;
  }

  xcql::frag::Fragment root;
  root.id = 0;
  root.tsid = 1;
  root.valid_time = xcql::DateTime(999);
  root.content = xcql::Node::Element("packets");
  if (!source.Publish(std::move(root)).ok()) {
    state.SkipWithError("root publish failed");
    return;
  }

  xcql::Random rng(17);
  int64_t t = 1000;
  int next_val = 0;
  std::vector<xcql::frag::Fragment> sink;
  std::vector<xcql::net::RemoteQueryResult> results;
  for (auto _ : state) {
    const int64_t target = server.next_seq() + kBatch - 1;
    for (int k = 0; k < kBatch; ++k) {
      xcql::frag::Fragment f;
      f.id = 1 + static_cast<int64_t>(rng.Uniform(32));
      f.tsid = 2;
      t += 1 + static_cast<int64_t>(rng.Uniform(9));
      f.valid_time = xcql::DateTime(t);
      f.content = xcql::Node::Element("packet");
      xcql::NodePtr pid = xcql::Node::Element("id");
      pid->AddChild(xcql::Node::Text(std::to_string(++next_val)));
      f.content->AddChild(std::move(pid));
      if (!source.Publish(std::move(f)).ok()) {
        state.SkipWithError("publish failed");
        return;
      }
    }
    if (!sub.WaitForSeq(target, 60s)) {
      state.SkipWithError("subscriber fell behind");
      return;
    }
    sink.clear();
    sub.Drain(&sink);
    results.clear();
    sub.DrainResults(&results);
  }

  state.SetItemsProcessed(state.iterations() * kBatch);
  const auto m = server.metrics();
  state.counters["retain_frames"] = static_cast<double>(retain_frames);
  state.counters["retention_runs"] = static_cast<double>(m.retention_runs);
  state.counters["frames_retired"] = static_cast<double>(m.frames_retired);
  state.counters["fragments_compacted"] =
      static_cast<double>(m.fragments_compacted);
  state.counters["result_log_trimmed"] =
      static_cast<double>(m.result_log_trimmed);
  state.counters["retention_floor_seq"] =
      static_cast<double>(m.retention_floor_seq);
  state.counters["frame_log_bytes"] =
      static_cast<double>(m.frame_log_bytes);
  state.counters["fragment_store_bytes"] =
      static_cast<double>(m.fragment_store_bytes);
  state.counters["expired_out"] = static_cast<double>(m.expired_out);
  sub.Stop();
  server.Stop();
}

// ---- Event-loop fan-out ----------------------------------------------------
//
// One publisher, `conns` raw framed-TCP subscribers serviced by a single
// bench-side EventLoop. The real FragmentSubscriber spins one thread per
// instance — which is exactly the architecture the server-side event loop
// replaced; mirroring it at 10k clients would bench the client threads,
// not the server. A raw client instead pipelines its whole handshake
// (HELLO + SUBSCRIBE + REPLAY_FROM(-1), processed in arrival order) into
// one blocking write, then goes non-blocking and only tracks the
// contiguous prefix: FRAGMENT seqs plus SKIP_TO advances.
//
// filtered=1 is the disjoint-slice scenario: client i subscribes exactly
// one of the 64 event tsids, so every published frame is delivered to
// conns/64 clients and suppressed (covered by SKIP_TO runs) for the rest.
// Either way the server must encode each published fragment exactly once
// (`encodes_per_pub` is asserted == 1) and every (client, frame) pair must
// be accounted delivered-or-filtered; the filtered rows show the
// delivery-bytes dividend in `wire_mb`.

constexpr int kFanTsids = 64;

std::string FanTagStructureXml() {
  std::string xml = "<tag type=\"snapshot\" id=\"1\" name=\"fan\">\n";
  for (int i = 0; i < kFanTsids; ++i) {
    xml += "  <tag type=\"event\" id=\"" + std::to_string(2 + i) +
           "\" name=\"t" + std::to_string(i) + "\"/>\n";
  }
  xml += "</tag>";
  return xml;
}

// Raises the soft fd limit toward the hard one; false when even that
// cannot cover `needed`.
bool EnsureFdLimit(rlim_t needed) {
  struct rlimit rl {};
  if (::getrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
  if (rl.rlim_cur >= needed) return true;
  rl.rlim_cur =
      rl.rlim_max == RLIM_INFINITY ? needed : std::min(rl.rlim_max, needed);
  if (::setrlimit(RLIMIT_NOFILE, &rl) != 0) return false;
  return rl.rlim_cur >= needed;
}

struct FanClient {
  int fd = -1;
  xcql::net::FrameReader reader;
  int64_t last_seq = -1;     // contiguous prefix: data frames + skips
  int64_t data_frames = 0;   // FRAGMENT frames received
  int64_t bytes_in = 0;
};

class FanOutHarness {
 public:
  ~FanOutHarness() {
    for (auto& c : clients_) {
      if (c->fd >= 0) {
        loop_.Remove(c->fd);
        ::close(c->fd);
      }
    }
    clients_.clear();
    if (server_) server_->Stop();
  }

  // Empty string on success, the failure reason otherwise (throughout).
  std::string Setup(int conns, bool filtered) {
    auto ts = xcql::frag::TagStructure::Parse(FanTagStructureXml());
    if (!ts.ok()) return ts.status().ToString();
    source_ = std::make_unique<xcql::stream::StreamServer>(
        "fan", std::move(ts).MoveValue());
    xcql::net::FragmentServerOptions opts;
    // Must exceed the largest batch: the bench thread alternates between
    // publishing and draining clients, so kBlock must never engage (it
    // would deadlock against the drain that only this thread performs).
    opts.queue_capacity = 4096;
    // Relaxed at scale: idle heartbeats are per-connection encode+send
    // work on the one loop thread, and even 250ms x 8k connections (32k
    // frames/s) starves accepts during setup. The batch drain does not
    // rely on heartbeats — SKIP_TO tails flush on their own (much
    // shorter) skip_flush_interval cadence.
    opts.heartbeat_interval =
        std::chrono::milliseconds(conns >= 1024 ? 5000 : 25);
    opts.skip_flush_interval = std::chrono::milliseconds(20);
    server_ =
        std::make_unique<xcql::net::FragmentServer>(source_.get(), opts);
    if (auto s = server_->Start(); !s.ok()) return s.ToString();
    // Client and server share this process, so every connection costs two
    // fds (the client socket and the server's accepted one).
    if (!EnsureFdLimit(2 * static_cast<rlim_t>(conns) + 128)) {
      return "RLIMIT_NOFILE too low for " + std::to_string(conns) +
             " connections";
    }
    if (auto s = loop_.Init(); !s.ok()) return s.ToString();
    clients_.reserve(static_cast<size_t>(conns));
    for (int i = 0; i < conns; ++i) {
      auto err = ConnectClient(i, filtered);
      if (!err.empty()) {
        return "client " + std::to_string(i) + ": " + err;
      }
    }
    return "";
  }

  std::string PublishBatchAndWait(int batch, std::chrono::seconds timeout) {
    for (int k = 0; k < batch; ++k) {
      const int slot = static_cast<int>(published_ % kFanTsids);
      xcql::frag::Fragment f;
      f.id = 1'000'000 + published_;
      f.tsid = 2 + slot;
      f.valid_time = xcql::DateTime(1'000 + published_);
      f.content = xcql::Node::Element("t" + std::to_string(slot));
      f.content->AddChild(xcql::Node::Text(std::to_string(published_)));
      if (auto s = source_->Publish(std::move(f)); !s.ok()) {
        return s.ToString();
      }
      ++published_;
    }
    const int64_t target = server_->next_seq() - 1;
    size_t pending = 0;
    for (const auto& c : clients_) {
      if (c->last_seq < target) ++pending;
    }
    std::vector<xcql::net::LoopEvent> events;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (pending > 0) {
      if (std::chrono::steady_clock::now() > deadline) {
        return std::to_string(pending) + " clients never reached seq " +
               std::to_string(target);
      }
      auto n = loop_.Wait(&events, 100);
      if (!n.ok()) return n.status().ToString();
      for (const auto& e : events) {
        auto* c = static_cast<FanClient*>(e.tag);
        if (c == nullptr) continue;
        const bool was_done = c->last_seq >= target;
        auto err = Service(c);
        if (!err.empty()) return err;
        if (!was_done && c->last_seq >= target) --pending;
      }
    }
    return "";
  }

  xcql::net::MetricsSnapshot server_metrics() const {
    return server_->metrics();
  }
  int64_t published() const { return published_; }
  int64_t delivered() const {
    int64_t n = 0;
    for (const auto& c : clients_) n += c->data_frames;
    return n;
  }
  int64_t conns() const { return static_cast<int64_t>(clients_.size()); }

 private:
  std::string ConnectClient(int index, bool filtered) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return std::string("socket: ") + std::strerror(errno);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return "connect: " + err;
    }
    xcql::net::Hello hello;
    hello.stream_name = "fan";
    xcql::net::Frame h;
    h.type = xcql::net::FrameType::kHello;
    h.flags = xcql::net::kHelloFlagCrcFrames;
    if (filtered) h.flags |= xcql::net::kHelloFlagTsidFilter;
    h.payload = xcql::net::EncodeHello(hello);
    auto out = xcql::net::EncodeFrame(h, xcql::net::kFrameVersion);
    if (!out.ok()) {
      ::close(fd);
      return out.status().ToString();
    }
    std::string bytes = std::move(out).MoveValue();
    if (filtered) {
      xcql::net::Frame sub;
      sub.type = xcql::net::FrameType::kSubscribe;
      sub.payload = xcql::net::EncodeSubscribe({2 + index % kFanTsids});
      auto enc = xcql::net::EncodeFrame(sub);
      if (!enc.ok()) {
        ::close(fd);
        return enc.status().ToString();
      }
      bytes += enc.value();
    }
    xcql::net::Frame replay;
    replay.type = xcql::net::FrameType::kReplayFrom;
    replay.payload = xcql::net::EncodeReplayFrom(-1);
    auto enc = xcql::net::EncodeFrame(replay);
    if (!enc.ok()) {
      ::close(fd);
      return enc.status().ToString();
    }
    bytes += enc.value();
    size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                               MSG_NOSIGNAL);
      if (n <= 0) {
        ::close(fd);
        return "handshake send failed";
      }
      off += static_cast<size_t>(n);
    }
    const int fl = ::fcntl(fd, F_GETFL, 0);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) != 0) {
      ::close(fd);
      return "fcntl(O_NONBLOCK) failed";
    }
    auto c = std::make_unique<FanClient>();
    c->fd = fd;
    if (auto s = loop_.Add(fd, c.get(), /*want_read=*/true,
                           /*want_write=*/false);
        !s.ok()) {
      ::close(fd);
      return s.ToString();
    }
    clients_.push_back(std::move(c));
    return "";
  }

  std::string Service(FanClient* c) {
    char buf[65536];
    for (;;) {
      const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
      if (n == 0) return "server closed a fan-out connection";
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return "";
        if (errno == EINTR) continue;
        return std::string("recv: ") + std::strerror(errno);
      }
      c->bytes_in += n;
      c->reader.Feed(buf, static_cast<size_t>(n));
      for (;;) {
        auto next = c->reader.Next();
        if (!next.ok()) return next.status().ToString();
        auto frame = std::move(next).MoveValue();
        if (!frame.has_value()) break;
        if (!frame->crc_ok) return "corrupt frame on loopback";
        if (frame->type == xcql::net::FrameType::kFragment) {
          ++c->data_frames;
          if (static_cast<int64_t>(frame->seq) > c->last_seq) {
            c->last_seq = static_cast<int64_t>(frame->seq);
          }
        } else if (frame->type == xcql::net::FrameType::kSkipTo) {
          if (static_cast<int64_t>(frame->seq) > c->last_seq) {
            c->last_seq = static_cast<int64_t>(frame->seq);
          }
        }
      }
    }
  }

  std::unique_ptr<xcql::stream::StreamServer> source_;
  std::unique_ptr<xcql::net::FragmentServer> server_;
  xcql::net::EventLoop loop_;
  std::vector<std::unique_ptr<FanClient>> clients_;
  int64_t published_ = 0;
};

void BM_TransportFanOut(benchmark::State& state) {
  const int conns = static_cast<int>(state.range(0));
  const bool filtered = state.range(1) != 0;
  constexpr int kBatch = 512;

  FanOutHarness harness;
  if (auto err = harness.Setup(conns, filtered); !err.empty()) {
    state.SkipWithError(err.c_str());
    return;
  }
  for (auto _ : state) {
    if (auto err = harness.PublishBatchAndWait(kBatch, 120s);
        !err.empty()) {
      state.SkipWithError(err.c_str());
      return;
    }
  }

  const auto m = harness.server_metrics();
  if (m.fragment_encodes != harness.published()) {
    state.SkipWithError(("encode-once violated: " +
                         std::to_string(m.fragment_encodes) +
                         " encodes for " +
                         std::to_string(harness.published()) + " publishes")
                            .c_str());
    return;
  }
  if (harness.delivered() + m.frames_filtered !=
      harness.conns() * harness.published()) {
    state.SkipWithError("fan-out conservation violated");
    return;
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["conns"] = static_cast<double>(conns);
  state.counters["filtered"] = filtered ? 1 : 0;
  state.counters["encodes_per_pub"] =
      static_cast<double>(m.fragment_encodes) /
      static_cast<double>(harness.published());
  state.counters["wire_mb"] = static_cast<double>(m.bytes_out) / 1e6;
  state.counters["frames_delivered"] =
      static_cast<double>(harness.delivered());
  state.counters["frames_filtered"] =
      static_cast<double>(m.frames_filtered);
  state.counters["skips_out"] = static_cast<double>(m.skips_out);
  state.counters["drops"] = static_cast<double>(m.drops);
}

// --fan-out-soak: a fast single-pass fan-out run with the encode-once and
// conservation assertions, for sanitizer CI where the full benchmark suite
// is too slow. Prints one parseable line and exits nonzero on violation.
int RunFanOutSoak(int conns) {
  constexpr int kBatch = 256;
  FanOutHarness harness;
  std::string err = harness.Setup(conns, /*filtered=*/true);
  for (int i = 0; err.empty() && i < 2; ++i) {
    err = harness.PublishBatchAndWait(kBatch, std::chrono::seconds(60));
  }
  const auto m = harness.server_metrics();
  if (err.empty() && m.fragment_encodes != harness.published()) {
    err = "encode-once violated";
  }
  if (err.empty() && harness.delivered() + m.frames_filtered !=
                         harness.conns() * harness.published()) {
    err = "fan-out conservation violated";
  }
  std::printf(
      "fan-out-soak conns=%d published=%lld encodes=%lld delivered=%lld "
      "filtered=%lld skips=%lld status=%s\n",
      conns, static_cast<long long>(harness.published()),
      static_cast<long long>(m.fragment_encodes),
      static_cast<long long>(harness.delivered()),
      static_cast<long long>(m.frames_filtered),
      static_cast<long long>(m.skips_out),
      err.empty() ? "ok" : err.c_str());
  return err.empty() ? 0 : 1;
}

// --soak-retention [N [rss_ceiling_mb]]: a single-pass bounded-memory
// soak for sanitizer CI. Publishes N event fragments through the full
// server pipeline (frame log + query channel with a registered
// sliding-window query) with retention windows active, samples VmRSS as
// it goes, and fails if the frame log outgrows its window or the peak
// RSS (after warmup) exceeds the ceiling. Prints one parseable line.
int64_t ReadRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  int64_t kb = -1;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::atoll(line + 6);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

int RunRetentionSoak(int64_t publishes, int64_t rss_ceiling_mb) {
  constexpr int64_t kRetainFrames = 8192;
  constexpr int64_t kCheckEvery = 512;

  xcql::stream::StreamServer source("pkts", ParseRetentionTs());
  xcql::net::QueryChannel channel("pkts", ParseRetentionTs());
  std::string err;
  if (!channel.Open().ok()) err = "channel failed to open";
  if (err.empty()) {
    xcql::net::RemoteQuerySpec spec;
    spec.text = kRetentionQuery;
    spec.method = static_cast<uint8_t>(xcql::lang::ExecMethod::kQaCPlus);
    if (!channel.Register(spec).ok()) err = "query registration failed";
  }
  xcql::net::FragmentServerOptions server_opts;
  server_opts.queue_capacity = 4096;
  server_opts.query_channel = &channel;
  server_opts.retention.max_frames = kRetainFrames;
  server_opts.retention.max_versions = 4;
  server_opts.retention.max_results = 1024;
  server_opts.retention.max_age_s = 3600;
  server_opts.retention.check_every = kCheckEvery;
  xcql::net::FragmentServer server(&source, server_opts);
  if (err.empty() && !server.Start().ok()) err = "server failed to start";

  if (err.empty()) {
    xcql::frag::Fragment root;
    root.id = 0;
    root.tsid = 1;
    root.valid_time = xcql::DateTime(999);
    root.content = xcql::Node::Element("packets");
    if (!source.Publish(std::move(root)).ok()) err = "root publish failed";
  }

  xcql::Random rng(23);
  int64_t t = 1000;
  int64_t rss_peak_kb = 0;
  const int64_t warmup = publishes / 10;
  for (int64_t i = 0; err.empty() && i < publishes; ++i) {
    xcql::frag::Fragment f;
    f.id = 1 + static_cast<int64_t>(rng.Uniform(32));
    f.tsid = 2;
    t += 1 + static_cast<int64_t>(rng.Uniform(9));
    f.valid_time = xcql::DateTime(t);
    f.content = xcql::Node::Element("packet");
    xcql::NodePtr pid = xcql::Node::Element("id");
    pid->AddChild(xcql::Node::Text(std::to_string(i)));
    f.content->AddChild(std::move(pid));
    if (!source.Publish(std::move(f)).ok()) {
      err = "publish failed";
      break;
    }
    if ((i & 0xFFFF) == 0xFFFF || i + 1 == publishes) {
      const int64_t kb = ReadRssKb();
      if (i >= warmup && kb > rss_peak_kb) rss_peak_kb = kb;
      std::fprintf(stderr,
                   "soak-retention: %lld/%lld published, rss %lld MB, "
                   "floor %lld\n",
                   static_cast<long long>(i + 1),
                   static_cast<long long>(publishes),
                   static_cast<long long>(kb / 1024),
                   static_cast<long long>(server.log_base()));
    }
  }

  const auto m = server.metrics();
  const int64_t live_frames = server.next_seq() - server.log_base();
  if (err.empty() && live_frames > kRetainFrames + 2 * kCheckEvery) {
    err = "frame log outgrew its retention window";
  }
  if (err.empty() && m.frames_retired <= 0) {
    err = "retention never retired a frame";
  }
  if (err.empty() && rss_ceiling_mb > 0 &&
      rss_peak_kb > rss_ceiling_mb * 1024) {
    err = "rss ceiling exceeded";
  }
  std::printf(
      "retention-soak published=%lld retired=%lld compacted=%lld "
      "result_trimmed=%lld floor=%lld live_frames=%lld "
      "frame_log_bytes=%lld fragment_store_bytes=%lld rss_peak_mb=%lld "
      "status=%s\n",
      static_cast<long long>(publishes),
      static_cast<long long>(m.frames_retired),
      static_cast<long long>(m.fragments_compacted),
      static_cast<long long>(m.result_log_trimmed),
      static_cast<long long>(m.retention_floor_seq),
      static_cast<long long>(live_frames),
      static_cast<long long>(m.frame_log_bytes),
      static_cast<long long>(m.fragment_store_bytes),
      static_cast<long long>(rss_peak_kb / 1024),
      err.empty() ? "ok" : err.c_str());
  server.Stop();
  return err.empty() ? 0 : 1;
}

// --fault-disk [cycles]: the degrade/re-arm timing soak for sanitizer CI
// and BENCH_transport.json. A FaultyIoEnv under the WAL fails one fsync
// per cycle (a disk hiccup), which degrades durability mid-stream; the
// self-healing supervisor probes and re-arms into a fresh durable
// generation. Per cycle the run times fault→re-armed (`rearm_ms`) and
// re-arm→subscriber-reconverged (`reconverge_ms`), then asserts the full
// contract: every cycle re-armed, the subscriber holds every published
// seq, and no descriptor was ever fsync'd after a failed fsync. Prints
// one parseable line and exits nonzero on violation.
int RunDiskFaultSoak(int cycles) {
  constexpr int kBatch = 64;
  char tmpl[] = "/tmp/xcql_bench_fault_XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) {
    std::printf("disk-fault-soak status=mkdtemp-failed\n");
    return 1;
  }
  const std::string root = tmpl;
  const std::string dir = root + "/wal";

  xcql::FaultyIoEnv env(19);
  xcql::IoEnv::Install(&env);
  std::string err;
  double rearm_ms_total = 0;
  double reconverge_ms_total = 0;
  int64_t published = 0;
  xcql::net::MetricsSnapshot m;
  {
    xcql::net::WalRecovery rec;
    auto wal = xcql::net::Wal::Open(dir, "pkts", kRetentionTs,
                                    xcql::net::WalOptions{}, &rec);
    if (!wal.ok()) err = "wal open failed";
    xcql::stream::StreamServer source("pkts", ParseRetentionTs());
    xcql::net::FragmentServerOptions server_opts;
    server_opts.queue_capacity = 4096;
    if (err.empty()) server_opts.wal = wal.value().get();
    server_opts.durability.self_heal = true;
    server_opts.durability.probe_initial = std::chrono::milliseconds(5);
    server_opts.durability.probe_max = std::chrono::milliseconds(50);
    xcql::net::FragmentServer server(&source, server_opts);
    if (err.empty() && !server.Start().ok()) err = "server failed to start";

    xcql::net::FragmentSubscriberOptions sub_opts;
    sub_opts.port = server.port();
    sub_opts.stream = "pkts";
    sub_opts.backoff_initial = std::chrono::milliseconds(5);
    sub_opts.backoff_max = std::chrono::milliseconds(50);
    xcql::net::FragmentSubscriber sub(sub_opts);
    if (err.empty() && (!sub.Start().ok() ||
                        !sub.WaitConnected(std::chrono::seconds(10)))) {
      err = "subscriber failed to connect";
    }

    auto publish_one = [&](int64_t t) {
      xcql::frag::Fragment f;
      f.id = 1 + published % 32;
      f.tsid = 2;
      f.valid_time = xcql::DateTime(1000 + t);
      f.content = xcql::Node::Element("packet");
      xcql::NodePtr pid = xcql::Node::Element("id");
      pid->AddChild(xcql::Node::Text(std::to_string(published)));
      f.content->AddChild(std::move(pid));
      ++published;
      return source.Publish(std::move(f));
    };
    if (err.empty()) {
      xcql::frag::Fragment rootf;
      rootf.id = 0;
      rootf.tsid = 1;
      rootf.valid_time = xcql::DateTime(999);
      rootf.content = xcql::Node::Element("packets");
      if (!source.Publish(std::move(rootf)).ok()) err = "root publish failed";
    }
    for (int k = 0; err.empty() && k < kBatch; ++k) {
      if (!publish_one(published).ok()) err = "warmup publish failed";
    }
    if (err.empty() &&
        !sub.WaitForSeq(server.next_seq() - 1, std::chrono::seconds(30))) {
      err = "warmup never converged";
    }

    for (int cycle = 1; err.empty() && cycle <= cycles; ++cycle) {
      xcql::FaultRule rule;
      rule.path_prefix = dir + "/wal-";
      rule.op = xcql::IoOp::kFsync;
      rule.err = EIO;
      env.AddRule(rule);
      const auto t0 = std::chrono::steady_clock::now();
      if (!publish_one(published).ok()) {
        err = "faulted publish failed";
        break;
      }
      const auto deadline = t0 + std::chrono::seconds(30);
      while (server.metrics().durability_rearms < cycle &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (server.metrics().durability_rearms < cycle ||
          server.wal_degraded()) {
        err = "cycle " + std::to_string(cycle) + " never re-armed";
        break;
      }
      const auto t1 = std::chrono::steady_clock::now();
      for (int k = 0; k < kBatch; ++k) {
        if (!publish_one(published).ok()) {
          err = "post-rearm publish failed";
          break;
        }
      }
      if (!err.empty()) break;
      if (!sub.WaitForSeq(server.next_seq() - 1,
                          std::chrono::seconds(30))) {
        err = "cycle " + std::to_string(cycle) + " never reconverged";
        break;
      }
      const auto t2 = std::chrono::steady_clock::now();
      rearm_ms_total +=
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      reconverge_ms_total +=
          std::chrono::duration<double, std::milli>(t2 - t1).count();
    }

    m = server.metrics();
    if (err.empty() && m.durability_rearms != cycles) {
      err = "re-arm count mismatch";
    }
    if (err.empty() && env.fsync_retry_violations() != 0) {
      err = "fsyncgate violated: a failed fsync was retried";
    }
    const auto sm = sub.metrics();
    sub.Stop();
    server.Stop();
    if (wal.ok()) (void)wal.value()->Close();
    std::printf(
        "disk-fault-soak cycles=%d published=%lld rearms=%lld "
        "degraded_ms=%lld mean_rearm_ms=%.2f mean_reconverge_ms=%.2f "
        "epoch_resets=%lld fsync_retry_violations=%lld status=%s\n",
        cycles, static_cast<long long>(published),
        static_cast<long long>(m.durability_rearms),
        static_cast<long long>(m.degraded_ms_total),
        cycles > 0 ? rearm_ms_total / cycles : 0.0,
        cycles > 0 ? reconverge_ms_total / cycles : 0.0,
        static_cast<long long>(sm.epoch_resets),
        static_cast<long long>(env.fsync_retry_violations()),
        err.empty() ? "ok" : err.c_str());
  }
  xcql::IoEnv::Install(nullptr);
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return err.empty() ? 0 : 1;
}

}  // namespace

// scale_permille: XMark scale factor x1000 (0 = minimal document);
// compressed: 0 = plain XML payloads, 1 = §4.1 tag-compressed payloads.
// Fixed iteration count keeps the replayable frame log (which grows with
// every published update) bounded.
BENCHMARK(BM_Transport)
    ->ArgNames({"scale_permille", "compressed"})
    ->Args({0, 0})
    ->Args({0, 1})
    ->Args({10, 0})
    ->Args({10, 1})
    ->Args({50, 0})
    ->Args({50, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(8);

// loss_permille: per-frame fault rate x1000, split evenly between drops
// and CRC-detectable corruption (0 = clean link, 10 = 1% loss, 50 = 5%).
BENCHMARK(BM_TransportChaos)
    ->ArgNames({"loss_permille"})
    ->Args({0})
    ->Args({10})
    ->Args({50})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// checkpoint_every: WAL auto-checkpoint cadence in records (0 = never —
// recovery replays the whole history; 200 = every batch — recovery is
// checkpoint + short tail).
BENCHMARK(BM_TransportRestart)
    ->ArgNames({"checkpoint_every"})
    ->Args({0})
    ->Args({200})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// server_side: 1 = one QueryChannel evaluation fanned out as RESULT
// frames to 8 subscribers; 0 = 8 client-side engines each evaluating the
// same query over the raw fragment stream.
BENCHMARK(BM_TransportQueryFanout)
    ->ArgNames({"server_side"})
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// conns: concurrent subscriber connections on one server event loop;
// filtered: 0 = every client takes the full stream, 1 = disjoint slices
// (client i subscribes exactly one of the 64 event tsids). Encode-once is
// asserted either way; comparing the two 1024 rows' `wire_mb` shows the
// filter's delivery-bytes dividend at identical publish volume.
BENCHMARK(BM_TransportFanOut)
    ->ArgNames({"conns", "filtered"})
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({8192, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// retain_frames: frame-log count window (0 = retention off — the
// unbounded baseline). Fixed iteration count: with the window active the
// log, stores, and result logs reach steady state well inside it.
BENCHMARK(BM_TransportRetention)
    ->ArgNames({"retain_frames"})
    ->Args({0})
    ->Args({1024})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(12);

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--fan-out-soak") {
      return RunFanOutSoak(256);
    }
    if (std::string(argv[i]) == "--fault-disk") {
      int cycles = 10;
      if (i + 1 < argc) cycles = std::atoi(argv[i + 1]);
      return RunDiskFaultSoak(cycles > 0 ? cycles : 10);
    }
    if (std::string(argv[i]) == "--soak-retention") {
      int64_t publishes = 1'000'000;
      int64_t ceiling_mb = 1024;
      if (i + 1 < argc) publishes = std::atoll(argv[i + 1]);
      if (i + 2 < argc) ceiling_mb = std::atoll(argv[i + 2]);
      return RunRetentionSoak(publishes > 0 ? publishes : 1'000'000,
                              ceiling_mb);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
